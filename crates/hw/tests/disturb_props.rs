//! Property tests for the disturbance engine: whatever the script, the
//! resolved device state and invocation times stay physical (finite,
//! positive) and replay deterministically.

use at_hw::disturb::{DeviceState, Disturbance, DisturbedDevice, Scenario};
use at_hw::FrequencyLadder;
use proptest::prelude::*;

/// An arbitrary disturbance: a kind selector plus a shared parameter
/// tuple, mapped onto the matching variant (the vendored proptest has no
/// `prop_oneof!`).
fn disturbance() -> impl Strategy<Value = Disturbance> {
    (0u8..6, 0usize..100, 0usize..40, 0usize..12, 0.01f64..4.0).prop_map(
        |(kind, at, len, idx, x)| match kind {
            0 => Disturbance::GovernorStep {
                at,
                ladder_idx: idx,
            },
            1 => Disturbance::ThermalRamp {
                at,
                len,
                floor_idx: idx,
            },
            2 => Disturbance::Brownout {
                at,
                len,
                frequency_factor: (x / 4.0).clamp(0.01, 1.0),
            },
            3 => Disturbance::LoadSpike {
                at,
                len,
                time_factor: x,
            },
            4 => Disturbance::SensorDropout { at, len },
            _ => Disturbance::TimingJitter {
                amplitude: (x / 8.0).clamp(0.0, 0.49),
            },
        },
    )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (proptest::collection::vec(disturbance(), 0..8), 0u64..1000).prop_map(|(ds, seed)| {
        let mut s = Scenario::new("prop", FrequencyLadder::tx2_gpu(), 120, seed);
        for d in ds {
            s = s.with(d);
        }
        s
    })
}

fn physical(st: &DeviceState) -> bool {
    st.freq_mhz.is_finite()
        && st.freq_mhz > 0.0
        && st.load_factor.is_finite()
        && st.load_factor > 0.0
}

proptest! {
    #[test]
    fn resolved_state_is_always_physical(s in scenario()) {
        for i in 0..s.invocations() {
            let st = s.state_at(i);
            prop_assert!(physical(&st), "unphysical state {st:?} at invocation {i}");
            // The clock never exceeds the ladder's top step.
            prop_assert!(st.freq_mhz <= FrequencyLadder::tx2_gpu().max() + 1e-9);
        }
    }

    #[test]
    fn invocation_times_are_never_nan_or_negative(
        s in scenario(),
        baseline in 1e-6f64..10.0,
        speedup in 0.5f64..8.0,
    ) {
        let d = DisturbedDevice::tx2(s);
        for i in 0..d.scenario().invocations() {
            let t = d.invocation_time(&d.state_at(i), baseline, speedup);
            prop_assert!(t.is_finite() && t > 0.0, "time {t} at invocation {i}");
        }
    }

    #[test]
    fn state_resolution_is_replayable(s in scenario()) {
        let twin = s.clone();
        for i in 0..s.invocations() {
            prop_assert_eq!(s.state_at(i), twin.state_at(i));
        }
    }

    #[test]
    fn sensors_report_iff_no_dropout(s in scenario()) {
        let d = DisturbedDevice::tx2(s);
        for i in 0..d.scenario().invocations() {
            let st = d.state_at(i);
            let (f, p) = d.sensors(&st);
            prop_assert_eq!(f.is_some(), st.sensors_ok);
            prop_assert_eq!(p.is_some(), st.sensors_ok);
            if let (Some(f), Some(p)) = (f, p) {
                prop_assert_eq!(f, st.freq_mhz);
                prop_assert!(p.is_finite() && p > 0.0);
            }
        }
    }

    #[test]
    fn governor_step_pins_the_ladder_frequency(
        idx in 0usize..12,
        at in 0usize..50,
    ) {
        let ladder = FrequencyLadder::tx2_gpu();
        let s = Scenario::new("pin", ladder.clone(), 100, 0)
            .with(Disturbance::GovernorStep { at, ladder_idx: idx });
        for i in at..100 {
            prop_assert_eq!(s.state_at(i).freq_mhz, ladder.at(idx));
        }
        for i in 0..at {
            prop_assert_eq!(s.state_at(i).freq_mhz, ladder.max());
        }
    }
}
