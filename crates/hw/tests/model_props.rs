//! Property tests on the device models.

use at_hw::{DeviceSpec, FrequencyLadder, PowerModel, TimingModel};
use at_tensor::cost::{OpCounts, ReductionFactors};
use at_tensor::Precision;
use proptest::prelude::*;

proptest! {
    #[test]
    fn op_time_positive_and_monotone_in_work(
        compute in 1.0f64..1e12,
        memory in 1.0f64..1e12,
        scale in 1.1f64..10.0,
    ) {
        let m = TimingModel::new(DeviceSpec::tx2_gpu());
        let small = OpCounts { compute, memory };
        let big = OpCounts { compute: compute * scale, memory: memory * scale };
        let ts = m.op_time(small, ReductionFactors::NONE, Precision::Fp32);
        let tb = m.op_time(big, ReductionFactors::NONE, Precision::Fp32);
        prop_assert!(ts > 0.0);
        prop_assert!(tb >= ts, "more work cannot be faster: {tb} < {ts}");
    }

    #[test]
    fn reduction_factors_never_slow_down(
        compute in 1.0f64..1e12,
        memory in 1.0f64..1e12,
        rc in 1.0f64..8.0,
        rm in 1.0f64..8.0,
    ) {
        let m = TimingModel::new(DeviceSpec::tx2_gpu());
        let counts = OpCounts { compute, memory };
        let base = m.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        let reduced = m.op_time(
            counts,
            ReductionFactors { compute: rc, memory: rm },
            Precision::Fp32,
        );
        prop_assert!(reduced <= base + 1e-15);
    }

    #[test]
    fn lower_frequency_never_faster(
        compute in 1e6f64..1e12,
        f1 in 100.0f64..1300.0,
        f2 in 100.0f64..1300.0,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let counts = OpCounts { compute, memory: compute / 10.0 };
        let mut m = TimingModel::new(DeviceSpec::tx2_gpu());
        m.set_frequency_mhz(hi);
        let t_hi = m.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        m.set_frequency_mhz(lo);
        let t_lo = m.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        prop_assert!(t_lo >= t_hi - 1e-15);
    }

    #[test]
    fn power_positive_and_bounded(
        f in 100.0f64..1400.0,
        util in 0.0f64..1.0,
    ) {
        let p = PowerModel::tx2().rails(f, util);
        prop_assert!(p.gpu > 0.0 && p.cpu > 0.0 && p.ddr > 0.0 && p.soc > 0.0);
        prop_assert!(p.sys() < 25.0, "implausible SoC power {}", p.sys());
        // Utilisation only increases power.
        let idle = PowerModel::tx2().rails(f, 0.0);
        prop_assert!(p.sys() >= idle.sys() - 1e-12);
    }

    #[test]
    fn ladder_slowdowns_bounded(step in 0usize..12) {
        let l = FrequencyLadder::tx2_gpu();
        let s = l.slowdown(step);
        prop_assert!((1.0..=4.09).contains(&s));
    }
}
