//! Scripted time-varying hardware disturbances against the simulated device.
//!
//! The paper's run-time experiments (§6.4) step the TX2 GPU through 12 DVFS
//! frequencies and show the dynamic tuner re-selecting curve points to hold
//! the performance target. A real board exposes those disturbances through
//! its governor and sensors; here a [`Scenario`] scripts them against the
//! device model so closed-loop adaptation is *deterministic and testable*:
//! the state of the device at invocation `i` is a pure function of the
//! scenario (plus its fixed seed), never of wall-clock time.
//!
//! Supported disturbance classes:
//!
//! * [`Disturbance::GovernorStep`] — the DVFS governor pins the clock to a
//!   step of the [`FrequencyLadder`] (§6.4's 12-step sweep).
//! * [`Disturbance::ThermalRamp`] — thermal throttling linearly lowers the
//!   clock towards a floor step and holds it there.
//! * [`Disturbance::Brownout`] — a power-rail brownout scales the effective
//!   clock by a factor for a bounded interval.
//! * [`Disturbance::LoadSpike`] — a transient co-running load multiplies
//!   invocation time without any clock change (invisible to the frequency
//!   sensor, so only feedback control can counteract it).
//! * [`Disturbance::SensorDropout`] — the freq/power sensors report `None`
//!   for an interval (the I2C profiler goes away; control must degrade
//!   gracefully).
//! * [`Disturbance::TimingJitter`] — multiplicative per-invocation timing
//!   noise from a seeded RNG, for exercising switch hysteresis.

use crate::dvfs::FrequencyLadder;
use crate::power::PowerModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Effective device condition during one invocation, resolved from every
/// active disturbance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceState {
    /// Effective clock in MHz (> 0; after governor, thermal and brownout).
    pub freq_mhz: f64,
    /// Multiplier on invocation time from external load and jitter (> 0).
    pub load_factor: f64,
    /// Whether the freq/power sensors report readings this invocation.
    pub sensors_ok: bool,
}

/// One scripted event on the timeline. Invocation indices are 0-based;
/// an interval `{ at, len }` covers invocations `at .. at + len`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Disturbance {
    /// The DVFS governor pins the clock to `ladder_idx` from invocation
    /// `at` onwards (until a later step overrides it).
    GovernorStep {
        /// First affected invocation.
        at: usize,
        /// Target ladder step (0 = highest frequency; clamped to the
        /// ladder).
        ladder_idx: usize,
    },
    /// Thermal throttling: from invocation `at`, the clock ramps linearly
    /// over `len` invocations down to the `floor_idx` ladder frequency and
    /// stays there (heat does not script its own recovery).
    ThermalRamp {
        /// First affected invocation.
        at: usize,
        /// Ramp length in invocations (0 = immediate).
        len: usize,
        /// Ladder step whose frequency is the throttle floor.
        floor_idx: usize,
    },
    /// Power-rail brownout: the effective clock is multiplied by
    /// `frequency_factor` for `len` invocations.
    Brownout {
        /// First affected invocation.
        at: usize,
        /// Duration in invocations.
        len: usize,
        /// Clock multiplier in (0, 1].
        frequency_factor: f64,
    },
    /// Transient co-running load: invocation time is multiplied by
    /// `time_factor` for `len` invocations, with no clock change.
    LoadSpike {
        /// First affected invocation.
        at: usize,
        /// Duration in invocations.
        len: usize,
        /// Time multiplier (≥ 1 for a slowdown).
        time_factor: f64,
    },
    /// Sensor dropout: `freq_mhz` / `power_w` read as `None` for `len`
    /// invocations.
    SensorDropout {
        /// First affected invocation.
        at: usize,
        /// Duration in invocations.
        len: usize,
    },
    /// Multiplicative timing noise: every invocation's time is scaled by
    /// `1 + U(-amplitude, amplitude)` drawn from the scenario's seeded RNG.
    TimingJitter {
        /// Noise amplitude in (0, 1).
        amplitude: f64,
    },
}

impl Disturbance {
    fn active(at: usize, len: usize, i: usize) -> bool {
        i >= at && i < at.saturating_add(len)
    }
}

/// A named, scripted timeline of disturbances over a fixed number of
/// invocations. The device state at any invocation is a pure function of
/// the scenario, so identical scenarios replay bit-identical traces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    ladder: FrequencyLadder,
    disturbances: Vec<Disturbance>,
    invocations: usize,
    seed: u64,
}

impl Scenario {
    /// An empty scenario (device at nominal conditions throughout).
    pub fn new(name: &str, ladder: FrequencyLadder, invocations: usize, seed: u64) -> Scenario {
        assert!(!ladder.is_empty(), "scenario ladder must not be empty");
        Scenario {
            name: name.to_string(),
            ladder,
            disturbances: Vec::new(),
            invocations,
            seed,
        }
    }

    /// Adds a disturbance (builder style).
    pub fn with(mut self, d: Disturbance) -> Scenario {
        self.disturbances.push(d);
        self
    }

    /// Adds several disturbances at once (builder style).
    pub fn with_all(mut self, ds: impl IntoIterator<Item = Disturbance>) -> Scenario {
        self.disturbances.extend(ds);
        self
    }

    /// Re-sizes the scripted horizon (builder style). Serving workloads
    /// derive their invocation count from an arrival trace, not the other
    /// way round, so the horizon is adjusted after composition.
    pub fn with_invocations(mut self, invocations: usize) -> Scenario {
        self.invocations = invocations;
        self
    }

    /// A brownout storm: a power-rail brownout over `at .. at + len` with a
    /// sensor dropout across the same window (the rail dip takes the I2C
    /// profiler with it) plus mild timing jitter. The canonical "hardware
    /// degrades exactly when traffic spikes" composition for overload
    /// experiments.
    pub fn brownout_storm(
        invocations: usize,
        at: usize,
        len: usize,
        frequency_factor: f64,
        seed: u64,
    ) -> Scenario {
        Scenario::new(
            "brownout-storm",
            FrequencyLadder::tx2_gpu(),
            invocations,
            seed,
        )
        .with_all([
            Disturbance::Brownout {
                at,
                len,
                frequency_factor,
            },
            Disturbance::SensorDropout { at, len },
            Disturbance::TimingJitter { amplitude: 0.02 },
        ])
    }

    /// The paper's §6.4 experiment: the governor walks the full ladder from
    /// the highest to the lowest step, dwelling `dwell` invocations on each.
    pub fn tx2_dvfs_sweep(dwell: usize) -> Scenario {
        let ladder = FrequencyLadder::tx2_gpu();
        let steps = ladder.len();
        let mut s = Scenario::new("tx2-dvfs-sweep", ladder, steps * dwell.max(1), 0);
        for idx in 0..steps {
            s.disturbances.push(Disturbance::GovernorStep {
                at: idx * dwell.max(1),
                ladder_idx: idx,
            });
        }
        s
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total scripted invocations.
    pub fn invocations(&self) -> usize {
        self.invocations
    }

    /// The frequency ladder the governor steps over.
    pub fn ladder(&self) -> &FrequencyLadder {
        &self.ladder
    }

    /// Nominal (highest-step) frequency in MHz.
    pub fn nominal_mhz(&self) -> f64 {
        self.ladder.max()
    }

    /// The scripted disturbances.
    pub fn disturbances(&self) -> &[Disturbance] {
        &self.disturbances
    }

    /// Resolves the device state at invocation `i`.
    ///
    /// Resolution order: the latest governor step at or before `i` sets the
    /// base clock; thermal ramps lower it further (the ramp interpolates
    /// from the unthrottled clock down to the floor frequency); brownouts
    /// multiply it; the clock is floored at 1 MHz. Load spikes and jitter
    /// multiply the load factor, and any active dropout masks the sensors.
    /// The result is always finite with positive clock and load.
    pub fn state_at(&self, i: usize) -> DeviceState {
        let mut ladder_idx = 0usize;
        let mut step_at = 0usize;
        for d in &self.disturbances {
            if let Disturbance::GovernorStep { at, ladder_idx: li } = d {
                if *at <= i && *at >= step_at {
                    step_at = *at;
                    ladder_idx = (*li).min(self.ladder.len() - 1);
                }
            }
        }
        let mut freq = self.ladder.at(ladder_idx);
        let mut load = 1.0f64;
        let mut sensors_ok = true;
        for d in &self.disturbances {
            match *d {
                Disturbance::GovernorStep { .. } => {}
                Disturbance::ThermalRamp { at, len, floor_idx } => {
                    if i >= at {
                        let floor = self.ladder.at(floor_idx.min(self.ladder.len() - 1));
                        let progress = if len == 0 {
                            1.0
                        } else {
                            ((i - at) as f64 / len as f64).min(1.0)
                        };
                        let throttled = freq + (floor - freq) * progress;
                        freq = freq.min(throttled);
                    }
                }
                Disturbance::Brownout {
                    at,
                    len,
                    frequency_factor,
                } => {
                    if Disturbance::active(at, len, i) {
                        freq *= frequency_factor.clamp(1e-3, 1.0);
                    }
                }
                Disturbance::LoadSpike {
                    at,
                    len,
                    time_factor,
                } => {
                    if Disturbance::active(at, len, i) {
                        load *= time_factor.max(1e-3);
                    }
                }
                Disturbance::SensorDropout { at, len } => {
                    if Disturbance::active(at, len, i) {
                        sensors_ok = false;
                    }
                }
                Disturbance::TimingJitter { amplitude } => {
                    let a = amplitude.clamp(0.0, 0.99);
                    if a > 0.0 {
                        // Per-invocation RNG keyed on (seed, i) keeps the
                        // state a pure function of the invocation index.
                        let mut rng = StdRng::seed_from_u64(
                            self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        load *= 1.0 + rng.gen_range(-a..a);
                    }
                }
            }
        }
        DeviceState {
            freq_mhz: freq.max(1.0),
            load_factor: load.max(1e-3),
            sensors_ok,
        }
    }
}

/// The disturbed simulated device: a scenario plus the rail power model,
/// exposing exactly what a closed-loop controller can interact with — an
/// invocation-time response and (possibly absent) sensor readings.
#[derive(Clone, Debug)]
pub struct DisturbedDevice {
    scenario: Scenario,
    power: PowerModel,
}

impl DisturbedDevice {
    /// Wraps a scenario with the TX2 power model.
    pub fn tx2(scenario: Scenario) -> DisturbedDevice {
        DisturbedDevice {
            scenario,
            power: PowerModel::tx2(),
        }
    }

    /// Wraps a scenario with a custom power model.
    pub fn new(scenario: Scenario, power: PowerModel) -> DisturbedDevice {
        DisturbedDevice { scenario, power }
    }

    /// The scripted scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Device state at invocation `i`.
    pub fn state_at(&self, i: usize) -> DeviceState {
        self.scenario.state_at(i)
    }

    /// Simulated wall time of one invocation under `state` for a program
    /// whose nominal-condition baseline takes `baseline_time_s` and whose
    /// current configuration delivers `speedup`.
    ///
    /// The paper's CNN invocations are compute-bound on the TX2 GPU
    /// (`at_hw::timing`), so time scales inversely with the clock; external
    /// load multiplies it. The result is clamped finite and positive —
    /// disturbances can never produce a NaN or negative time.
    pub fn invocation_time(&self, state: &DeviceState, baseline_time_s: f64, speedup: f64) -> f64 {
        let slow = self.scenario.nominal_mhz() / state.freq_mhz.max(1.0);
        let t = baseline_time_s * slow * state.load_factor / speedup.max(1e-12);
        if t.is_finite() && t > 0.0 {
            t
        } else {
            baseline_time_s.max(1e-12)
        }
    }

    /// Sensor readings `(freq_mhz, power_w)` for an invocation: the clock
    /// and the system rail power at full utilisation, or `(None, None)`
    /// during a sensor dropout.
    pub fn sensors(&self, state: &DeviceState) -> (Option<f64>, Option<f64>) {
        if state.sensors_ok {
            let p = self.power.rails(state.freq_mhz, 1.0).sys();
            (Some(state.freq_mhz), Some(p))
        } else {
            (None, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scenario_is_nominal() {
        let s = Scenario::new("idle", FrequencyLadder::tx2_gpu(), 10, 0);
        for i in 0..10 {
            let st = s.state_at(i);
            assert_eq!(st.freq_mhz, 1300.5);
            assert_eq!(st.load_factor, 1.0);
            assert!(st.sensors_ok);
        }
    }

    #[test]
    fn sweep_visits_every_ladder_step_in_order() {
        let s = Scenario::tx2_dvfs_sweep(5);
        assert_eq!(s.invocations(), 60);
        let ladder = FrequencyLadder::tx2_gpu();
        for step in 0..12 {
            for k in 0..5 {
                let st = s.state_at(step * 5 + k);
                assert_eq!(st.freq_mhz, ladder.at(step), "step {step}");
            }
        }
    }

    #[test]
    fn latest_governor_step_wins() {
        let s = Scenario::new("steps", FrequencyLadder::tx2_gpu(), 10, 0)
            .with(Disturbance::GovernorStep {
                at: 2,
                ladder_idx: 4,
            })
            .with(Disturbance::GovernorStep {
                at: 5,
                ladder_idx: 1,
            });
        let ladder = FrequencyLadder::tx2_gpu();
        assert_eq!(s.state_at(0).freq_mhz, ladder.at(0));
        assert_eq!(s.state_at(3).freq_mhz, ladder.at(4));
        assert_eq!(s.state_at(7).freq_mhz, ladder.at(1));
    }

    #[test]
    fn thermal_ramp_reaches_and_holds_floor() {
        let ladder = FrequencyLadder::tx2_gpu();
        let floor = ladder.at(6);
        let s = Scenario::new("thermal", ladder, 40, 0).with(Disturbance::ThermalRamp {
            at: 10,
            len: 10,
            floor_idx: 6,
        });
        assert_eq!(s.state_at(9).freq_mhz, 1300.5);
        let mid = s.state_at(15).freq_mhz;
        assert!(mid < 1300.5 && mid > floor, "mid-ramp {mid}");
        for i in 20..40 {
            assert!((s.state_at(i).freq_mhz - floor).abs() < 1e-9);
        }
    }

    #[test]
    fn brownout_and_spike_are_bounded_intervals() {
        let s = Scenario::new("mix", FrequencyLadder::tx2_gpu(), 30, 0)
            .with(Disturbance::Brownout {
                at: 5,
                len: 5,
                frequency_factor: 0.5,
            })
            .with(Disturbance::LoadSpike {
                at: 8,
                len: 4,
                time_factor: 2.0,
            });
        assert_eq!(s.state_at(4).freq_mhz, 1300.5);
        assert_eq!(s.state_at(5).freq_mhz, 650.25);
        assert_eq!(s.state_at(9).freq_mhz, 650.25);
        assert_eq!(s.state_at(9).load_factor, 2.0);
        assert_eq!(s.state_at(10).freq_mhz, 1300.5);
        assert_eq!(s.state_at(12).load_factor, 1.0);
    }

    #[test]
    fn sensor_dropout_masks_sensors() {
        let s = Scenario::new("drop", FrequencyLadder::tx2_gpu(), 10, 0)
            .with(Disturbance::SensorDropout { at: 3, len: 4 });
        let d = DisturbedDevice::tx2(s);
        assert_eq!(d.sensors(&d.state_at(2)).0, Some(1300.5));
        let (f, p) = d.sensors(&d.state_at(3));
        assert_eq!(f, None);
        assert_eq!(p, None);
        assert!(d.sensors(&d.state_at(7)).0.is_some());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mk = || {
            Scenario::new("jit", FrequencyLadder::tx2_gpu(), 50, 42)
                .with(Disturbance::TimingJitter { amplitude: 0.05 })
        };
        let (a, b) = (mk(), mk());
        for i in 0..50 {
            let (sa, sb) = (a.state_at(i), b.state_at(i));
            assert_eq!(sa.load_factor, sb.load_factor, "jitter not replayable");
            assert!((sa.load_factor - 1.0).abs() <= 0.05 + 1e-12);
        }
        // Not all identical: the noise actually varies.
        let distinct: std::collections::BTreeSet<u64> = (0..50)
            .map(|i| a.state_at(i).load_factor.to_bits())
            .collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn invocation_time_tracks_slowdown_and_speedup() {
        let s = Scenario::tx2_dvfs_sweep(1);
        let d = DisturbedDevice::tx2(s);
        let bottom = d.state_at(11);
        let t = d.invocation_time(&bottom, 1.0, 1.0);
        assert!((t - 1300.5 / 318.75).abs() < 1e-9);
        let adapted = d.invocation_time(&bottom, 1.0, 1300.5 / 318.75);
        assert!((adapted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn brownout_storm_composes_rail_and_sensor_failures() {
        let s = Scenario::brownout_storm(100, 20, 10, 0.5, 7).with_invocations(200);
        assert_eq!(s.invocations(), 200);
        let before = s.state_at(19);
        assert!(before.sensors_ok);
        assert_eq!(before.freq_mhz, 1300.5);
        let during = s.state_at(25);
        assert!(!during.sensors_ok, "dropout must cover the brownout");
        assert!((during.freq_mhz - 650.25).abs() < 1e-9);
        let after = s.state_at(30);
        assert!(after.sensors_ok);
        assert_eq!(after.freq_mhz, 1300.5);
        // Jitter present but bounded.
        assert!((s.state_at(3).load_factor - 1.0).abs() <= 0.02 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_ladder_rejected() {
        let _ = Scenario::new("bad", FrequencyLadder::new(vec![]), 1, 0);
    }
}
