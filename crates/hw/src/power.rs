//! Rail-level power model of the simulated TX2 SoC.
//!
//! Fitted to the *shape* of the paper's Figure 5: as GPU frequency falls
//! from 1300 MHz to ~319 MHz, GPU rail power drops ~7×, total system power
//! drops ~1.9×, and DDR power decreases only slightly (DDR frequency is
//! held constant).

use serde::{Deserialize, Serialize};

/// Instantaneous power on each monitored rail, in watts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RailPower {
    /// GPU rail.
    pub gpu: f64,
    /// CPU rail.
    pub cpu: f64,
    /// DDR rail.
    pub ddr: f64,
    /// SoC / rest-of-board rail.
    pub soc: f64,
}

impl RailPower {
    /// Total system power (the paper's "SYS").
    pub fn sys(&self) -> f64 {
        self.gpu + self.cpu + self.ddr + self.soc
    }
}

/// Analytical power model parameterised by GPU frequency and utilisation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// GPU leakage power (W) — frequency independent.
    pub gpu_leak_w: f64,
    /// GPU dynamic power (W) at the nominal frequency, full utilisation.
    pub gpu_dyn_w: f64,
    /// Nominal GPU frequency in MHz.
    pub nominal_mhz: f64,
    /// CPU rail power during GPU-driven inference (W), roughly constant.
    pub cpu_w: f64,
    /// DDR rail power at full bandwidth pressure (W).
    pub ddr_w: f64,
    /// Fraction of DDR power that tracks GPU activity (small: the DDR clock
    /// is constant).
    pub ddr_activity_frac: f64,
    /// Rest-of-SoC rail power (W).
    pub soc_w: f64,
}

impl PowerModel {
    /// Model fitted to Figure 5's ResNet-18 measurements.
    pub fn tx2() -> PowerModel {
        PowerModel {
            gpu_leak_w: 0.25,
            gpu_dyn_w: 4.5,
            nominal_mhz: 1300.5,
            cpu_w: 1.35,
            ddr_w: 1.55,
            ddr_activity_frac: 0.12,
            soc_w: 1.65,
        }
    }

    /// Rail powers when the GPU runs at `freq_mhz` with utilisation
    /// `util ∈ [0,1]` (1.0 while a kernel executes).
    ///
    /// Dynamic power scales as `f·V(f)²`; on the TX2 voltage scales roughly
    /// linearly with frequency over the DVFS range, giving an ~f³ dynamic
    /// term. Combined with leakage this reproduces the ~7× GPU drop of
    /// Fig 5.
    pub fn rails(&self, freq_mhz: f64, util: f64) -> RailPower {
        let s = (freq_mhz / self.nominal_mhz).clamp(0.0, 1.0);
        // Voltage floor: V doesn't scale all the way to zero.
        let v = 0.45 + 0.55 * s;
        let dyn_scale = s * v * v;
        let gpu = self.gpu_leak_w + self.gpu_dyn_w * dyn_scale * util;
        let ddr = self.ddr_w * (1.0 - self.ddr_activity_frac * (1.0 - s * util));
        RailPower {
            gpu,
            cpu: self.cpu_w,
            ddr,
            soc: self.soc_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::FrequencyLadder;

    #[test]
    fn figure5_shape_gpu_drop() {
        let m = PowerModel::tx2();
        let hi = m.rails(1300.5, 1.0);
        let lo = m.rails(318.75, 1.0);
        let gpu_ratio = hi.gpu / lo.gpu;
        assert!(
            (5.5..8.5).contains(&gpu_ratio),
            "GPU power drop {gpu_ratio} not ~7x (hi {}, lo {})",
            hi.gpu,
            lo.gpu
        );
    }

    #[test]
    fn figure5_shape_sys_drop() {
        let m = PowerModel::tx2();
        let hi = m.rails(1300.5, 1.0);
        let lo = m.rails(318.75, 1.0);
        let sys_ratio = hi.sys() / lo.sys();
        assert!(
            (1.6..2.2).contains(&sys_ratio),
            "SYS power drop {sys_ratio} not ~1.9x"
        );
    }

    #[test]
    fn ddr_power_nearly_constant() {
        let m = PowerModel::tx2();
        let hi = m.rails(1300.5, 1.0);
        let lo = m.rails(318.75, 1.0);
        let drop = (hi.ddr - lo.ddr) / hi.ddr;
        assert!(drop < 0.15, "DDR should decrease only slightly, got {drop}");
        assert!(hi.ddr > lo.ddr, "DDR decreases slightly with activity");
    }

    #[test]
    fn power_monotone_in_frequency() {
        let m = PowerModel::tx2();
        let l = FrequencyLadder::tx2_gpu();
        let mut prev = f64::INFINITY;
        for &f in l.frequencies() {
            let p = m.rails(f, 1.0).sys();
            assert!(p <= prev + 1e-12, "power not monotone at {f} MHz");
            prev = p;
        }
    }

    #[test]
    fn idle_gpu_draws_leakage_only() {
        let m = PowerModel::tx2();
        let idle = m.rails(1300.5, 0.0);
        assert!((idle.gpu - m.gpu_leak_w).abs() < 1e-12);
    }
}
