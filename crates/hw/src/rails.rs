//! Simulated voltage-rail sampling and energy integration.
//!
//! The paper's profiler "continuously reads GPU, CPU and DRAM power from
//! Jetson's voltage rails via an I2C interface at 1 KHz (1 ms period);
//! energy is calculated by integrating the power readings using 1 ms
//! timesteps" (§6.3). We reproduce that measurement procedure over
//! simulated time.

use crate::power::{PowerModel, RailPower};
use serde::{Deserialize, Serialize};

/// A single timestamped rail sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RailSample {
    /// Simulated time of the sample, seconds.
    pub t: f64,
    /// Rail powers at that instant.
    pub power: RailPower,
}

/// Samples rail power over a simulated execution interval at a fixed rate.
#[derive(Clone, Debug)]
pub struct RailSampler {
    model: PowerModel,
    period_s: f64,
}

impl RailSampler {
    /// 1 kHz sampler over the given power model (the paper's setup).
    pub fn khz1(model: PowerModel) -> RailSampler {
        RailSampler {
            model,
            period_s: 1e-3,
        }
    }

    /// Custom sampling period.
    pub fn with_period(model: PowerModel, period_s: f64) -> RailSampler {
        assert!(period_s > 0.0, "sampling period must be positive");
        RailSampler { model, period_s }
    }

    /// Samples an interval `[t0, t0+duration)` during which the GPU runs at
    /// `freq_mhz` with utilisation `util`.
    pub fn sample_interval(
        &self,
        t0: f64,
        duration: f64,
        freq_mhz: f64,
        util: f64,
    ) -> Vec<RailSample> {
        let n = (duration / self.period_s).ceil().max(1.0) as usize;
        (0..n)
            .map(|i| RailSample {
                t: t0 + i as f64 * self.period_s,
                power: self.model.rails(freq_mhz, util),
            })
            .collect()
    }

    /// Sampling period in seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }
}

/// Integrates rail samples into energy, using the paper's fixed-timestep
/// rectangle rule.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Accumulated energy per rail, joules.
    pub gpu_j: f64,
    /// CPU rail energy.
    pub cpu_j: f64,
    /// DDR rail energy.
    pub ddr_j: f64,
    /// SoC rail energy.
    pub soc_j: f64,
    /// Total integrated time, seconds.
    pub elapsed_s: f64,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Adds one sample of duration `dt`.
    pub fn add_sample(&mut self, power: RailPower, dt: f64) {
        self.gpu_j += power.gpu * dt;
        self.cpu_j += power.cpu * dt;
        self.ddr_j += power.ddr * dt;
        self.soc_j += power.soc * dt;
        self.elapsed_s += dt;
    }

    /// Integrates a whole sample trace with fixed period `dt`.
    pub fn integrate(&mut self, samples: &[RailSample], dt: f64) {
        for s in samples {
            self.add_sample(s.power, dt);
        }
    }

    /// Convenience: directly integrate a constant-power interval without
    /// materialising samples (exact, used for fast simulation paths).
    pub fn add_interval(&mut self, power: RailPower, duration: f64) {
        self.add_sample(power, duration);
    }

    /// Total system energy in joules.
    pub fn total_j(&self) -> f64 {
        self.gpu_j + self.cpu_j + self.ddr_j + self.soc_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_interval_count() {
        let s = RailSampler::khz1(PowerModel::tx2());
        let samples = s.sample_interval(0.0, 0.0105, 1300.5, 1.0);
        assert_eq!(samples.len(), 11); // ceil(10.5 ms / 1 ms)
        assert!((samples[1].t - 0.001).abs() < 1e-12);
    }

    #[test]
    fn integration_matches_analytic() {
        let model = PowerModel::tx2();
        let s = RailSampler::khz1(model.clone());
        let dur = 0.250;
        let samples = s.sample_interval(0.0, dur, 1300.5, 1.0);
        let mut meter = EnergyMeter::new();
        meter.integrate(&samples, s.period_s());
        let expected = model.rails(1300.5, 1.0).sys() * dur;
        let got = meter.total_j();
        assert!(
            (got - expected).abs() / expected < 0.01,
            "integrated {got} vs analytic {expected}"
        );
    }

    #[test]
    fn lower_frequency_uses_less_power_but_energy_depends_on_time() {
        let model = PowerModel::tx2();
        let mut fast = EnergyMeter::new();
        fast.add_interval(model.rails(1300.5, 1.0), 1.0);
        // 4.08x slower at the bottom frequency.
        let mut slow = EnergyMeter::new();
        slow.add_interval(model.rails(318.75, 1.0), 4.08);
        // The GPU rail saves energy even accounting for longer runtime
        // (power drops ~7x, time grows ~4x) …
        assert!(slow.gpu_j < fast.gpu_j);
        // … but the whole-system energy grows because static rails keep
        // drawing power for longer (why runtime tuning is needed).
        assert!(slow.total_j() > fast.total_j());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = RailSampler::with_period(PowerModel::tx2(), 0.0);
    }
}
