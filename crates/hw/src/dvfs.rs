//! The GPU DVFS frequency ladder of the runtime experiments (§6.4: "12
//! different frequencies from 1.3 GHz to 319 MHz").

use serde::{Deserialize, Serialize};

/// An ordered ladder of available clock frequencies, highest first.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrequencyLadder {
    mhz: Vec<f64>,
}

impl FrequencyLadder {
    /// The TX2 GPU ladder: 12 evenly spaced steps from 1300.5 MHz down to
    /// 318.75 MHz. The interior steps land on the frequencies the paper
    /// quotes (675, 586, 497 MHz).
    pub fn tx2_gpu() -> FrequencyLadder {
        let top = 1300.5;
        let bottom = 318.75;
        let n = 12;
        let step = (top - bottom) / (n - 1) as f64;
        FrequencyLadder {
            mhz: (0..n).map(|i| top - i as f64 * step).collect(),
        }
    }

    /// Builds a custom ladder; frequencies are sorted highest-first.
    pub fn new(mut mhz: Vec<f64>) -> FrequencyLadder {
        mhz.sort_by(|a, b| b.partial_cmp(a).unwrap());
        FrequencyLadder { mhz }
    }

    /// All frequencies, highest first.
    pub fn frequencies(&self) -> &[f64] {
        &self.mhz
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.mhz.len()
    }

    /// True when the ladder has no steps.
    pub fn is_empty(&self) -> bool {
        self.mhz.is_empty()
    }

    /// Highest frequency.
    pub fn max(&self) -> f64 {
        self.mhz[0]
    }

    /// Frequency at ladder index (0 = highest).
    pub fn at(&self, idx: usize) -> f64 {
        self.mhz[idx]
    }

    /// Slowdown factor of step `idx` relative to the highest step for a
    /// compute-bound workload (time scales inversely with frequency).
    pub fn slowdown(&self, idx: usize) -> f64 {
        self.max() / self.mhz[idx]
    }

    /// The ladder step whose frequency is closest to `mhz` (useful for
    /// mapping a sensed clock — possibly offset by throttling or a
    /// brownout — back onto a governor step).
    pub fn nearest_index(&self, mhz: f64) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &f) in self.mhz.iter().enumerate() {
            let d = (f - mhz).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_ladder_matches_paper() {
        let l = FrequencyLadder::tx2_gpu();
        assert_eq!(l.len(), 12);
        assert!((l.max() - 1300.5).abs() < 1e-9);
        assert!((l.at(11) - 318.75).abs() < 1e-9);
        // The paper's quoted runtime-experiment frequencies appear on the
        // ladder (±1 MHz).
        for f in [675.0, 586.0, 497.0] {
            assert!(
                l.frequencies().iter().any(|&x| (x - f).abs() < 1.0),
                "{f} MHz missing from ladder {:?}",
                l.frequencies()
            );
        }
    }

    #[test]
    fn slowdown_monotone() {
        let l = FrequencyLadder::tx2_gpu();
        for i in 1..l.len() {
            assert!(l.slowdown(i) > l.slowdown(i - 1));
        }
        assert_eq!(l.slowdown(0), 1.0);
        // ~4.08x slowdown at the bottom step.
        assert!((l.slowdown(11) - 1300.5 / 318.75).abs() < 1e-9);
    }

    #[test]
    fn custom_ladder_sorted() {
        let l = FrequencyLadder::new(vec![500.0, 1000.0, 750.0]);
        assert_eq!(l.frequencies(), &[1000.0, 750.0, 500.0]);
    }
}
