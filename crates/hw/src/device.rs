//! Compute-unit descriptors for the simulated Jetson TX2-class SoC.

use serde::{Deserialize, Serialize};

/// The kinds of compute units a tensor operation can be scheduled on
/// (the unit of scheduling in ApproxTuner, §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ComputeUnitKind {
    /// The integrated GPU (256 CUDA cores in the TX2).
    Gpu,
    /// The multicore ARM CPU cluster.
    Cpu,
    /// The PROMISE analog in-memory accelerator (hardware-specific knobs;
    /// modelled by `at-promise`).
    Promise,
}

impl ComputeUnitKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ComputeUnitKind::Gpu => "gpu",
            ComputeUnitKind::Cpu => "cpu",
            ComputeUnitKind::Promise => "promise",
        }
    }
}

/// Performance descriptor for a digital compute unit.
///
/// Throughput/bandwidth values are *effective* (peak × achievable
/// efficiency), so the timing model can use them directly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which unit this describes.
    pub kind: ComputeUnitKind,
    /// Effective FP32 throughput at the nominal frequency, in FLOP/s.
    pub flops_fp32: f64,
    /// Effective FP16 throughput at the nominal frequency, in FLOP/s.
    /// Equal to `flops_fp32` when the unit has no FP16 hardware.
    pub flops_fp16: f64,
    /// Effective memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Whether FP16 execution is faster than FP32 on this unit.
    pub fp16_hardware: bool,
    /// Nominal (maximum) clock in MHz.
    pub nominal_mhz: f64,
    /// Fixed per-op dispatch overhead in seconds (kernel launch, etc.).
    pub launch_overhead_s: f64,
    /// Fraction of the analytical memory-op count that reaches DRAM.
    ///
    /// `at_tensor::cost` counts every operand access; tiled kernels reuse
    /// operands from caches/scratchpad, so only a small fraction misses.
    /// This keeps large convolutions compute-bound, as on the real TX2.
    pub dram_miss_fraction: f64,
}

impl DeviceSpec {
    /// The simulated TX2 GPU: 256 CUDA cores × 2 FLOP × 1.3005 GHz ≈ 666
    /// GFLOP/s peak; we model ~45% achievable efficiency for the paper's
    /// hand-optimised kernels. FP16 has 2× peak rate but ~1.7× achievable
    /// (packing overheads), consistent with the paper's observed 1.63×
    /// average FP16 speedup. LPDDR4 bandwidth 59.7 GB/s, ~70% achievable.
    pub fn tx2_gpu() -> DeviceSpec {
        let peak = 256.0 * 2.0 * 1.3005e9;
        DeviceSpec {
            kind: ComputeUnitKind::Gpu,
            flops_fp32: peak * 0.45,
            flops_fp16: peak * 0.45 * 1.7,
            mem_bw: 59.7e9 * 0.70,
            fp16_hardware: true,
            nominal_mhz: 1300.5,
            launch_overhead_s: 5e-6,
            dram_miss_fraction: 0.02,
        }
    }

    /// The simulated TX2 CPU cluster (4×A57 + 2×Denver): no FP16 execution
    /// units, so FP16 runs at FP32 rate (§7.1: "the ARM CPUs on the Jetson
    /// TX2 board do not support FP16").
    pub fn tx2_cpu() -> DeviceSpec {
        // ~6 cores × 4-wide NEON FMA × 2 GHz ≈ 96 GFLOP/s peak, ~35% eff.
        let peak = 6.0 * 8.0 * 2.0e9;
        DeviceSpec {
            kind: ComputeUnitKind::Cpu,
            flops_fp32: peak * 0.35,
            flops_fp16: peak * 0.35,
            mem_bw: 30.0e9 * 0.60,
            fp16_hardware: false,
            nominal_mhz: 2000.0,
            launch_overhead_s: 1e-6,
            dram_miss_fraction: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_has_fp16_advantage() {
        let g = DeviceSpec::tx2_gpu();
        assert!(g.fp16_hardware);
        let ratio = g.flops_fp16 / g.flops_fp32;
        assert!((1.5..=2.0).contains(&ratio), "fp16 ratio {ratio}");
    }

    #[test]
    fn cpu_has_no_fp16_advantage() {
        let c = DeviceSpec::tx2_cpu();
        assert!(!c.fp16_hardware);
        assert_eq!(c.flops_fp16, c.flops_fp32);
    }

    #[test]
    fn gpu_faster_than_cpu() {
        assert!(DeviceSpec::tx2_gpu().flops_fp32 > DeviceSpec::tx2_cpu().flops_fp32);
    }
}
