//! Execution-time model for simulated compute units.
//!
//! The model is a roofline with a launch overhead: an op's time is the
//! maximum of its compute time and its memory time, scaled by the DVFS
//! setting for the compute side (memory bandwidth is held constant across
//! GPU frequency changes, matching the paper's observation in Fig 5 that
//! DDR frequency is kept constant).

use crate::device::DeviceSpec;
use at_tensor::cost::{OpCounts, ReductionFactors};
use at_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Per-device timing model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingModel {
    spec: DeviceSpec,
    /// Current clock in MHz (≤ nominal).
    freq_mhz: f64,
}

impl TimingModel {
    /// Builds a model at the device's nominal frequency.
    pub fn new(spec: DeviceSpec) -> TimingModel {
        let f = spec.nominal_mhz;
        TimingModel { spec, freq_mhz: f }
    }

    /// The device descriptor.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Sets the clock (DVFS). Values above nominal are clamped.
    pub fn set_frequency_mhz(&mut self, mhz: f64) {
        self.freq_mhz = mhz.clamp(1.0, self.spec.nominal_mhz);
    }

    /// Builder-style clone at a different clock, for evaluating a program
    /// across ladder steps without mutating the shared device model.
    pub fn with_frequency_mhz(mut self, mhz: f64) -> TimingModel {
        self.set_frequency_mhz(mhz);
        self
    }

    /// Predicted execution time in seconds of one tensor op with baseline
    /// counts `counts`, *algorithmic* reduction factors `alg` (sampling /
    /// perforation only — precision effects are applied here from
    /// `precision` and the device's capabilities).
    pub fn op_time(&self, counts: OpCounts, alg: ReductionFactors, precision: Precision) -> f64 {
        let flops = match precision {
            Precision::Fp32 => self.spec.flops_fp32,
            Precision::Fp16 => self.spec.flops_fp16,
        };
        // Compute rate scales with clock.
        let scale = self.freq_mhz / self.spec.nominal_mhz;
        let compute_t = counts.compute / alg.compute / (flops * scale);

        // Bytes per memory op: 4 for FP32, 2 for FP16 (storage is halved
        // regardless of whether the device computes FP16 faster).
        let bytes_per = match precision {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
        };
        let memory_t = counts.memory / alg.memory * bytes_per * self.spec.dram_miss_fraction
            / self.spec.mem_bw;

        self.spec.launch_overhead_s + compute_t.max(memory_t)
    }

    /// Time for a whole program: sum of op times plus nothing else (the
    /// paper's invocations are sequential over the dataflow graph).
    pub fn program_time(
        &self,
        ops: impl IntoIterator<Item = (OpCounts, ReductionFactors, Precision)>,
    ) -> f64 {
        ops.into_iter().map(|(c, a, p)| self.op_time(c, a, p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_tensor::cost;
    use at_tensor::{ConvApprox, Shape};

    fn conv_counts() -> OpCounts {
        cost::conv2d_counts(
            Shape::nchw(1, 64, 32, 32),
            Shape::nchw(64, 64, 3, 3),
            (1, 1),
            (1, 1),
        )
    }

    #[test]
    fn fp16_speeds_up_gpu_not_cpu() {
        let counts = conv_counts();
        let gpu = TimingModel::new(DeviceSpec::tx2_gpu());
        let cpu = TimingModel::new(DeviceSpec::tx2_cpu());
        let none = ReductionFactors::NONE;
        let g32 = gpu.op_time(counts, none, Precision::Fp32);
        let g16 = gpu.op_time(counts, none, Precision::Fp16);
        assert!(g16 < g32 * 0.75, "GPU fp16 {g16} vs fp32 {g32}");
        let c32 = cpu.op_time(counts, none, Precision::Fp32);
        let c16 = cpu.op_time(counts, none, Precision::Fp16);
        // Compute-bound conv on CPU: fp16 gives no meaningful benefit.
        assert!(
            (c16 - c32).abs() / c32 < 0.05,
            "CPU fp16 {c16} vs fp32 {c32}"
        );
    }

    #[test]
    fn algorithmic_reduction_speeds_up() {
        let counts = conv_counts();
        let gpu = TimingModel::new(DeviceSpec::tx2_gpu());
        let half = cost::conv_reduction_factors(
            ConvApprox::FilterSampling { k: 2, offset: 0 },
            Precision::Fp32,
        );
        let t_exact = gpu.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        let t_half = gpu.op_time(counts, half, Precision::Fp32);
        assert!(t_half < t_exact);
        // Large compute-bound op: ~2x speedup expected (within overhead).
        assert!(t_exact / t_half > 1.6, "ratio {}", t_exact / t_half);
    }

    #[test]
    fn frequency_scaling_slows_compute() {
        let counts = conv_counts();
        let mut gpu = TimingModel::new(DeviceSpec::tx2_gpu());
        let t_full = gpu.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        gpu.set_frequency_mhz(318.75);
        let t_low = gpu.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        let ratio = t_low / t_full;
        assert!(ratio > 3.0 && ratio < 4.2, "slowdown ratio {ratio}");
    }

    #[test]
    fn launch_overhead_floors_tiny_ops() {
        let gpu = TimingModel::new(DeviceSpec::tx2_gpu());
        let tiny = OpCounts {
            compute: 10.0,
            memory: 10.0,
        };
        let t = gpu.op_time(tiny, ReductionFactors::NONE, Precision::Fp32);
        assert!(t >= gpu.spec().launch_overhead_s);
    }

    #[test]
    fn program_time_is_sum() {
        let gpu = TimingModel::new(DeviceSpec::tx2_gpu());
        let counts = conv_counts();
        let one = gpu.op_time(counts, ReductionFactors::NONE, Precision::Fp32);
        let three = gpu.program_time(vec![(counts, ReductionFactors::NONE, Precision::Fp32); 3]);
        assert!((three - 3.0 * one).abs() < 1e-12);
    }
}
