#![warn(missing_docs)]

//! # at-hw — simulated edge-SoC compute units, DVFS, power and energy
//!
//! The paper's client device is an NVIDIA Jetson Tegra TX2 (Table 2: 6 CPU
//! cores, 2 GPU SMs / 256 CUDA cores at 1.12–1.3 GHz, 8 GB DRAM) with power
//! measured from on-board voltage rails over I2C at 1 kHz. No such board is
//! available here, so this crate provides an analytical *device model* that
//! plays the TX2's role:
//!
//! * [`DeviceSpec`] — peak throughput / bandwidth descriptors for the GPU
//!   and CPU compute units (FP16 runs at double rate on the GPU; the ARM
//!   CPU has no FP16 units, matching §7.1).
//! * [`timing`] — an execution-time model driven by the analytical
//!   operation counts of `at-tensor::cost`, with DVFS scaling.
//! * [`dvfs`] — the 12-step GPU frequency ladder (1300.5 → 318.75 MHz) used
//!   by the runtime-adaptation experiments (Fig 5, Fig 6).
//! * [`power`] — rail-level power model fitted to the *shape* of Figure 5
//!   (GPU power drops ~7×, total system power ~1.9× across the ladder).
//! * [`rails`] — a simulated 1 kHz rail sampler and integrating energy
//!   meter, mirroring the paper's I2C profiler.
//! * [`mulcell`] — per-bitwidth speed/energy benefit of the LUT-emulated
//!   approximate-multiplier cells (their numerical semantics live in
//!   `at-tensor::lut`; only the benefit is hardware-specific).
//! * [`disturb`] — scripted time-varying disturbances (governor steps,
//!   thermal throttling, brownouts, load spikes, sensor dropout) against
//!   the device model, for closed-loop runtime-adaptation experiments.

pub mod device;
pub mod disturb;
pub mod dvfs;
pub mod mulcell;
pub mod power;
pub mod rails;
pub mod timing;

pub use device::{ComputeUnitKind, DeviceSpec};
pub use disturb::{DeviceState, Disturbance, DisturbedDevice, Scenario};
pub use dvfs::FrequencyLadder;
pub use mulcell::{LutMulPoint, LUT_MUL_POINTS};
pub use power::{PowerModel, RailPower};
pub use rails::{EnergyMeter, RailSampler};
pub use timing::TimingModel;
