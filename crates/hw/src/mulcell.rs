//! Approximate-multiplier cell model (the hardware side of the LUT knobs).
//!
//! `at-tensor::lut` fixes the *numerical* semantics of the LUT-emulated
//! Mitchell multiplier — quantise to `bits`-bit magnitudes, serve products
//! from the precomputed truth table — so its QoS effect is
//! hardware-independent. What *is* hardware-specific is the benefit: a
//! logarithmic multiplier cell is far smaller and lower-energy than an
//! exact array multiplier, and narrower operands shrink it further
//! (roughly quadratically in operand width for the array portion).
//!
//! This module prices that benefit the same way `at-hw` prices FP16's
//! double-rate units: a per-bitwidth compute-rate speedup and an energy
//! advantage, consumed by `at-core::perf` when simulating install-time
//! measurements. The numbers are calibrated to the shape reported for
//! Mitchell-family multipliers in the approximate-computing literature
//! (2–3× energy at 8 bits, growing as operands narrow), not to a specific
//! fabbed cell.

use serde::{Deserialize, Serialize};

/// Benefit descriptor for one LUT-multiplier bitwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LutMulPoint {
    /// Operand bitwidth of the approximate multiplier.
    pub bits: u8,
    /// Multiply-accumulate rate advantage over the exact FP32 pipeline
    /// (applied to the compute side of the roofline).
    pub compute_speedup: f64,
    /// Energy-per-op advantage over the exact FP32 pipeline.
    pub energy_advantage: f64,
    /// Mean relative error of a single product (Mitchell error plus
    /// quantisation), for documentation and sanity checks.
    pub mean_rel_error: f64,
}

/// Calibration points for the supported knob bitwidths (8/6/4).
pub const LUT_MUL_POINTS: [LutMulPoint; 3] = [
    LutMulPoint {
        bits: 8,
        compute_speedup: 2.0,
        energy_advantage: 3.2,
        mean_rel_error: 0.040,
    },
    LutMulPoint {
        bits: 6,
        compute_speedup: 2.6,
        energy_advantage: 4.8,
        mean_rel_error: 0.055,
    },
    LutMulPoint {
        bits: 4,
        compute_speedup: 3.2,
        energy_advantage: 7.1,
        mean_rel_error: 0.11,
    },
];

impl LutMulPoint {
    /// The calibration point for a bitwidth; `None` for widths without a
    /// registered knob.
    pub fn for_bits(bits: u8) -> Option<LutMulPoint> {
        LUT_MUL_POINTS.iter().copied().find(|p| p.bits == bits)
    }

    /// Active-power factor relative to the exact pipeline: the cell runs
    /// `compute_speedup`× faster at `energy_advantage`× less energy per op,
    /// so while active it draws `speedup / advantage` of the exact power.
    pub fn power_factor(&self) -> f64 {
        self.compute_speedup / self.energy_advantage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_graded_monotonically() {
        // Narrower operands: faster, cheaper, less accurate.
        for w in LUT_MUL_POINTS.windows(2) {
            assert!(w[0].bits > w[1].bits);
            assert!(w[0].compute_speedup < w[1].compute_speedup);
            assert!(w[0].energy_advantage < w[1].energy_advantage);
            assert!(w[0].mean_rel_error < w[1].mean_rel_error);
        }
    }

    #[test]
    fn lookup_by_bits() {
        assert_eq!(LutMulPoint::for_bits(8).unwrap().bits, 8);
        assert_eq!(LutMulPoint::for_bits(4).unwrap().compute_speedup, 3.2);
        assert!(LutMulPoint::for_bits(5).is_none());
    }

    #[test]
    fn cells_draw_less_power_than_exact() {
        for p in LUT_MUL_POINTS {
            assert!(p.power_factor() < 1.0, "{}b power factor", p.bits);
            assert!(p.compute_speedup > 1.0 && p.energy_advantage > 1.0);
        }
    }
}
