//! Property tests on the checkpoint format: any structurally valid
//! [`SearchCheckpoint`] must serialise/deserialise losslessly, and any
//! damaged serialisation must produce a typed [`CheckpointError`], never a
//! panic.

use at_core::checkpoint::{CheckpointError, SearchCheckpoint, CHECKPOINT_VERSION};
use at_core::config::Config;
use at_core::evaluate::{BatchTelemetry, CacheSnapshot, CacheStats, Evaluation};
use at_core::knobs::KnobId;
use at_core::pareto::TradeoffPoint;
use at_core::search::{ArmState, TechniqueState, TunerState};
use at_core::supervise::{FaultStats, SupervisionSnapshot};
use proptest::prelude::*;

fn config_s() -> impl Strategy<Value = Config> {
    proptest::collection::vec(0u16..64, 0..6)
        .prop_map(|v| Config::from_knobs(v.into_iter().map(KnobId).collect()))
}

fn technique_s() -> impl Strategy<Value = TechniqueState> {
    (
        0u8..4,
        1usize..6,
        proptest::collection::vec(0usize..16, 0..4),
        proptest::collection::vec(
            (proptest::collection::vec(0usize..16, 0..4), -1.0e3..1.0e3),
            0..4,
        ),
    )
        .prop_map(|(tag, step, center, simplex)| match tag {
            0 => TechniqueState::Random,
            1 => TechniqueState::Evolutionary { sites: step },
            2 => TechniqueState::Torczon {
                center: if center.is_empty() {
                    None
                } else {
                    Some(center)
                },
                step,
            },
            _ => TechniqueState::NelderMead {
                simplex,
                max_vertices: step + 1,
            },
        })
}

fn tuner_state_s() -> impl Strategy<Value = TunerState> {
    (
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        (0usize..5000, 0usize..500),
        (proptest::bool::ANY, config_s(), -1.0e6..1.0e6),
        proptest::collection::vec(
            (
                proptest::collection::vec(proptest::bool::ANY, 0..8),
                0usize..100,
            ),
            0..5,
        ),
        proptest::collection::vec(technique_s(), 0..5),
    )
        .prop_map(
            |(rng, (iterations, since_improvement), (has_best, cfg, f), arms, techniques)| {
                TunerState {
                    rng: [rng.0, rng.1, rng.2, rng.3],
                    iterations,
                    since_improvement,
                    best: has_best.then_some((cfg, f)),
                    arms: arms
                        .into_iter()
                        .map(|(history, uses)| ArmState { history, uses })
                        .collect(),
                    techniques,
                }
            },
        )
}

fn fault_stats_s() -> impl Strategy<Value = FaultStats> {
    (
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
    )
        .prop_map(
            |(
                (attempts, retries, errors_caught, panics_caught, poisoned),
                (exhausted, quarantined, quarantine_hits, skipped),
            )| FaultStats {
                attempts,
                retries,
                errors_caught,
                panics_caught,
                poisoned,
                exhausted,
                quarantined,
                quarantine_hits,
                skipped,
            },
        )
}

fn supervision_s() -> impl Strategy<Value = SupervisionSnapshot> {
    (
        fault_stats_s(),
        proptest::collection::vec(config_s(), 0..4),
        proptest::collection::vec((config_s(), 0u32..10), 0..4),
        proptest::collection::vec((config_s(), 0u32..10), 0..4),
    )
        .prop_map(
            |(stats, quarantine, failures, attempt_base)| SupervisionSnapshot {
                stats,
                quarantine,
                failures,
                attempt_base,
            },
        )
}

fn cache_s() -> impl Strategy<Value = CacheSnapshot> {
    (
        proptest::collection::vec((config_s(), (0.0..100.0f64, 0.25..10.0)), 0..8),
        (0usize..1000, 0usize..1000, 0usize..1000),
    )
        .prop_map(|(entries, (hits, misses, dedup))| CacheSnapshot {
            entries: entries
                .into_iter()
                .map(|(c, (qos, perf))| (c, Evaluation { qos, perf }))
                .collect(),
            stats: CacheStats {
                hits,
                misses,
                dedup,
            },
        })
}

fn telemetry_s() -> impl Strategy<Value = Vec<BatchTelemetry>> {
    proptest::collection::vec(
        (
            (0usize..500, 1usize..64, 0usize..64),
            (0usize..64, 0usize..64),
            -1.0e9..1.0e9,
        ),
        0..8,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(
                |((round, proposed, cached), (evaluated, failed), best_fitness)| BatchTelemetry {
                    round,
                    proposed,
                    cached,
                    evaluated,
                    failed,
                    best_fitness,
                },
            )
            .collect()
    })
}

fn candidates_s() -> impl Strategy<Value = Vec<TradeoffPoint>> {
    proptest::collection::vec((config_s(), (0.0..100.0f64, 0.25..10.0)), 0..6).prop_map(|pts| {
        pts.into_iter()
            .map(|(config, (qos, perf))| TradeoffPoint { qos, perf, config })
            .collect()
    })
}

fn checkpoint_s() -> impl Strategy<Value = SearchCheckpoint> {
    (
        (0.0..100.0f64, 1usize..64, 0usize..500),
        tuner_state_s(),
        cache_s(),
        (candidates_s(), telemetry_s()),
        supervision_s(),
    )
        .prop_map(
            |(
                (qos_min, batch_size, rounds),
                tuner,
                cache,
                (candidates, telemetry),
                supervision,
            )| {
                let mut cp = SearchCheckpoint {
                    version: CHECKPOINT_VERSION,
                    qos_min,
                    batch_size,
                    rounds,
                    tuner,
                    cache,
                    candidates,
                    telemetry,
                    supervision,
                    fingerprint: 0,
                };
                cp.seal();
                cp
            },
        )
}

proptest! {
    #[test]
    fn json_roundtrip_is_lossless(ckpt in checkpoint_s()) {
        let json = ckpt.to_json();
        let back = SearchCheckpoint::from_json(&json).expect("valid checkpoint parses");
        prop_assert_eq!(&back, &ckpt);
        // And stable: re-serialising yields the identical byte string.
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn truncation_never_panics(ckpt in checkpoint_s(), cut in 0usize..10_000) {
        let json = ckpt.to_json();
        let cut = cut % json.len();
        // Guard against slicing mid-UTF-8 (knob JSON is ASCII, but stay safe).
        let cut = (0..=cut).rev().find(|&i| json.is_char_boundary(i)).unwrap();
        match SearchCheckpoint::from_json(&json[..cut]) {
            Ok(_) => prop_assert!(cut == json.len(), "strict prefix parsed"),
            Err(CheckpointError::Malformed(_)) | Err(CheckpointError::VersionMismatch { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    #[test]
    fn foreign_version_is_typed(ckpt in checkpoint_s(), bump in 1u32..100) {
        let mut foreign = ckpt;
        foreign.version = CHECKPOINT_VERSION + bump;
        let err = SearchCheckpoint::from_json(&foreign.to_json()).unwrap_err();
        prop_assert_eq!(err, CheckpointError::VersionMismatch {
            found: CHECKPOINT_VERSION + bump,
        });
    }

    #[test]
    fn validate_run_accepts_own_params_only(
        ckpt in checkpoint_s(),
        other_qos in 101.0..200.0f64,
    ) {
        prop_assert!(ckpt.validate_run(ckpt.qos_min, ckpt.batch_size).is_ok());
        // qos_min drawn from 0..100, so other_qos is always a true mismatch.
        prop_assert!(matches!(
            ckpt.validate_run(other_qos, ckpt.batch_size),
            Err(CheckpointError::Mismatch(_))
        ));
        prop_assert!(matches!(
            ckpt.validate_run(ckpt.qos_min, ckpt.batch_size + 1),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
