//! Acceptance tests for the overload-resilient serving runtime: the
//! adversarial storm (5× traffic spike concurrent with a rail brownout and
//! a scripted executor-fault burst) must be survived with a ≥99% deadline
//! hit rate over admitted requests, a breaker that trips *and* recovers, a
//! golden-snapshotted deterministic event sequence, bit-identical reports
//! across thread counts — and a corrupt-graph corpus on the serving path
//! that yields typed errors end-to-end, never a panic.

use at_core::config::Config;
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{
    generate_arrivals, serve, BreakerState, GraphExecutor, NoFaultExecutor, RequestExecutor,
    ScriptedFaultExecutor, ServeEventKind, ServeParams, ServeReport, TrafficPattern,
};
use at_hw::{DisturbedDevice, Scenario};
use at_ir::graph::ParamId;
use at_ir::{Graph, GraphBuilder, NodeId, OpKind};
use at_tensor::{Shape, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Synthetic shipped curve: strictly increasing speedup, decreasing QoS.
/// Its 2.2× top rung covers the storm's 1/0.6 ≈ 1.67× brownout slowdown.
fn storm_curve() -> TradeoffCurve {
    TradeoffCurve::from_points(
        [1.3f64, 1.7, 2.2]
            .iter()
            .enumerate()
            .map(|(i, &perf)| TradeoffPoint {
                qos: 98.0 - 2.0 * i as f64,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

/// Baseline service time: capacity is 20 req/s exactly.
const BASELINE_S: f64 = 0.05;

fn storm_params() -> ServeParams {
    ServeParams {
        deadline_s: 0.5,
        cooldown_s: 1.0,
        ..ServeParams::default()
    }
}

/// The storm case: background 10 rps (50% of capacity) with a 5× spike
/// over `[20, 30)` s, while the device rides a brownout (with sensor
/// dropout and timing jitter) across the same window and the executor
/// faults on a scripted burst of requests inside it.
fn storm_report() -> ServeReport {
    let pattern = TrafficPattern::Spike {
        base_rps: 10.0,
        spike_rps: 50.0,
        at_s: 20.0,
        len_s: 10.0,
    };
    let trace = generate_arrivals(&pattern, 60.0, 0xA7);
    // Execution indices: ~10/s before the spike puts execution #200 at
    // t≈20s; the brownout covers the whole spike and then some.
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 200, 300, 0.6, 23));
    let exec = ScriptedFaultExecutor {
        windows: vec![(220, 4)],
    };
    serve(
        &storm_curve(),
        BASELINE_S,
        &device,
        &trace,
        &exec,
        &storm_params(),
    )
}

#[test]
fn storm_meets_deadlines_sheds_typed_and_recovers_the_breaker() {
    let r = catch_unwind(AssertUnwindSafe(storm_report))
        .unwrap_or_else(|_| panic!("serve() panicked on the storm case"));

    // ≥99% of admitted (executed) requests met their deadline.
    assert!(
        r.deadline_hit_rate() >= 0.99,
        "hit rate {:.4} ({} on-time of {} admitted, {} late, {} faulted)",
        r.deadline_hit_rate(),
        r.served_on_time,
        r.admitted,
        r.served_late,
        r.faulted
    );

    // The breaker tripped on the fault burst and recovered within the run.
    assert!(r.breaker_trips >= 1, "fault burst must trip the breaker");
    assert_eq!(r.final_breaker, BreakerState::Closed, "must recover");
    let kinds: Vec<&ServeEventKind> = r.events.iter().map(|e| &e.kind).collect();
    let trip = kinds
        .iter()
        .position(|k| matches!(k, ServeEventKind::BreakerTripped { .. }))
        .expect("trip logged");
    let closed = kinds
        .iter()
        .rposition(|k| matches!(k, ServeEventKind::BreakerClosed))
        .expect("close logged");
    assert!(trip < closed, "recovery must follow the trip");

    // The overload was met by shedding accuracy first (ladder escalation),
    // and what had to be rejected carries a typed reason.
    assert!(
        r.escalations >= 1,
        "spike+brownout must escalate the ladder"
    );
    assert!(r.deescalations >= 1, "quiet tail must de-escalate");
    assert_eq!(r.final_rung, None, "quiet tail returns to exact baseline");
    assert!(
        r.shed_deadline + r.shed_queue_full > 0,
        "5x over capacity must shed at admission"
    );
    assert!(r.shed_breaker > 0, "open breaker must shed");

    // Accounting is conservative: every arrival is classified exactly once.
    assert_eq!(
        r.arrivals,
        r.admitted + r.shed_queue_full + r.shed_deadline + r.shed_breaker,
        "arrivals must partition into outcomes"
    );
    assert!(r.mean_latency_s.is_finite() && r.p99_latency_s.is_finite());
    assert!(r.mean_qos.is_finite() && r.mean_qos > 90.0);
}

#[test]
fn storm_event_sequence_matches_golden_snapshot() {
    let r = storm_report();
    let golden: Vec<String> = GOLDEN_EVENTS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        r.event_log(),
        golden,
        "storm control-plane sequence diverged from the golden snapshot"
    );
    assert_eq!(r.events_evicted, 0, "storm must fit the event log");
}

/// The storm's full control-plane event sequence. Regenerate by printing
/// `storm_report().event_log()` if the simulator's behaviour is
/// *intentionally* changed.
const GOLDEN_EVENTS: &[&str] = &[
    "t=1.4130 n=15 ladder+ b->0",
    "t=1.6040 n=20 ladder- 0->b",
    "t=16.3945 n=171 ladder+ b->0",
    "t=16.5615 n=176 ladder- 0->b",
    "t=20.1672 n=207 ladder+ b->0",
    "t=20.1728 n=207 ladder+ 0->1",
    "t=20.2131 n=208 ladder+ 1->2",
    "t=20.7850 n=223 breaker->open failures=3 flushed=7",
    "t=20.7850 n=223 ladder- 2->b",
    "t=21.7931 n=223 breaker->half-open",
    "t=21.8752 n=224 breaker->open failures=1 flushed=2",
    "t=22.8883 n=224 breaker->half-open",
    "t=23.1370 n=227 breaker->closed",
    "t=23.2358 n=228 ladder+ b->0",
    "t=23.2617 n=228 ladder+ 0->1",
    "t=23.2773 n=228 ladder+ 1->2",
    "t=27.0155 n=327 ladder- 2->1",
    "t=27.0216 n=327 ladder+ 1->2",
    "t=28.9950 n=379 ladder- 2->1",
    "t=29.0332 n=379 ladder+ 1->2",
    "t=30.1417 n=409 ladder- 2->1",
    "t=30.1836 n=409 ladder+ 1->2",
    "t=30.3430 n=414 ladder- 2->0",
    "t=30.6951 n=419 ladder- 0->b",
    "t=31.0880 n=423 ladder+ b->1",
    "t=31.3190 n=428 ladder- 1->b",
    "t=31.5268 n=430 ladder+ b->1",
    "t=31.7639 n=435 ladder- 1->b",
    "t=32.9956 n=442 ladder+ b->0",
    "t=33.2743 n=447 ladder- 0->b",
    "t=34.4527 n=459 ladder+ b->1",
    "t=34.6829 n=464 ladder- 1->b",
    "t=35.0127 n=466 ladder+ b->1",
    "t=35.2112 n=471 ladder- 1->b",
    "t=38.4321 n=490 ladder+ b->1",
    "t=38.6634 n=495 ladder- 1->b",
    "t=38.6870 n=495 ladder+ b->0",
    "t=38.9332 n=498 ladder+ 0->1",
    "t=39.0777 n=503 ladder- 1->b",
    "t=39.2019 n=503 ladder+ b->0",
    "t=39.3617 n=508 ladder- 0->b",
    "t=48.1382 n=584 ladder+ b->0",
    "t=48.3133 n=589 ladder- 0->b",
];

#[test]
fn storm_report_is_bit_identical_across_thread_counts() {
    let baseline = storm_report().to_json();
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let json = pool.install(|| storm_report().to_json());
        assert_eq!(
            json, baseline,
            "report diverged under a {threads}-thread pool"
        );
    }
}

// ---------------------------------------------------------------------------
// Corrupt-graph corpus on the serving path
// ---------------------------------------------------------------------------

fn tiny_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("serve-corpus", Shape::nchw(1, 3, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .flatten()
        .dense(5)
        .softmax();
    b.finish().unwrap()
}

/// `GraphExecutor::new` shielded so a panic is a test failure with context.
fn executor_no_panic<'a>(
    graph: &'a Graph,
    input: Tensor,
    label: &str,
) -> Result<GraphExecutor<'a>, TensorError> {
    catch_unwind(AssertUnwindSafe(|| GraphExecutor::new(graph, input)))
        .unwrap_or_else(|_| panic!("GraphExecutor::new panicked on corpus case `{label}`"))
}

#[test]
fn valid_graph_serves_end_to_end() {
    let g = tiny_graph(1);
    let input = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
    let exec = executor_no_panic(&g, input, "valid").unwrap();

    let pattern = TrafficPattern::Steady { rate_rps: 2.0 };
    let trace = generate_arrivals(&pattern, 10.0, 17);
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 10, 5, 0.8, 3));
    let r = serve(
        &storm_curve(),
        BASELINE_S,
        &device,
        &trace,
        &exec,
        &ServeParams::default(),
    );
    assert_eq!(r.faulted, 0, "a valid graph never faults");
    assert!(r.served_on_time > 0);
}

#[test]
fn corrupt_graphs_yield_typed_errors_never_panic() {
    // Wrong input channel count: shape inference must refuse at the door.
    let g = tiny_graph(2);
    let err = executor_no_panic(&g, Tensor::zeros(Shape::nchw(1, 5, 8, 8)), "bad-channels")
        .err()
        .expect("wrong channels must be refused");
    assert!(
        matches!(
            err,
            TensorError::ShapeMismatch { .. } | TensorError::Graph { .. }
        ),
        "bad-channels: got {err:?}"
    );

    // Wrong rank entirely.
    let err = executor_no_panic(&g, Tensor::zeros(Shape::new(&[7])), "bad-rank")
        .err()
        .expect("wrong rank must be refused");
    assert!(
        matches!(
            err,
            TensorError::ShapeMismatch { .. }
                | TensorError::Graph { .. }
                | TensorError::AxisOutOfRange { .. }
        ),
        "bad-rank: got {err:?}"
    );

    // NaN weights: parameter-finiteness validation must refuse.
    let mut poisoned = tiny_graph(3);
    poisoned.param_mut(ParamId(0)).data_mut()[0] = f32::NAN;
    let err = executor_no_panic(
        &poisoned,
        Tensor::zeros(Shape::nchw(1, 3, 8, 8)),
        "nan-weight",
    )
    .err()
    .expect("NaN weights must be refused");
    assert!(
        matches!(err, TensorError::Graph { ref detail } if detail.contains("non-finite")),
        "nan-weight: got {err:?}"
    );

    // Infinite weights, deep in the parameter tensor.
    let mut poisoned = tiny_graph(4);
    let data = poisoned.param_mut(ParamId(0)).data_mut();
    let last = data.len() - 1;
    data[last] = f32::INFINITY;
    let err = executor_no_panic(
        &poisoned,
        Tensor::zeros(Shape::nchw(1, 3, 8, 8)),
        "inf-weight",
    )
    .err()
    .expect("infinite weights must be refused");
    assert!(
        matches!(err, TensorError::Graph { .. }),
        "inf-weight: {err:?}"
    );

    // Dangling wiring: a node referencing an id that does not exist.
    let mut dangling = tiny_graph(5);
    dangling.add_node(OpKind::Relu, vec![NodeId(999)], "dangling");
    let err = executor_no_panic(
        &dangling,
        Tensor::zeros(Shape::nchw(1, 3, 8, 8)),
        "dangling",
    )
    .err()
    .expect("dangling wiring must be refused");
    assert!(
        matches!(err, TensorError::Graph { .. }),
        "dangling: {err:?}"
    );

    // An empty graph.
    let empty = Graph::new("empty");
    let err = executor_no_panic(&empty, Tensor::zeros(Shape::nchw(1, 3, 8, 8)), "empty")
        .err()
        .expect("empty graph must be refused");
    assert!(
        matches!(err, TensorError::EmptyGraph | TensorError::Graph { .. }),
        "empty: {err:?}"
    );
}

#[test]
fn corrupt_graph_on_the_serve_path_never_aborts_the_loop() {
    // Even if a corrupt executor somehow reaches the serving loop (e.g. a
    // faulting executor standing in for a graph whose weights rotted after
    // validation), every request resolves to a typed outcome and the loop
    // finishes normally.
    struct AlwaysFaults;
    impl RequestExecutor for AlwaysFaults {
        fn execute(&self, k: usize) -> Result<(), TensorError> {
            Err(TensorError::Graph {
                detail: format!("rotten weights at request {k}"),
            })
        }
    }

    let pattern = TrafficPattern::Steady { rate_rps: 4.0 };
    let trace = generate_arrivals(&pattern, 20.0, 29);
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 10, 5, 0.8, 3));
    let r = catch_unwind(AssertUnwindSafe(|| {
        serve(
            &storm_curve(),
            BASELINE_S,
            &device,
            &trace,
            &AlwaysFaults,
            &ServeParams::default(),
        )
    }))
    .unwrap_or_else(|_| panic!("serve() panicked on an always-faulting executor"));
    assert!(r.faulted >= 1);
    assert!(r.breaker_trips >= 1, "persistent faults must trip");
    assert_eq!(r.served_on_time + r.served_late, 0);
    assert_eq!(
        r.arrivals,
        r.admitted + r.shed_queue_full + r.shed_deadline + r.shed_breaker
    );
}

#[test]
fn no_fault_executor_with_diurnal_traffic_is_deterministic() {
    // A second, independent determinism check on a different pattern: two
    // fresh runs with identical inputs produce identical JSON.
    let pattern = TrafficPattern::Diurnal {
        min_rps: 2.0,
        max_rps: 30.0,
        period_s: 20.0,
    };
    let run = || {
        let trace = generate_arrivals(&pattern, 40.0, 0xBEEF);
        let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 50, 80, 0.7, 9));
        serve(
            &storm_curve(),
            BASELINE_S,
            &device,
            &trace,
            &NoFaultExecutor,
            &storm_params(),
        )
        .to_json()
    };
    assert_eq!(run(), run());
}
