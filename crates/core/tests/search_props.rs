//! Property tests on the search engine and configuration space.

use at_core::config::Config;
use at_core::knobs::KnobId;
use at_core::search::{Autotuner, SearchSpace};
use proptest::prelude::*;

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    proptest::collection::vec(1usize..8, 1..12).prop_map(|sizes| {
        SearchSpace::new(
            sizes
                .into_iter()
                .map(|n| (0..n as u16).map(KnobId).collect())
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn random_configs_stay_in_space(space in space_strategy(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = space.random(&mut rng);
        for (node, knobs) in space.node_knobs().iter().enumerate() {
            prop_assert!(knobs.contains(&c.knob(node)));
        }
    }

    #[test]
    fn index_roundtrip_for_any_space(space in space_strategy(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = space.random(&mut rng);
        prop_assert_eq!(space.from_indices(&space.to_indices(&c)), c);
    }

    #[test]
    fn tuner_terminates_and_tracks_best(
        space in space_strategy(),
        budget in 5usize..60,
    ) {
        let mut tuner = Autotuner::new(space, budget, budget, 7);
        let mut best_seen = f64::NEG_INFINITY;
        let mut iters = 0usize;
        while tuner.continue_tuning() {
            let it = tuner.next_config();
            // Arbitrary deterministic fitness.
            let f = it.config.knobs().iter().map(|k| k.0 as f64).sum::<f64>();
            best_seen = best_seen.max(f);
            tuner.report(&it.config, f);
            iters += 1;
            prop_assert!(iters <= budget + 1);
        }
        // The incumbent equals the best fitness ever reported.
        let (_, bf) = tuner.best().expect("at least one iteration ran");
        prop_assert!((bf - best_seen).abs() < 1e-12);
    }

    #[test]
    fn mutation_only_touches_tunable_sites(
        space in space_strategy(),
        seed in 0u64..500,
        sites in 1usize..4,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nk = space.node_knobs().to_vec();
        let base = Config::baseline_like(nk.len());
        let mutated = base.mutate(&nk, sites, &mut rng);
        for (node, knobs) in nk.iter().enumerate() {
            if knobs.len() <= 1 {
                prop_assert_eq!(mutated.knob(node), base.knob(node),
                    "non-tunable site {} changed", node);
            } else {
                prop_assert!(knobs.contains(&mutated.knob(node)));
            }
        }
    }
}

/// Helper mirroring `Config::baseline` without a graph.
trait BaselineLike {
    fn baseline_like(n: usize) -> Config;
}

impl BaselineLike for Config {
    fn baseline_like(n: usize) -> Config {
        Config::from_knobs(vec![KnobId::BASELINE; n])
    }
}
