//! Fleet edge-case tests: stealing never fires when no peer queue reaches
//! the 2-entry threshold, a half-open breaker sheds at the door once its
//! probe budget is spent, and power-of-two-choices degenerates correctly
//! when only one replica is available.

use at_core::config::Config;
use at_core::fleet::{
    route, run_fleet, FleetEventKind, FleetParams, ReplicaView, RouterPolicy, TenantSpec,
};
use at_core::guard::GuardParams;
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{
    NoFaultExecutor, RequestExecutor, ScriptedFaultExecutor, ServeParams, TrafficPattern,
};
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};

fn curve(qos_perf: &[(f64, f64)]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        qos_perf
            .iter()
            .map(|&(qos, perf)| TradeoffPoint {
                qos,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn idle_device() -> DisturbedDevice {
    DisturbedDevice::tx2(Scenario::new(
        "idle",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        0,
    ))
}

fn tenant(name: &str, rate_rps: f64, baseline_time_s: f64, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        curve: curve(&[(96.0, 1.4), (93.0, 1.9)]),
        baseline_time_s,
        baseline_qos: 98.0,
        pattern: TrafficPattern::Steady { rate_rps },
        arrival_seed: seed,
        guard: GuardParams {
            qos_floor: 85.0,
            ..GuardParams::default()
        },
    }
}

/// Stealing moves the back *half* of a peer queue, so it only fires when a
/// victim holds ≥ 2 waiting requests. With `queue_cap: 1` no queue can ever
/// reach the threshold — even under heavy overload, with stealing enabled,
/// zero steal events occur and the overflow sheds with a typed reason.
#[test]
fn no_steal_when_every_peer_queue_is_below_threshold() {
    let tenants = vec![tenant("hot", 120.0, 0.03, 0x57EA)];
    let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 2,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 1,
                ..ServeParams::default()
            },
            horizon_s: 20.0,
            steal: true,
            route_seed: 0x57EA,
            ..FleetParams::default()
        },
    );
    assert!(r.arrivals > 1000, "the overload must materialise");
    assert_eq!(
        r.steal_events, 0,
        "no queue ever reaches the steal threshold"
    );
    for rep in &r.replica_reports {
        assert_eq!(rep.steals_in, 0);
        assert_eq!(rep.steals_out, 0);
        assert!(rep.max_queue_depth <= 1);
    }
    assert!(!r
        .events
        .iter()
        .any(|e| matches!(e.kind, FleetEventKind::Steal { .. })));
    assert!(r.shed > 0, "cap-1 queues under overload must shed");
    assert_eq!(r.requests_unaccounted, 0);
}

/// Once a half-open breaker has admitted its probe budget, further
/// arrivals are shed at the door instead of queueing behind probes whose
/// verdict is still pending. A permanently faulting executor keeps the
/// single replica cycling trip → half-open → re-trip; with service slower
/// than the arrival gap, the budget is always exhausted mid-probe.
#[test]
fn half_open_probe_budget_exhaustion_sheds_at_door() {
    let faulty = ScriptedFaultExecutor {
        windows: vec![(0, usize::MAX / 2)],
    };
    let tenants = vec![tenant("t", 50.0, 0.1, 0xD00A)];
    let execs: Vec<&dyn RequestExecutor> = vec![&faulty];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 1,
            policy: RouterPolicy::RoundRobin,
            serve: ServeParams {
                deadline_s: 1.0,
                queue_cap: 8,
                cooldown_s: 0.0,
                half_open_probes: 2,
                ..ServeParams::default()
            },
            horizon_s: 10.0,
            steal: true,
            route_seed: 0xD00A,
            ..FleetParams::default()
        },
    );
    assert!(
        r.breaker_trips >= 2,
        "the breaker must re-trip from half-open"
    );
    assert!(
        r.events
            .iter()
            .any(|e| matches!(e.kind, FleetEventKind::BreakerHalfOpen { .. })),
        "the breaker must half-open during the run"
    );
    let shed_breaker: usize = r.tenants.iter().map(|t| t.shed_breaker).sum();
    assert!(
        shed_breaker > 0,
        "arrivals beyond the probe budget must shed at the door"
    );
    assert_eq!(r.requests_unaccounted, 0);
    assert_eq!(r.faulted, r.admitted, "every executed request faults");
}

/// Power-of-two-choices with a single available replica: both hash samples
/// land on it, `sampled` collapses to one entry, and it is chosen — the
/// policy never routes to an open or unreachable replica.
#[test]
fn power_of_two_with_one_available_replica_routes_to_it() {
    let views = [
        ReplicaView {
            breaker_open: true,
            ..ReplicaView::default()
        },
        ReplicaView {
            unreachable: true,
            ..ReplicaView::default()
        },
        ReplicaView {
            queue_len: 5,
            busy: true,
            degradation: 2,
            ..ReplicaView::default()
        },
        ReplicaView {
            breaker_open: true,
            unreachable: true,
            ..ReplicaView::default()
        },
    ];
    let mut cursor = 0;
    for key in 0..64u64 {
        let d = route(RouterPolicy::PowerOfTwoChoices, &views, &mut cursor, key);
        assert_eq!(d.chosen, Some(2), "key {key}: the only available replica");
        assert_eq!(d.sampled, vec![2], "key {key}: the sample pair collapses");
    }
    // And with nothing available the door closes.
    let none = [
        ReplicaView {
            breaker_open: true,
            ..ReplicaView::default()
        },
        ReplicaView {
            unreachable: true,
            ..ReplicaView::default()
        },
    ];
    let d = route(RouterPolicy::PowerOfTwoChoices, &none, &mut cursor, 7);
    assert_eq!(d.chosen, None);
    assert!(d.sampled.is_empty());
}
