//! Corrupted-artifact corpus: every damaged shipped artifact must yield a
//! typed [`ShipError`] — never a panic — and `load_repaired` must salvage
//! what strict loading rightly refuses.

use at_core::config::Config;
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::qos::QosMetric;
use at_core::ship::{graph_fingerprint, ShipError, ShippedArtifact, ARTIFACT_VERSION};
use at_ir::{Graph, GraphBuilder};
use at_tensor::Shape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("corpus-test", Shape::nchw(1, 3, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .flatten()
        .dense(5)
        .softmax();
    b.finish().unwrap()
}

/// A 3-point curve with unique, exactly-representable sentinel values so
/// corpus entries can corrupt individual numbers by string surgery.
/// perf sentinels: 1.25, 1.75, 2.5 — qos sentinels: 98.25, 96.25, 94.25.
fn curve() -> TradeoffCurve {
    TradeoffCurve::from_points(vec![
        TradeoffPoint {
            qos: 98.25,
            perf: 1.25,
            config: Config::from_knobs(vec![]),
        },
        TradeoffPoint {
            qos: 96.25,
            perf: 1.75,
            config: Config::from_knobs(vec![]),
        },
        TradeoffPoint {
            qos: 94.25,
            perf: 2.5,
            config: Config::from_knobs(vec![]),
        },
    ])
}

fn good_json(g: &Graph) -> String {
    let art = ShippedArtifact::new(g, QosMetric::Accuracy, 88.5, None, Some(curve()));
    let json = art.to_json();
    // The corpus relies on these sentinels appearing verbatim exactly once.
    for s in ["1.25", "1.75", "2.5", "88.5"] {
        assert_eq!(json.matches(s).count(), 1, "sentinel {s} not unique");
    }
    json
}

/// Strict load, shielded so a panic becomes a test failure with context.
fn load_no_panic(json: &str, g: &Graph, label: &str) -> Result<TradeoffCurve, ShipError> {
    catch_unwind(AssertUnwindSafe(|| ShippedArtifact::load(json, g, false)))
        .unwrap_or_else(|_| panic!("ShippedArtifact::load panicked on corpus case `{label}`"))
}

#[test]
fn baseline_artifact_loads_clean() {
    let g = graph(1);
    let c = load_no_panic(&good_json(&g), &g, "baseline").unwrap();
    assert_eq!(c.len(), 3);
}

#[test]
fn truncations_yield_typed_errors_never_panic() {
    let g = graph(1);
    let json = good_json(&g);
    // Every strict prefix is invalid JSON (the document ends with `}`).
    let cuts: Vec<usize> = (0..8)
        .map(|i| i * json.len() / 8)
        .chain([json.len().saturating_sub(1)])
        .collect();
    for cut in cuts {
        let prefix = &json[..cut];
        let err = load_no_panic(prefix, &g, &format!("truncate@{cut}")).unwrap_err();
        assert!(
            matches!(err, ShipError::Malformed(_)),
            "truncate@{cut}: expected Malformed, got {err:?}"
        );
    }
}

#[test]
fn garbage_inputs_yield_typed_errors() {
    let g = graph(1);
    for (label, bad) in [
        ("empty", String::new()),
        ("not-json", "not json at all".to_string()),
        ("wrong-type", "[1, 2, 3]".to_string()),
        ("null", "null".to_string()),
        ("nested-garbage", "{\"version\": {}}".to_string()),
        ("binaryish", "\u{0}\u{1}\u{2}".to_string()),
    ] {
        let err = load_no_panic(&bad, &g, label).unwrap_err();
        assert!(
            matches!(err, ShipError::Malformed(_)),
            "{label}: expected Malformed, got {err:?}"
        );
    }
}

#[test]
fn wrong_fingerprint_is_refused() {
    let g1 = graph(1);
    // Structurally different program (extra relu) → different fingerprint.
    let mut rng = StdRng::seed_from_u64(2);
    let mut b = GraphBuilder::new("corpus-test", Shape::nchw(1, 3, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .relu()
        .flatten()
        .dense(5)
        .softmax();
    let g2 = b.finish().unwrap();
    assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
    let err = load_no_panic(&good_json(&g1), &g2, "wrong-program").unwrap_err();
    assert!(matches!(err, ShipError::WrongProgram { .. }));
}

#[test]
fn future_schema_version_is_refused() {
    let g = graph(1);
    let mut art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.5, None, Some(curve()));
    art.version = ARTIFACT_VERSION + 41;
    let err = load_no_panic(&art.to_json(), &g, "future-version").unwrap_err();
    assert_eq!(
        err,
        ShipError::VersionMismatch {
            found: ARTIFACT_VERSION + 41
        }
    );
}

#[test]
fn non_finite_point_is_refused_strictly() {
    let g = graph(1);
    // `1e999` overflows f64 parsing to +inf: a poisoned perf value.
    let poisoned = good_json(&g).replace("1.75", "1e999");
    let err = load_no_panic(&poisoned, &g, "inf-perf").unwrap_err();
    assert_eq!(
        err,
        ShipError::NonFinitePoint {
            curve: "fp32",
            index: 1
        }
    );
    // Non-finite qos_min in the header is equally refused.
    let bad_header = good_json(&g).replace("88.5", "1e999");
    let err = load_no_panic(&bad_header, &g, "inf-qos-min").unwrap_err();
    assert!(matches!(err, ShipError::Malformed(_)));
}

#[test]
fn unsorted_curve_is_refused() {
    let g = graph(1);
    // Break strict speedup ordering: the last point drops below the first.
    let unsorted = good_json(&g).replace("2.5", "0.5");
    let err = load_no_panic(&unsorted, &g, "unsorted").unwrap_err();
    assert_eq!(
        err,
        ShipError::UnsortedCurve {
            curve: "fp32",
            index: 2
        }
    );
    // A duplicated speedup (plateau) is also not *strictly* increasing.
    let plateau = good_json(&g).replace("2.5", "1.25");
    let err = load_no_panic(&plateau, &g, "plateau").unwrap_err();
    assert!(matches!(err, ShipError::UnsortedCurve { .. }));
}

#[test]
fn empty_curve_is_refused() {
    let g = graph(1);
    let art = ShippedArtifact::new(
        &g,
        QosMetric::Accuracy,
        88.5,
        None,
        Some(TradeoffCurve::default()),
    );
    let err = load_no_panic(&art.to_json(), &g, "empty-curve").unwrap_err();
    assert_eq!(err, ShipError::NoUsableCurve);
    // No curve at all for the platform, likewise.
    let art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.5, None, None);
    let err = load_no_panic(&art.to_json(), &g, "no-curve").unwrap_err();
    assert_eq!(err, ShipError::NoUsableCurve);
}

#[test]
fn repair_salvages_poisoned_curve() {
    let g = graph(1);
    let poisoned = good_json(&g).replace("1.75", "1e999");
    // Strict load refuses it...
    assert!(ShippedArtifact::load(&poisoned, &g, false).is_err());
    // ...repair drops the bad point and keeps the rest usable.
    let (curve, report) = ShippedArtifact::load_repaired(&poisoned, &g, false).unwrap();
    assert_eq!(report.original, 3);
    assert_eq!(report.dropped_non_finite, 1);
    assert_eq!(report.kept, curve.len());
    assert!(!report.was_clean());
    assert!(curve
        .points()
        .iter()
        .all(|p| p.qos.is_finite() && p.perf.is_finite()));
    // The repaired curve satisfies the strict-load invariants.
    let pts = curve.points();
    for i in 1..pts.len() {
        assert!(pts[i].perf > pts[i - 1].perf);
    }
}

#[test]
fn repair_reports_clean_on_good_artifact() {
    let g = graph(1);
    let (curve, report) = ShippedArtifact::load_repaired(&good_json(&g), &g, false).unwrap();
    assert_eq!(curve.len(), 3);
    assert!(report.was_clean());
}

#[test]
fn repair_cannot_invent_a_curve() {
    let g = graph(1);
    // All three points poisoned: nothing survives repair.
    let hopeless = good_json(&g)
        .replace("1.25", "1e999")
        .replace("1.75", "1e999")
        .replace("2.5", "1e999");
    let err = ShippedArtifact::load_repaired(&hopeless, &g, false).unwrap_err();
    assert_eq!(err, ShipError::NoUsableCurve);
    // Header damage is not repairable either.
    let err = ShippedArtifact::load_repaired("{oops", &g, false).unwrap_err();
    assert!(matches!(err, ShipError::Malformed(_)));
}
