//! Crash-at-round-k resume tests: a tuning run that checkpoints, "crashes"
//! (halts) after k rounds, and is resumed from the checkpoint must produce
//! results bit-identical to the same run left uninterrupted — with and
//! without injected faults.

use at_core::checkpoint::{CheckpointPolicy, SearchCheckpoint};
use at_core::fault::{FaultMix, FaultPlan};
use at_core::knobs::{KnobRegistry, KnobSet};
use at_core::predict::PredictionModel;
use at_core::qos::{QosMetric, QosReference};
use at_core::supervise::SupervisionPolicy;
use at_core::tuner::{PredictiveTuner, RobustnessParams, TunerParams, TuningResult};
use at_ir::{execute, ExecOptions, Graph, GraphBuilder};
use at_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn setup() -> (Graph, Vec<Tensor>, QosReference) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new("resume-t", Shape::nchw(16, 2, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .max_pool(2, 2)
        .flatten()
        .dense(5)
        .softmax();
    let g = b.finish().unwrap();
    let mut rng2 = StdRng::seed_from_u64(6);
    let inputs: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(Shape::nchw(16, 2, 8, 8), -1.0, 1.0, &mut rng2))
        .collect();
    let mut labels = Vec::new();
    for bt in &inputs {
        let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
        let (rows, c) = out.shape().as_mat().unwrap();
        labels.push(
            (0..rows)
                .map(|r| {
                    let row = &out.data()[r * c..(r + 1) * c];
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0
                })
                .collect(),
        );
    }
    (g, inputs, QosReference::Labels(labels))
}

fn base_params() -> TunerParams {
    TunerParams {
        qos_min: 85.0,
        n_calibrate: 4,
        max_iters: 160,
        convergence_window: 160,
        max_validated: 12,
        max_shipped: 8,
        model: PredictionModel::Pi2,
        knob_set: KnobSet::HardwareIndependent,
        ..TunerParams::default()
    }
}

fn fast_supervision() -> SupervisionPolicy {
    SupervisionPolicy {
        backoff_ms: 0,
        ..SupervisionPolicy::default()
    }
}

fn run(robustness: RobustnessParams) -> TuningResult {
    let (g, inputs, reference) = setup();
    let registry = KnobRegistry::new();
    let tuner = PredictiveTuner {
        graph: &g,
        registry: &registry,
        inputs: &inputs,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: inputs[0].shape(),
        promise_seed: 0,
    };
    let mut p = base_params();
    p.robustness = robustness;
    let profiles = tuner.collect(&p).unwrap();
    tuner.tune(&profiles, &p).unwrap()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("at-resume-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("search.ckpt.json")
}

fn assert_identical(a: &TuningResult, b: &TuningResult) {
    assert_eq!(a.curve.to_json(), b.curve.to_json(), "curves differ");
    assert_eq!(a.telemetry, b.telemetry, "telemetry differs");
    assert_eq!(a.iterations, b.iterations, "iteration counts differ");
    assert_eq!(a.cache, b.cache, "cache stats differ");
    assert_eq!(a.faults, b.faults, "fault counters differ");
    assert_eq!(a.candidates, b.candidates);
}

/// Crash after `k` rounds, resume from the forced checkpoint, and check the
/// finished result against the uninterrupted reference run.
fn crash_and_resume(name: &str, k: usize, fault_plan: Option<FaultPlan>) {
    let path = scratch(name);
    let robustness = |ckpt, halt, resume| RobustnessParams {
        fault_plan: fault_plan.clone(),
        supervision: fast_supervision(),
        checkpoint: ckpt,
        halt_after_rounds: halt,
        resume_from: resume,
    };

    // Reference: one uninterrupted run.
    let uninterrupted = run(robustness(None, None, None));
    assert!(!uninterrupted.halted);

    // Crash: checkpoint every 2 rounds, halt after k (forces a final save).
    let crashed = run(robustness(
        Some(CheckpointPolicy::new(2, &path)),
        Some(k),
        None,
    ));
    assert!(crashed.halted, "run did not halt at round {k}");
    assert!(path.exists(), "no checkpoint written at halt");

    // Resume from disk and finish.
    let ckpt = SearchCheckpoint::load(&path).unwrap();
    assert_eq!(ckpt.rounds, k);
    let resumed = run(robustness(None, None, Some(ckpt)));
    assert!(!resumed.halted);

    assert_identical(&uninterrupted, &resumed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_is_bit_identical_clean() {
    crash_and_resume("clean", 3, None);
}

#[test]
fn resume_is_bit_identical_under_faults() {
    // The harder case: injected faults draw per (config, attempt, seed), so
    // resume must also restore the per-config attempt cursors to replay the
    // identical fault stream.
    let plan = FaultPlan {
        rate: 0.2,
        seed: 0xC4A5,
        mix: FaultMix::default(),
        stall_ms: 0,
    };
    crash_and_resume("faulty", 4, Some(plan));
}

#[test]
fn resume_at_different_rounds_converges_identically() {
    // Crashing earlier or later must not change the final answer.
    crash_and_resume("early", 1, None);
    crash_and_resume("late", 8, None);
}

#[test]
fn checkpoint_survives_process_boundary_shape() {
    // The checkpoint is plain JSON on disk: reloading and re-serialising it
    // is lossless, which is what a fresh process would observe.
    let path = scratch("roundtrip");
    let robustness = RobustnessParams {
        supervision: fast_supervision(),
        checkpoint: Some(CheckpointPolicy::new(1, &path)),
        halt_after_rounds: Some(2),
        ..RobustnessParams::default()
    };
    let halted = run(robustness);
    assert!(halted.halted);
    let ckpt = SearchCheckpoint::load(&path).unwrap();
    let json = ckpt.to_json();
    let back = SearchCheckpoint::from_json(&json).unwrap();
    assert_eq!(back.to_json(), json);
    let _ = std::fs::remove_file(&path);
}
