//! End-to-end fault-tolerance tests: a seeded tuning campaign under a 20%
//! injected fault rate (mixed transient errors, panics, stalls and
//! poisoned evaluations) must complete without aborting, report accurate
//! counters, stay deterministic, and land close to the zero-fault result.

use at_core::empirical::EmpiricalTuner;
use at_core::fault::{FaultMix, FaultPlan};
use at_core::knobs::{KnobRegistry, KnobSet};
use at_core::predict::PredictionModel;
use at_core::qos::{QosMetric, QosReference};
use at_core::supervise::SupervisionPolicy;
use at_core::tuner::{PredictiveTuner, RobustnessParams, TunerParams, TuningResult};
use at_ir::{execute, ExecOptions, Graph, GraphBuilder};
use at_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, Vec<Tensor>, QosReference) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new("fault-t", Shape::nchw(16, 2, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .max_pool(2, 2)
        .flatten()
        .dense(5)
        .softmax();
    let g = b.finish().unwrap();
    let mut rng2 = StdRng::seed_from_u64(6);
    let inputs: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(Shape::nchw(16, 2, 8, 8), -1.0, 1.0, &mut rng2))
        .collect();
    let mut labels = Vec::new();
    for bt in &inputs {
        let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
        let (rows, c) = out.shape().as_mat().unwrap();
        labels.push(
            (0..rows)
                .map(|r| {
                    let row = &out.data()[r * c..(r + 1) * c];
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0
                })
                .collect(),
        );
    }
    (g, inputs, QosReference::Labels(labels))
}

fn params(robustness: RobustnessParams) -> TunerParams {
    TunerParams {
        qos_min: 85.0,
        n_calibrate: 4,
        max_iters: 200,
        convergence_window: 200,
        max_validated: 16,
        max_shipped: 10,
        model: PredictionModel::Pi2,
        knob_set: KnobSet::HardwareIndependent,
        robustness,
        ..TunerParams::default()
    }
}

/// A 20% mixed-fault plan tuned for test speed (no real sleeps).
fn plan_20pct() -> FaultPlan {
    FaultPlan {
        rate: 0.2,
        seed: 0xFA157,
        mix: FaultMix::default(),
        stall_ms: 0,
    }
}

fn fast_supervision() -> SupervisionPolicy {
    SupervisionPolicy {
        backoff_ms: 0,
        ..SupervisionPolicy::default()
    }
}

fn run(robustness: RobustnessParams) -> TuningResult {
    let (g, inputs, reference) = setup();
    let registry = KnobRegistry::new();
    let tuner = PredictiveTuner {
        graph: &g,
        registry: &registry,
        inputs: &inputs,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: inputs[0].shape(),
        promise_seed: 0,
    };
    let p = params(robustness);
    let profiles = tuner.collect(&p).unwrap();
    tuner.tune(&profiles, &p).unwrap()
}

fn best_perf(r: &TuningResult) -> f64 {
    r.curve
        .points()
        .iter()
        .map(|p| p.perf)
        .fold(f64::NEG_INFINITY, f64::max)
}

#[test]
fn clean_run_reports_zero_faults() {
    let r = run(RobustnessParams {
        supervision: fast_supervision(),
        ..RobustnessParams::default()
    });
    assert!(!r.curve.is_empty());
    assert_eq!(r.faults.faults_absorbed(), 0);
    assert_eq!(r.faults.retries, 0);
    assert_eq!(r.faults.quarantined, 0);
    assert_eq!(r.faults.skipped, 0);
    assert!(!r.halted);
    // Every distinct evaluation ran exactly once.
    assert_eq!(r.faults.attempts as usize, r.cache.misses);
}

#[test]
fn survives_20pct_mixed_faults_and_stays_accurate() {
    let clean = run(RobustnessParams {
        supervision: fast_supervision(),
        ..RobustnessParams::default()
    });
    let faulty = run(RobustnessParams {
        fault_plan: Some(plan_20pct()),
        supervision: fast_supervision(),
        ..RobustnessParams::default()
    });

    // The campaign completed and produced a usable curve.
    assert!(!faulty.curve.is_empty(), "faulted run produced no curve");
    assert!(!faulty.halted);

    // Counters reflect a real fault load: at a 20% per-attempt rate the
    // supervisor must have absorbed faults and retried.
    assert!(
        faulty.faults.faults_absorbed() > 0,
        "no faults absorbed at 20% rate: {:?}",
        faulty.faults
    );
    assert!(faulty.faults.retries > 0);
    assert!(faulty.faults.attempts > faulty.cache.misses as u64);
    // Counter consistency: what the driver skipped shows up per round.
    let skipped_in_rounds: usize = faulty.telemetry.iter().map(|t| t.failed).sum();
    assert_eq!(faulty.faults.skipped, skipped_in_rounds as u64);
    // Only final failures can quarantine, and each exhaustion is counted.
    assert!(faulty.faults.quarantined <= faulty.faults.exhausted);

    // Tuning quality: the faulted run converges to (nearly) the same best
    // speedup as the clean one. Retries clear almost all transient faults
    // (P[4 consecutive] ≈ 0.16%), so only rare quarantines can cost
    // candidates.
    let clean_best = best_perf(&clean);
    let faulty_best = best_perf(&faulty);
    assert!(
        faulty_best >= 0.9 * clean_best,
        "faulted best {faulty_best} too far below clean best {clean_best}"
    );
}

#[test]
fn faulted_runs_are_deterministic() {
    let robustness = || RobustnessParams {
        fault_plan: Some(plan_20pct()),
        supervision: fast_supervision(),
        ..RobustnessParams::default()
    };
    let a = run(robustness());
    let b = run(robustness());
    assert_eq!(a.curve.to_json(), b.curve.to_json());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.cache, b.cache);
}

#[test]
fn empirical_tuner_survives_faults_too() {
    let (g, inputs, reference) = setup();
    let registry = KnobRegistry::new();
    let tuner = EmpiricalTuner {
        graph: &g,
        registry: &registry,
        inputs: &inputs,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: inputs[0].shape(),
        promise_seed: 0,
    };
    let p = TunerParams {
        qos_min: 85.0,
        max_iters: 60,
        convergence_window: 60,
        max_shipped: 8,
        robustness: RobustnessParams {
            fault_plan: Some(plan_20pct()),
            supervision: fast_supervision(),
            ..RobustnessParams::default()
        },
        ..TunerParams::default()
    };
    let r = tuner.tune(&p).unwrap();
    assert!(!r.curve.is_empty());
    assert!(r.faults.faults_absorbed() > 0);
}
