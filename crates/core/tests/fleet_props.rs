//! Property tests on the fleet router. [`route`] is a pure function of
//! `(policy, views, cursor, key)`, which lets proptest pin down the four
//! invariants every balancer must hold before any simulation runs on top:
//! join-shortest-queue never routes to a strictly longer queue than the
//! minimum, power-of-two-choices only ever picks from its sampled pair,
//! round-robin cycles through the available replicas permutation-fairly,
//! and *no* policy routes to an open-breaker or unreachable (crashed /
//! partitioned / gray-ejected) replica while an available one exists.

use at_core::fleet::{route, ReplicaView, RouteDecision, RouterPolicy};
use proptest::prelude::*;

/// An arbitrary replica view: bounded queue depth, busy flag, breaker
/// flag, degradation rung, reachability flag.
fn view_s() -> impl Strategy<Value = ReplicaView> {
    (
        0usize..50,
        prop::bool::ANY,
        prop::bool::ANY,
        0usize..6,
        prop::bool::ANY,
    )
        .prop_map(
            |(queue_len, busy, breaker_open, degradation, unreachable)| ReplicaView {
                queue_len,
                busy,
                breaker_open,
                degradation,
                unreachable,
            },
        )
}

fn available(v: &ReplicaView) -> bool {
    !v.breaker_open && !v.unreachable
}

fn views_s() -> impl Strategy<Value = Vec<ReplicaView>> {
    prop::collection::vec(view_s(), 1..12)
}

/// Views with at least `k` available replicas.
fn views_closed_s(k: usize) -> impl Strategy<Value = Vec<ReplicaView>> {
    prop::collection::vec(view_s(), 1..12).prop_filter("needs available replicas", move |vs| {
        vs.iter().filter(|v| available(v)).count() >= k
    })
}

fn closed_of(views: &[ReplicaView]) -> Vec<usize> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| available(v))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    /// No policy routes to an open-breaker replica while any closed
    /// replica exists; with every breaker open the decision is `None`;
    /// any chosen index is in bounds.
    #[test]
    fn never_routes_to_open_breaker(
        views in views_s(),
        cursor0 in 0usize..32,
        key in 0u64..u64::MAX,
        policy_ix in 0usize..3,
    ) {
        let policy = RouterPolicy::ALL[policy_ix];
        let closed = closed_of(&views);
        let mut cursor = cursor0;
        let RouteDecision { chosen, sampled } = route(policy, &views, &mut cursor, key);
        match chosen {
            Some(i) => {
                prop_assert!(i < views.len());
                prop_assert!(available(&views[i]),
                    "{policy:?} routed to open/unreachable replica {i}");
                prop_assert!(!closed.is_empty());
            }
            None => prop_assert!(closed.is_empty(),
                "{policy:?} returned None with available replicas {closed:?}"),
        }
        // Sampled sets only ever contain available replicas.
        for &s in &sampled {
            prop_assert!(available(&views[s]));
        }
    }

    /// Join-shortest-queue never routes to a strictly longer queue than
    /// the minimum over closed replicas.
    #[test]
    fn jsq_routes_to_a_minimum_queue(
        views in views_s(),
        key in 0u64..u64::MAX,
    ) {
        let closed = closed_of(&views);
        let mut cursor = 0;
        let d = route(RouterPolicy::JoinShortestQueue, &views, &mut cursor, key);
        if let Some(i) = d.chosen {
            let min_q = closed.iter().map(|&j| views[j].queue_len).min().unwrap();
            prop_assert_eq!(views[i].queue_len, min_q,
                "JSQ chose queue_len {} but the minimum is {}",
                views[i].queue_len, min_q);
        } else {
            prop_assert!(closed.is_empty());
        }
    }

    /// Power-of-two-choices only ever chooses one of its sampled replicas,
    /// samples at most two, both closed, and the choice minimises the
    /// QoS-aware score (queue depth + degradation rung) over the sample.
    #[test]
    fn po2_only_considers_sampled_replicas(
        views in views_s(),
        key in 0u64..u64::MAX,
    ) {
        let mut cursor = 0;
        let d = route(RouterPolicy::PowerOfTwoChoices, &views, &mut cursor, key);
        prop_assert!(d.sampled.len() <= 2, "po2 sampled {:?}", d.sampled);
        for &s in &d.sampled {
            prop_assert!(available(&views[s]));
        }
        if let Some(i) = d.chosen {
            prop_assert!(d.sampled.contains(&i),
                "po2 chose {} outside its sample {:?}", i, d.sampled);
            let score = |j: usize| views[j].queue_len + views[j].degradation;
            let best = d.sampled.iter().map(|&j| score(j)).min().unwrap();
            prop_assert_eq!(score(i), best);
        }
    }

    /// Power-of-two sampling is stateless: the same key over the same
    /// views yields the identical decision.
    #[test]
    fn po2_is_deterministic_in_its_key(
        views in views_s(),
        key in 0u64..u64::MAX,
    ) {
        let mut c1 = 0;
        let mut c2 = 0;
        let d1 = route(RouterPolicy::PowerOfTwoChoices, &views, &mut c1, key);
        let d2 = route(RouterPolicy::PowerOfTwoChoices, &views, &mut c2, key);
        prop_assert_eq!(d1, d2);
    }

    /// Round-robin is a permutation-fair cycle: over any window of
    /// `closed.len()` consecutive decisions with fixed views, every closed
    /// replica is chosen exactly once — regardless of the starting cursor.
    #[test]
    fn round_robin_is_permutation_fair(
        views in views_closed_s(1),
        cursor0 in 0usize..32,
    ) {
        let closed = closed_of(&views);
        let mut cursor = cursor0 % views.len();
        let mut counts = vec![0usize; views.len()];
        for k in 0..closed.len() {
            let d = route(RouterPolicy::RoundRobin, &views, &mut cursor, k as u64);
            let i = d.chosen.unwrap();
            counts[i] += 1;
        }
        for &i in &closed {
            prop_assert_eq!(counts[i], 1,
                "round-robin visited replica {} {} times in one cycle", i, counts[i]);
        }
        for (i, v) in views.iter().enumerate() {
            if !available(v) {
                prop_assert_eq!(counts[i], 0);
            }
        }
    }

    /// The round-robin cursor always lands one past the chosen replica, so
    /// consecutive arrivals never pile onto one replica while others are
    /// closed.
    #[test]
    fn round_robin_advances_past_its_choice(
        views in views_closed_s(2),
        cursor0 in 0usize..32,
    ) {
        let mut cursor = cursor0;
        let first = route(RouterPolicy::RoundRobin, &views, &mut cursor, 0)
            .chosen
            .unwrap();
        let second = route(RouterPolicy::RoundRobin, &views, &mut cursor, 1)
            .chosen
            .unwrap();
        prop_assert_ne!(first, second,
            "consecutive round-robin choices must differ with ≥2 available replicas");
    }
}
