//! Acceptance tests for the trust-but-verify QoS guard: a shipped curve
//! whose promises are deliberately miscalibrated 2× on its aggressive
//! points must have every lying point quarantined within the canary
//! budget, with zero post-quarantine QoS-floor breaches among canaried
//! requests; forcing every point to lie must engage the exact-fallback
//! safety net with a typed event, never a panic; and the full guarded
//! report must be bit-identical across thread counts.

use at_core::config::Config;
use at_core::guard::{GuardEventKind, GuardParams, MiscalibratedExecutor, PointTrust};
use at_core::knobs::{KnobId, KnobRegistry};
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::qos::QosMetric;
use at_core::serve::{
    generate_arrivals, serve_guarded, GraphExecutor, GuardedServeReport, RequestExecutor,
    ServeParams, TrafficPattern,
};
use at_hw::{DisturbedDevice, Scenario};
use at_ir::{Graph, GraphBuilder};
use at_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Baseline service time: capacity is 20 req/s exactly.
const BASELINE_S: f64 = 0.05;

/// The promises each rung ships with. Rung 0 is honest; rungs 1 and 2
/// are the aggressive points and their promises are inflated.
const PROMISED_QOS: [f64; 3] = [97.0, 96.0, 95.0];

/// What each rung actually delivers. Rungs 1 and 2 lose exactly 2× the
/// QoS their promise admits (promised loss 4 → true loss 8; promised
/// loss 5 → true loss 10, against the 100.0 baseline).
const HONEST_QOS: [f64; 3] = [97.0, 92.0, 90.0];

fn shipped_curve(promised: &[f64]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        [1.3f64, 1.7, 2.2]
            .iter()
            .zip(promised)
            .map(|(&perf, &qos)| TradeoffPoint {
                qos,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn overload_params() -> ServeParams {
    ServeParams {
        deadline_s: 0.5,
        cooldown_s: 1.0,
        ..ServeParams::default()
    }
}

fn guard_params(qos_floor: f64) -> GuardParams {
    GuardParams {
        canary_fraction: 0.35,
        canary_seed: 0x5EED,
        tolerance: 1.0,
        strikes_to_quarantine: 3,
        qos_floor,
        ..GuardParams::default()
    }
}

/// 2× the baseline capacity for a full minute: the ladder escalates onto
/// the aggressive (lying) rungs and stays under pressure, so canaries
/// keep flowing to each surviving rung until the liars are convicted.
fn guarded_report(honest: &[f64; 3], qos_floor: f64) -> GuardedServeReport {
    let pattern = TrafficPattern::Steady { rate_rps: 40.0 };
    let trace = generate_arrivals(&pattern, 60.0, 0xC4);
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 10, 5, 0.9, 3));
    let exec = MiscalibratedExecutor {
        honest_qos: honest.to_vec(),
        jitter: 0.4,
        seed: 0xB0B,
    };
    serve_guarded(
        &shipped_curve(&PROMISED_QOS),
        BASELINE_S,
        &device,
        &trace,
        &exec,
        &overload_params(),
        &guard_params(qos_floor),
    )
}

#[test]
fn lying_points_are_quarantined_within_the_canary_budget() {
    let r = catch_unwind(AssertUnwindSafe(|| guarded_report(&HONEST_QOS, 85.0)))
        .unwrap_or_else(|_| panic!("serve_guarded() panicked on the miscalibrated curve"));
    let g = &r.guard;

    // Every lying point was convicted; the honest point survived.
    let mut convicted = g.quarantined.clone();
    convicted.sort_unstable();
    assert_eq!(convicted, vec![1, 2], "quarantined {:?}", g.quarantined);
    assert_eq!(g.accounts[0].trust, PointTrust::Trusted);
    assert_eq!(g.accounts[1].trust, PointTrust::Quarantined);
    assert_eq!(g.accounts[2].trust, PointTrust::Quarantined);
    assert_eq!(g.repairs, 2);
    assert!(
        !g.exact_fallback,
        "honest rung 0 must keep the curve usable"
    );

    // Within the canary budget: every canary on a lying rung is a miss
    // (the lie dwarfs jitter + tolerance), so conviction lands on exactly
    // `strikes_to_quarantine` canaries per liar — no more.
    assert_eq!(
        g.misses,
        6,
        "2 liars x 3 strikes, event log:\n{:#?}",
        g.event_log()
    );
    for rung in [1usize, 2] {
        let misses = g
            .events
            .iter()
            .filter(|e| matches!(e.kind, GuardEventKind::CanaryMiss { rung: r, .. } if r == rung))
            .count();
        assert_eq!(misses, 3, "rung {rung} must convict in exactly 3 canaries");
    }
    assert!(
        g.canaries > 20,
        "overload run must canary plenty of requests, got {}",
        g.canaries
    );
    assert_eq!(g.poisoned, 0);

    // The repaired curve carries honest promises for the convicted rungs:
    // the windowed observed estimate, within jitter of the true QoS.
    for rung in [1usize, 2] {
        let repaired = g.repaired_curve.points()[rung].qos;
        assert!(
            (repaired - HONEST_QOS[rung]).abs() <= 0.4 + 1e-9,
            "rung {rung} repaired to {repaired}, honest {}",
            HONEST_QOS[rung]
        );
    }
    // The honest rung's promise is untouched.
    assert_eq!(g.repaired_curve.points()[0].qos, PROMISED_QOS[0]);

    // The serving loop itself stayed healthy throughout.
    assert_eq!(
        r.serve.arrivals,
        r.serve.admitted + r.serve.shed_queue_full + r.serve.shed_deadline + r.serve.shed_breaker
    );
    assert!(r.serve.mean_qos.is_finite());
}

#[test]
fn no_floor_breach_after_quarantine_among_canaried_requests() {
    // Floor at 91: the rung-2 liar truly delivers 90±0.4, so its canaries
    // breach the floor *until* it is convicted — after the last
    // quarantine, every canaried request observes QoS above the floor.
    let r = guarded_report(&HONEST_QOS, 91.0);
    let g = &r.guard;

    let mut convicted = g.quarantined.clone();
    convicted.sort_unstable();
    assert_eq!(convicted, vec![1, 2]);
    assert!(
        g.premasked_below_floor.is_empty(),
        "every shipped promise is above the floor"
    );

    let last_quarantine = g
        .events
        .iter()
        .rposition(|e| matches!(e.kind, GuardEventKind::Quarantined { .. }))
        .unwrap_or_else(|| panic!("no quarantine logged:\n{:#?}", g.event_log()));
    let breaches_after = g.events[last_quarantine..]
        .iter()
        .filter(|e| matches!(e.kind, GuardEventKind::FloorBreach { .. }))
        .count();
    assert_eq!(
        breaches_after,
        0,
        "canaried floor breaches after the last quarantine:\n{:#?}",
        g.event_log()
    );
    // The breaches that did happen all predate conviction and were all
    // charged to the rung that truly sits below the floor.
    assert!(
        g.floor_breaches > 0,
        "the 90-QoS liar must breach the 91 floor before conviction"
    );
    assert!(g.events[..last_quarantine]
        .iter()
        .filter(|e| matches!(e.kind, GuardEventKind::FloorBreach { .. }))
        .all(|e| matches!(e.kind, GuardEventKind::FloorBreach { rung: 2, .. })));
}

#[test]
fn all_points_lying_forces_exact_fallback_with_a_typed_event() {
    // Every rung truly delivers far below both its promise and the floor:
    // quarantine exhausts the whole curve and the guard clamps to exact.
    let r = catch_unwind(AssertUnwindSafe(|| {
        guarded_report(&[80.0, 78.0, 76.0], 90.0)
    }))
    .unwrap_or_else(|_| panic!("serve_guarded() panicked on the all-lying curve"));
    let g = &r.guard;

    let mut convicted = g.quarantined.clone();
    convicted.sort_unstable();
    assert_eq!(convicted, vec![0, 1, 2], "every point must be convicted");
    assert!(g.exact_fallback, "exhausted curve must clamp to exact");
    let unrecoverable = g
        .events
        .iter()
        .filter(|e| matches!(e.kind, GuardEventKind::QosFloorUnrecoverable { floor } if (floor - 90.0).abs() < 1e-12))
        .count();
    assert_eq!(
        unrecoverable, 1,
        "typed fallback event, logged exactly once"
    );

    // The loop kept serving (at the exact baseline) after the fallback.
    assert_eq!(r.serve.final_rung, None, "run must end on the exact config");
    assert!(r.serve.served_on_time > 0);
    assert!(r.serve.mean_qos.is_finite());
}

#[test]
fn guarded_report_is_bit_identical_across_thread_counts() {
    let baseline = guarded_report(&HONEST_QOS, 91.0).to_json();
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let json = pool.install(|| guarded_report(&HONEST_QOS, 91.0).to_json());
        assert_eq!(
            json, baseline,
            "guarded report diverged under a {threads}-thread pool"
        );
    }
}

// ---------------------------------------------------------------------------
// Real shadow re-execution through GraphExecutor::with_canary
// ---------------------------------------------------------------------------

fn canary_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(11);
    let mut b = GraphBuilder::new("canary-smoke", Shape::nchw(1, 3, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .flatten()
        .dense(5)
        .softmax();
    b.finish().unwrap()
}

fn varied_input() -> Tensor {
    let n = 3 * 8 * 8;
    let data: Vec<f32> = (0..n)
        .map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0)
        .collect();
    Tensor::from_vec(Shape::nchw(1, 3, 8, 8), data).unwrap()
}

#[test]
fn graph_executor_measures_canary_qos_by_exact_re_execution() {
    let graph = canary_graph();
    let registry = KnobRegistry::new();
    let exec = GraphExecutor::with_canary(
        &graph,
        varied_input(),
        &registry,
        QosMetric::Accuracy,
        100.0,
    )
    .unwrap();

    // The exact configuration must agree with its own re-execution:
    // observed QoS equals the baseline exactly.
    let exact_point = TradeoffPoint {
        qos: 100.0,
        perf: 1.0,
        config: Config::from_knobs(vec![]),
    };
    let observed = exec.canary_qos(0, 0, &exact_point).unwrap();
    assert!(
        (observed - 100.0).abs() < 1e-9,
        "exact config must self-agree, observed {observed}"
    );

    // An approximated configuration yields a finite observation bounded by
    // the baseline, and the measurement is a pure function of the request
    // index (same k → same observation).
    let approx_point = TradeoffPoint {
        qos: 98.0,
        perf: 1.3,
        config: Config::from_knobs(vec![KnobId(1)]),
    };
    let a = exec.canary_qos(3, 1, &approx_point).unwrap();
    let b = exec.canary_qos(3, 1, &approx_point).unwrap();
    assert_eq!(a, b, "canary measurement must be deterministic in k");
    assert!(a.is_finite());
    assert!(
        a <= 100.0 + 1e-9,
        "agreement accuracy cannot exceed baseline"
    );
}

#[test]
fn plain_graph_executor_declines_to_canary() {
    let graph = canary_graph();
    let exec = GraphExecutor::new(&graph, varied_input()).unwrap();
    let point = TradeoffPoint {
        qos: 98.0,
        perf: 1.3,
        config: Config::from_knobs(vec![]),
    };
    assert_eq!(
        exec.canary_qos(0, 0, &point),
        None,
        "without a canary context the hook must opt out, not guess"
    );
}
