//! Silent-data-corruption acceptance tests: bit-flip windows over a fleet
//! are detected by the modelled ABFT layer and re-executed on healthy
//! peers without losing accounting, unprotected fleets let every flip
//! escape, sub-floor flips stay silent, repeated detections eject via
//! typed events, a corruption-free run is bit-identical whether or not
//! protection is armed, and the whole campaign is deterministic across
//! rayon thread counts.

use at_core::chaos::{ChaosEvent, ChaosKind, ChaosPlan, FlipTarget};
use at_core::config::Config;
use at_core::fleet::{
    run_fleet, FleetEventKind, FleetParams, FleetReport, RouterPolicy, SdcParams, TenantSpec,
};
use at_core::guard::GuardParams;
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{NoFaultExecutor, RequestExecutor, ServeParams, TrafficPattern};
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};

fn curve(qos_perf: &[(f64, f64)]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        qos_perf
            .iter()
            .map(|&(qos, perf)| TradeoffPoint {
                qos,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn idle_device() -> DisturbedDevice {
    DisturbedDevice::tx2(Scenario::new(
        "idle",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        0,
    ))
}

fn tenant(name: &str, rate_rps: f64, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        curve: curve(&[(96.0, 1.4), (93.0, 1.9), (90.0, 2.4)]),
        baseline_time_s: 0.015,
        baseline_qos: 98.0,
        pattern: TrafficPattern::Steady { rate_rps },
        arrival_seed: seed,
        guard: GuardParams {
            qos_floor: 85.0,
            ..GuardParams::default()
        },
    }
}

/// A flip window on every replica covering most of the horizon, so the
/// detection/re-execution path sees real volume.
fn saturating_flip_plan(replicas: usize, horizon_s: f64, rate: f64, min_bit: u32) -> ChaosPlan {
    ChaosPlan::scripted((0..replicas).map(|r| ChaosEvent {
        at_s: 1.0,
        replica: r,
        kind: ChaosKind::BitFlip {
            len_s: horizon_s,
            rate,
            target: FlipTarget::ALL[r % FlipTarget::ALL.len()],
            min_bit,
        },
    }))
}

fn run_sdc(plan: ChaosPlan, sdc: SdcParams) -> FleetReport {
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|t| {
            tenant(
                &format!("tenant-{t}"),
                10.0 + 2.0 * t as f64,
                0xDC ^ t as u64,
            )
        })
        .collect();
    let execs: Vec<&dyn RequestExecutor> = (0..4)
        .map(|_| &NoFaultExecutor as &dyn RequestExecutor)
        .collect();
    run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 4,
            policy: RouterPolicy::PowerOfTwoChoices,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 60.0,
            steal: true,
            route_seed: 0x5DC5EED,
            chaos: plan,
            sdc,
            ..FleetParams::default()
        },
    )
}

fn assert_fully_accounted(r: &FleetReport) {
    assert_eq!(r.requests_unaccounted, 0, "no request may vanish");
    let shed_sum: usize = r
        .tenants
        .iter()
        .map(|t| t.shed_queue_full + t.shed_deadline + t.shed_breaker + t.shed_replica_lost)
        .sum();
    assert_eq!(r.arrivals, r.admitted + shed_sum);
}

#[test]
fn flip_campaign_detects_reexecutes_and_accounts() {
    let r = run_sdc(
        saturating_flip_plan(4, 60.0, 0.05, 16),
        SdcParams::default(),
    );
    assert!(r.arrivals > 1000, "campaign must see real load");
    assert!(r.sdc_detected > 10, "flips at the floor must be detected");
    assert_eq!(
        r.sdc_escaped, 0,
        "nothing escapes when every flip is at or above the floor"
    );
    assert!(
        r.sdc_reexecuted > 0 && r.sdc_reexecuted <= r.sdc_detected,
        "detected requests re-execute on healthy peers within budget"
    );
    assert_eq!(r.sdc_false_alarm, 0, "false-alarm rate defaults to zero");
    assert_fully_accounted(&r);

    // Typed events reconcile with the counters.
    let detected_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::SdcDetected { .. }))
        .count();
    let reexec_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::SdcReexecuted { .. }))
        .count();
    let eject_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::SdcEjected { .. }))
        .count();
    assert_eq!(detected_events, r.sdc_detected);
    assert_eq!(reexec_events, r.sdc_reexecuted);
    assert_eq!(eject_events, r.sdc_ejections);
    let per_replica: usize = r.replica_reports.iter().map(|x| x.sdc_detections).sum();
    assert_eq!(per_replica, r.sdc_detected);
    let per_tenant: usize = r.tenants.iter().map(|t| t.sdc_detected).sum();
    assert_eq!(per_tenant, r.sdc_detected);

    // A saturating flip window on every replica must strike replicas out.
    assert!(
        r.sdc_ejections > 0,
        "repeated detections must eject via the gray machinery"
    );
    // Detection + re-execution keeps the fleet serving.
    assert!(r.on_time_rate() > 0.5, "fleet must survive the campaign");
}

#[test]
fn unprotected_replicas_let_every_flip_escape() {
    let r = run_sdc(
        saturating_flip_plan(4, 60.0, 0.05, 16),
        SdcParams {
            protected: false,
            ..SdcParams::default()
        },
    );
    assert_eq!(r.sdc_detected, 0, "unprotected kernels never detect");
    assert_eq!(r.sdc_reexecuted, 0);
    assert_eq!(r.sdc_ejections, 0);
    assert!(r.sdc_escaped > 10, "every landed flip is served silently");
    assert!(
        !r.events
            .iter()
            .any(|e| matches!(e.kind, FleetEventKind::SdcDetected { .. })),
        "no detection events without protection"
    );
    assert_fully_accounted(&r);
}

#[test]
fn flips_below_the_floor_escape_detection() {
    // Bits drawn uniformly from 0..32 straddle the default floor of 16:
    // the high half must be caught, the low half must be served silently.
    let r = run_sdc(saturating_flip_plan(4, 60.0, 0.08, 0), SdcParams::default());
    assert!(r.sdc_detected > 0, "above-floor flips are detected");
    assert!(r.sdc_escaped > 0, "below-floor flips escape");
    assert_fully_accounted(&r);
}

#[test]
fn corruption_free_run_is_identical_with_protection_disarmed() {
    // With no flip windows, the SDC machinery must be invisible: the full
    // report is bit-identical whether protection is armed or not.
    let armed = run_sdc(ChaosPlan::none(), SdcParams::default());
    let disarmed = run_sdc(
        ChaosPlan::none(),
        SdcParams {
            protected: false,
            ..SdcParams::default()
        },
    );
    assert_eq!(armed.to_json(), disarmed.to_json());
    assert_eq!(
        armed.sdc_detected + armed.sdc_escaped + armed.sdc_false_alarm,
        0
    );
}

#[test]
fn flip_campaign_is_bit_identical_across_thread_counts() {
    let run = || {
        run_sdc(
            saturating_flip_plan(4, 60.0, 0.05, 16),
            SdcParams::default(),
        )
    };
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(run)
    };
    assert_eq!(
        run_with(1).to_json(),
        run_with(8).to_json(),
        "SDC campaign must not break thread-count determinism"
    );
}
