//! Fleet acceptance tests: a pinned golden event sequence for a seeded
//! 3-replica × 3-tenant spike storm, bit-identical reports across rayon
//! thread counts, and tenant isolation — one tenant's all-lying curve is
//! quarantined to exact fallback without touching any other tenant's
//! accounting. Same pattern as `serve_storm.rs` / `qos_guard.rs`: the
//! simulation is a pure function of its seed, so the golden log is pinned
//! as data, not tolerance-checked.

use at_core::config::Config;
use at_core::fleet::{run_fleet, FleetParams, RouterPolicy, TenantSpec};
use at_core::guard::{GuardParams, MiscalibratedExecutor};
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{
    NoFaultExecutor, RequestExecutor, ScriptedFaultExecutor, ServeParams, TrafficPattern,
};
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};

fn curve(qos_perf: &[(f64, f64)]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        qos_perf
            .iter()
            .map(|&(qos, perf)| TradeoffPoint {
                qos,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn idle_device() -> DisturbedDevice {
    DisturbedDevice::tx2(Scenario::new(
        "idle",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        0,
    ))
}

/// The pinned storm: 3 replicas, 3 tenants, a traffic spike plus a
/// scripted fault burst on tenant 0 while tenants 1 and 2 keep their
/// steady/bursty profiles.
fn storm_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "spike".to_string(),
            curve: curve(&[(96.0, 1.4), (94.0, 1.8), (91.0, 2.3)]),
            baseline_time_s: 0.03,
            baseline_qos: 98.0,
            pattern: TrafficPattern::Spike {
                base_rps: 10.0,
                spike_rps: 120.0,
                at_s: 5.0,
                len_s: 3.0,
            },
            arrival_seed: 0xA11CE,
            guard: GuardParams {
                qos_floor: 85.0,
                ..GuardParams::default()
            },
        },
        TenantSpec {
            name: "steady".to_string(),
            curve: curve(&[(97.0, 1.3), (95.0, 1.7)]),
            baseline_time_s: 0.02,
            baseline_qos: 99.0,
            pattern: TrafficPattern::Steady { rate_rps: 8.0 },
            arrival_seed: 0xB0B,
            guard: GuardParams {
                qos_floor: 90.0,
                ..GuardParams::default()
            },
        },
        TenantSpec {
            name: "bursty".to_string(),
            curve: curve(&[(95.0, 1.5), (92.0, 2.0)]),
            baseline_time_s: 0.09,
            baseline_qos: 97.0,
            pattern: TrafficPattern::Bursty {
                base_rps: 4.0,
                burst_rps: 25.0,
                period_s: 6.0,
                duty: 0.3,
            },
            arrival_seed: 0xCAFE,
            guard: GuardParams {
                qos_floor: 88.0,
                ..GuardParams::default()
            },
        },
    ]
}

fn storm_params() -> FleetParams {
    FleetParams {
        replicas: 3,
        policy: RouterPolicy::RoundRobin,
        serve: ServeParams {
            deadline_s: 0.5,
            queue_cap: 8,
            cooldown_s: 1.0,
            ..ServeParams::default()
        },
        horizon_s: 15.0,
        steal: true,
        route_seed: 0xF1EE7,
        ..FleetParams::default()
    }
}

fn run_storm() -> at_core::fleet::FleetReport {
    let tenants = storm_tenants();
    let faulty = ScriptedFaultExecutor {
        windows: vec![(25, 6)],
    };
    let execs: Vec<&dyn RequestExecutor> = vec![&faulty, &NoFaultExecutor, &NoFaultExecutor];
    run_fleet(&tenants, &execs, &idle_device(), &storm_params())
}

/// The pinned control-plane history of the storm. Regenerate by printing
/// `report.event_log()` after any *intentional* change to fleet
/// scheduling, routing, stealing or breaker semantics — any unintentional
/// diff here is a behaviour regression.
const GOLDEN_EVENTS: &[&str] = &[
    "t=0.8150 n=30 steal r1->r2 moved=1",
    "t=1.5763 n=64 steal r2->r1 moved=1",
    "t=1.6063 n=66 steal r0->r1 moved=1",
    "t=5.2737 n=178 r0 breaker->open failures=3 migrated=5 shed=0",
    "t=5.3977 n=187 r1 breaker->open failures=3 migrated=1 shed=7",
    "t=5.4831 n=190 r2 breaker->open failures=3 migrated=0 shed=8",
    "t=6.2740 n=190 r0 breaker->half-open",
    "t=6.3040 n=191 r0 breaker->open failures=1 migrated=0 shed=2",
    "t=6.4101 n=191 r1 breaker->half-open",
    "t=6.4401 n=192 r1 breaker->open failures=1 migrated=0 shed=2",
    "t=6.4974 n=192 r2 breaker->half-open",
    "t=6.6174 n=194 r2 breaker->open failures=1 migrated=0 shed=1",
    "t=7.3053 n=194 r0 breaker->half-open",
    "t=7.3353 n=195 r0 breaker->open failures=1 migrated=0 shed=2",
    "t=7.4497 n=195 r1 breaker->half-open",
    "t=7.4797 n=196 r1 breaker->open failures=1 migrated=0 shed=2",
    "t=7.6178 n=196 r2 breaker->half-open",
    "t=7.6478 n=197 r2 breaker->open failures=1 migrated=0 shed=2",
    "t=8.3366 n=197 r0 breaker->half-open",
    "t=8.4946 n=199 r1 breaker->half-open",
    "t=8.5246 n=200 r1 breaker->open failures=1 migrated=0 shed=0",
    "t=8.5361 n=201 r0 breaker->closed",
    "t=8.6599 n=203 r2 breaker->half-open",
    "t=8.6899 n=204 r2 breaker->open failures=1 migrated=0 shed=0",
    "t=9.5372 n=218 r1 breaker->half-open",
    "t=9.7467 n=223 r2 breaker->half-open",
    "t=9.7667 n=224 r1 breaker->closed",
    "t=10.0844 n=231 r2 breaker->closed",
    "t=13.1194 n=313 steal r2->r0 moved=1",
];

/// The storm produces the pinned event sequence, event for event, and
/// sane topline accounting: the spike sheds, the fault burst trips every
/// replica, and every breaker recovers by the quiet tail.
#[test]
fn spike_storm_matches_golden_event_sequence() {
    let r = run_storm();
    let log = r.event_log();
    assert_eq!(
        log.len(),
        GOLDEN_EVENTS.len(),
        "event count changed:\n{}",
        log.join("\n")
    );
    for (i, (got, want)) in log.iter().zip(GOLDEN_EVENTS.iter()).enumerate() {
        assert_eq!(got, want, "event {i} diverged");
    }
    assert_eq!(r.events_evicted, 0);
    assert_eq!(r.arrivals, 737);
    assert_eq!(r.admitted, 367);
    assert_eq!(r.served_on_time, 349);
    assert_eq!(r.shed, 370);
    assert_eq!(r.breaker_trips, 11);
    assert_eq!(r.steal_events, 4);
    // Arrivals partition into outcomes, per tenant and in total.
    let shed_sum: usize = r
        .tenants
        .iter()
        .map(|t| t.shed_queue_full + t.shed_deadline + t.shed_breaker)
        .sum();
    assert_eq!(r.arrivals, r.admitted + shed_sum);
    for t in &r.tenants {
        assert_eq!(
            t.arrivals,
            t.admitted + t.shed_queue_full + t.shed_deadline + t.shed_breaker,
            "tenant {} accounting must partition",
            t.name
        );
    }
    // Every replica recovers.
    for (i, rep) in r.replica_reports.iter().enumerate() {
        assert_eq!(
            rep.final_breaker,
            at_core::serve::BreakerState::Closed,
            "replica {i} must recover by the quiet tail"
        );
    }
}

/// The full report — not just the event log — is bit-identical between a
/// 1-thread and an 8-thread rayon environment.
#[test]
fn storm_report_is_bit_identical_across_thread_counts() {
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(run_storm)
    };
    let one = run_with(1).to_json();
    let eight = run_with(8).to_json();
    assert_eq!(one, eight, "fleet report must not depend on thread count");
}

/// Tenant isolation: a tenant whose curve lies on every rung is convicted
/// and clamped to exact fallback on every replica it touches, while the
/// honest tenants keep a clean slate — no floor breaches, no shed
/// inflation, no quarantines in *their* per-tenant counters.
#[test]
fn lying_tenant_is_quarantined_without_touching_neighbours() {
    let liar_curve = curve(&[(96.0, 1.5), (94.0, 2.0)]);
    let tenants = vec![
        TenantSpec {
            name: "honest-a".to_string(),
            curve: curve(&[(97.0, 1.4), (95.0, 1.8)]),
            baseline_time_s: 0.02,
            baseline_qos: 99.0,
            pattern: TrafficPattern::Steady { rate_rps: 6.0 },
            arrival_seed: 1,
            guard: GuardParams {
                qos_floor: 90.0,
                canary_fraction: 0.4,
                ..GuardParams::default()
            },
        },
        TenantSpec {
            name: "liar".to_string(),
            curve: liar_curve,
            baseline_time_s: 0.02,
            baseline_qos: 99.0,
            pattern: TrafficPattern::Steady { rate_rps: 6.0 },
            arrival_seed: 2,
            guard: GuardParams {
                qos_floor: 90.0,
                canary_fraction: 0.4,
                ..GuardParams::default()
            },
        },
        TenantSpec {
            name: "honest-b".to_string(),
            curve: curve(&[(96.0, 1.5)]),
            baseline_time_s: 0.03,
            baseline_qos: 98.0,
            pattern: TrafficPattern::Steady { rate_rps: 4.0 },
            arrival_seed: 3,
            guard: GuardParams {
                qos_floor: 88.0,
                canary_fraction: 0.4,
                ..GuardParams::default()
            },
        },
    ];
    // The liar's true QoS sits far below every promise (and the floor);
    // honest tenants deliver exactly what their curves promise.
    let liar_exec = MiscalibratedExecutor {
        honest_qos: vec![70.0, 65.0],
        jitter: 0.2,
        seed: 0xBAD,
    };
    let honest_a = MiscalibratedExecutor {
        honest_qos: vec![97.0, 95.0],
        jitter: 0.2,
        seed: 0xAAA,
    };
    let honest_b = MiscalibratedExecutor {
        honest_qos: vec![96.0],
        jitter: 0.2,
        seed: 0xBBB,
    };
    let execs: Vec<&dyn RequestExecutor> = vec![&honest_a, &liar_exec, &honest_b];
    // Light, sustained load — pressure must stay high enough that the
    // ladder actually selects approximate rungs, so canaries sample them.
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 2,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.25,
                dead_band: 0.0,
                // Tight drain budget: even backlog 1 demands ~1.6× speedup,
                // so the ladder serves approximate rungs and canaries
                // sample the lie.
                drain_fraction: 0.05,
                ..ServeParams::default()
            },
            horizon_s: 120.0,
            steal: true,
            route_seed: 0xF1EE7,
            ..FleetParams::default()
        },
    );
    let liar = &r.tenants[1];
    assert!(
        liar.quarantined_points > 0,
        "the lying curve must be convicted: {liar:?}"
    );
    assert!(
        liar.exact_fallback_replicas > 0,
        "an all-lying curve must exhaust to exact fallback somewhere: {liar:?}"
    );
    assert!(liar.canary_misses > 0);
    for t in [&r.tenants[0], &r.tenants[2]] {
        assert_eq!(
            t.quarantined_points, 0,
            "honest tenant {} must not inherit quarantines",
            t.name
        );
        assert_eq!(t.exact_fallback_replicas, 0, "tenant {}", t.name);
        assert_eq!(
            t.observed_floor_breaches, 0,
            "honest tenant {} must never breach its floor",
            t.name
        );
        assert_eq!(t.planned_floor_breaches, 0, "tenant {}", t.name);
        assert_eq!(
            t.shed_queue_full + t.shed_deadline + t.shed_breaker,
            0,
            "the liar's conviction must not inflate {}'s shed rate",
            t.name
        );
        assert_eq!(
            t.served_on_time, t.arrivals,
            "honest tenant {} stays fully on-time",
            t.name
        );
    }
    // Isolation is per (replica, tenant): the liar's own traffic keeps
    // flowing, on the exact configuration.
    assert!(liar.admitted > 0);
    assert_eq!(liar.served_on_time + liar.served_late, liar.admitted);
}
