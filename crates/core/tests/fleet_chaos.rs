//! Chaos acceptance tests: a seeded crash + gray + partition campaign over
//! an 8-replica × 6-tenant fleet loses zero requests unaccounted, restarted
//! replicas inherit their quarantine convictions instead of re-learning
//! them, gray replicas are ejected and readmitted with typed events, a
//! fleet-wide slowdown never ejects anyone (detection is relative), and the
//! whole chaotic report is bit-identical across rayon thread counts.

use std::collections::HashSet;

use at_core::chaos::{ChaosEvent, ChaosKind, ChaosPlan};
use at_core::config::Config;
use at_core::fleet::{
    run_fleet, FleetEventKind, FleetParams, FleetReport, RouterPolicy, TenantSpec,
};
use at_core::guard::{GuardParams, MiscalibratedExecutor};
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{NoFaultExecutor, RequestExecutor, ServeParams, TrafficPattern};
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};

fn curve(qos_perf: &[(f64, f64)]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        qos_perf
            .iter()
            .map(|&(qos, perf)| TradeoffPoint {
                qos,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn idle_device() -> DisturbedDevice {
    DisturbedDevice::tx2(Scenario::new(
        "idle",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        0,
    ))
}

fn tenant(name: &str, rate_rps: f64, baseline_time_s: f64, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        curve: curve(&[(96.0, 1.4), (93.0, 1.9), (90.0, 2.4)]),
        baseline_time_s,
        baseline_qos: 98.0,
        pattern: TrafficPattern::Steady { rate_rps },
        arrival_seed: seed,
        guard: GuardParams {
            qos_floor: 85.0,
            ..GuardParams::default()
        },
    }
}

/// Every arrival in a report partitions into an outcome — totals and per
/// tenant. This is the chaos layer's core promise: crash, partition, gray.
fn assert_fully_accounted(r: &FleetReport) {
    assert_eq!(
        r.requests_unaccounted, 0,
        "every request must be accounted: served, faulted, stalled, or shed"
    );
    let shed_sum: usize = r
        .tenants
        .iter()
        .map(|t| t.shed_queue_full + t.shed_deadline + t.shed_breaker + t.shed_replica_lost)
        .sum();
    assert_eq!(r.arrivals, r.admitted + shed_sum);
    for t in &r.tenants {
        assert_eq!(
            t.arrivals,
            t.admitted + t.shed_queue_full + t.shed_deadline + t.shed_breaker + t.shed_replica_lost,
            "tenant {} accounting must partition",
            t.name
        );
    }
}

/// The pinned campaign: 8 replicas × 6 tenants, 3 crashes + 2 gray windows
/// + 2 partitions drawn from one seed.
fn run_campaign() -> FleetReport {
    let tenants: Vec<TenantSpec> = (0..6)
        .map(|t| {
            tenant(
                &format!("tenant-{t}"),
                12.0 + 3.0 * t as f64,
                0.012 + 0.004 * t as f64,
                0x51EED ^ (t as u64),
            )
        })
        .collect();
    let execs: Vec<&dyn RequestExecutor> = (0..6)
        .map(|_| &NoFaultExecutor as &dyn RequestExecutor)
        .collect();
    run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 8,
            policy: RouterPolicy::PowerOfTwoChoices,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 60.0,
            steal: true,
            route_seed: 0xC4A05,
            chaos: ChaosPlan::campaign(0xC4A05, 60.0, 8, 3, 2, 2),
            ..FleetParams::default()
        },
    )
}

#[test]
fn chaos_campaign_accounts_every_request() {
    let r = run_campaign();
    assert!(r.arrivals > 1000, "campaign must see real load");
    assert!(r.crashes >= 1, "the campaign must actually crash replicas");
    assert!(r.partitions >= 1, "the campaign must actually partition");
    assert_fully_accounted(&r);

    let crash_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::ReplicaCrashed { .. }))
        .count();
    let restart_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, FleetEventKind::ReplicaRestarted { .. }))
        .count();
    assert_eq!(crash_events, r.crashes, "every crash is a typed event");
    assert_eq!(
        restart_events, r.crashes,
        "every crash must warm-restart within the horizon"
    );
    let crashes_per_replica: usize = r.replica_reports.iter().map(|x| x.crashes).sum();
    assert_eq!(crashes_per_replica, r.crashes);
    assert!(
        r.mean_recovery_s > 0.0,
        "a recovered crash must report a recovery time"
    );
    // The fleet keeps serving through the chaos window.
    assert!(
        r.on_time_rate() > 0.5,
        "availability must survive the campaign: {}",
        r.on_time_rate()
    );
}

#[test]
fn chaos_report_is_bit_identical_across_thread_counts() {
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(run_campaign)
    };
    let one = run_with(1).to_json();
    let eight = run_with(8).to_json();
    assert_eq!(one, eight, "chaos must not break thread-count determinism");
    let again = run_campaign().to_json();
    assert_eq!(one, again, "same seed, same campaign, same report");
}

/// A replica crashed *after* convicting a lying tenant restarts with the
/// conviction intact: the restart event reports inherited quarantines and
/// no (replica, tenant, rung) is ever convicted twice.
#[test]
fn restart_inherits_quarantine_without_reconviction() {
    let tenants = vec![
        TenantSpec {
            name: "honest".to_string(),
            curve: curve(&[(97.0, 1.4), (95.0, 1.8)]),
            baseline_time_s: 0.02,
            baseline_qos: 99.0,
            pattern: TrafficPattern::Steady { rate_rps: 6.0 },
            arrival_seed: 1,
            guard: GuardParams {
                qos_floor: 90.0,
                canary_fraction: 0.4,
                ..GuardParams::default()
            },
        },
        TenantSpec {
            name: "liar".to_string(),
            curve: curve(&[(96.0, 1.5), (94.0, 2.0)]),
            baseline_time_s: 0.02,
            baseline_qos: 99.0,
            pattern: TrafficPattern::Steady { rate_rps: 6.0 },
            arrival_seed: 2,
            guard: GuardParams {
                qos_floor: 90.0,
                canary_fraction: 0.4,
                ..GuardParams::default()
            },
        },
    ];
    let liar_exec = MiscalibratedExecutor {
        honest_qos: vec![70.0, 65.0],
        jitter: 0.2,
        seed: 0xBAD,
    };
    let honest_exec = MiscalibratedExecutor {
        honest_qos: vec![97.0, 95.0],
        jitter: 0.2,
        seed: 0xAAA,
    };
    let execs: Vec<&dyn RequestExecutor> = vec![&honest_exec, &liar_exec];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 2,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.25,
                dead_band: 0.0,
                drain_fraction: 0.05,
                ..ServeParams::default()
            },
            horizon_s: 120.0,
            steal: true,
            route_seed: 0xF1EE7,
            chaos: ChaosPlan::scripted([ChaosEvent {
                at_s: 60.0,
                replica: 0,
                kind: ChaosKind::Crash {
                    restart_after_s: 0.5,
                },
            }]),
            ..FleetParams::default()
        },
    );
    assert_fully_accounted(&r);
    assert_eq!(r.crashes, 1);
    let inherited: Vec<usize> = r
        .events
        .iter()
        .filter_map(|e| match e.kind {
            FleetEventKind::ReplicaRestarted {
                replica: 0,
                inherited_quarantined,
            } => Some(inherited_quarantined),
            _ => None,
        })
        .collect();
    assert_eq!(inherited.len(), 1, "replica 0 must restart exactly once");
    assert!(
        inherited[0] > 0,
        "the restart must inherit the liar's convictions from the checkpoint"
    );
    // No re-conviction: each (replica, tenant, rung) appears at most once
    // across the whole event log, crash and restart included.
    let mut seen = HashSet::new();
    for e in &r.events {
        if let FleetEventKind::Quarantined {
            replica,
            tenant,
            rung,
            ..
        } = e.kind
        {
            assert!(
                seen.insert((replica, tenant, rung)),
                "({replica}, {tenant}, {rung}) convicted twice — restart re-learned a known liar"
            );
        }
    }
    assert!(!seen.is_empty(), "the liar must be convicted at least once");
}

/// One silently slow replica is ejected from routing candidacy, probed
/// after the window ends, and readmitted — all with typed events, and with
/// every request still accounted.
#[test]
fn gray_replica_is_ejected_probed_and_readmitted() {
    let tenants = vec![tenant("t", 60.0, 0.01, 0x6A4)];
    let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 3,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 30.0,
            steal: true,
            route_seed: 0x6A4,
            chaos: ChaosPlan::scripted([ChaosEvent {
                at_s: 3.0,
                replica: 2,
                kind: ChaosKind::Gray {
                    len_s: 6.0,
                    inflation: 8.0,
                },
            }]),
            ..FleetParams::default()
        },
    );
    assert_fully_accounted(&r);
    assert!(r.gray_ejections >= 1, "the slow replica must be ejected");
    assert!(r.replica_reports[2].gray_ejections >= 1);
    assert_eq!(r.replica_reports[0].gray_ejections, 0);
    assert_eq!(r.replica_reports[1].gray_ejections, 0);
    let first =
        |pred: &dyn Fn(&FleetEventKind) -> bool| r.events.iter().position(|e| pred(&e.kind));
    let ejected = first(&|k| matches!(k, FleetEventKind::GrayEjected { replica: 2, .. }));
    let probing = first(&|k| matches!(k, FleetEventKind::GrayProbing { replica: 2 }));
    let readmitted = first(&|k| matches!(k, FleetEventKind::GrayReadmitted { replica: 2 }));
    let (e, p, a) = (
        ejected.expect("GrayEjected event"),
        probing.expect("GrayProbing event"),
        readmitted.expect("GrayReadmitted event"),
    );
    assert!(e < p && p < a, "eject → probe → readmit, in that order");
}

/// Relative detection: the same inflation applied to *every* replica moves
/// every EWMA together, so the median moves too and nobody is ejected. A
/// fleet-wide brownout is the ladder's problem, not the router's.
#[test]
fn fleet_wide_slowdown_never_ejects() {
    let tenants = vec![tenant("t", 60.0, 0.01, 0x6A4)];
    let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
    let everywhere = (0..3).map(|rep| ChaosEvent {
        at_s: 3.0,
        replica: rep,
        kind: ChaosKind::Gray {
            len_s: 6.0,
            inflation: 8.0,
        },
    });
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 3,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 30.0,
            steal: true,
            route_seed: 0x6A4,
            chaos: ChaosPlan::scripted(everywhere),
            ..FleetParams::default()
        },
    );
    assert_fully_accounted(&r);
    assert_eq!(
        r.gray_ejections, 0,
        "relative detection must not eject under a fleet-wide slowdown"
    );
}

/// A partition drops a bounded number of queued requests (each shed with a
/// typed reason), blocks routing to the replica until it heals, and heals
/// with a typed event.
#[test]
fn partition_sheds_bounded_messages_and_heals() {
    let tenants = vec![tenant("t", 80.0, 0.02, 0x9A7)];
    let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 2,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.6,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 20.0,
            steal: true,
            route_seed: 0x9A7,
            chaos: ChaosPlan::scripted([ChaosEvent {
                at_s: 5.0,
                replica: 1,
                kind: ChaosKind::Partition {
                    len_s: 2.0,
                    lost_messages: 3,
                },
            }]),
            ..FleetParams::default()
        },
    );
    assert_fully_accounted(&r);
    assert_eq!(r.partitions, 1);
    assert_eq!(r.replica_reports[1].partitions, 1);
    let cut = r
        .events
        .iter()
        .position(|e| matches!(e.kind, FleetEventKind::Partitioned { replica: 1, .. }));
    let healed = r
        .events
        .iter()
        .position(|e| matches!(e.kind, FleetEventKind::PartitionHealed { replica: 1 }));
    let (c, h) = (
        cut.expect("Partitioned event"),
        healed.expect("PartitionHealed event"),
    );
    assert!(c < h, "the partition must heal after it opens");
    let lost = match r.events[c].kind {
        FleetEventKind::Partitioned { lost, .. } => lost,
        _ => unreachable!(),
    };
    assert!(lost <= 3, "message loss is bounded by the plan");
    let shed_lost: usize = r.tenants.iter().map(|t| t.shed_replica_lost).sum();
    assert_eq!(
        shed_lost, lost,
        "with no crash in the plan, ReplicaLost sheds are exactly the wire losses"
    );
}

/// An empty plan really is a no-op: byte-for-byte the same report as a run
/// with the chaos field left at its default.
#[test]
fn empty_chaos_plan_is_bit_identical_to_no_chaos() {
    let tenants = vec![tenant("t", 25.0, 0.02, 0xE11)];
    let run_with = |chaos: ChaosPlan| {
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
        run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 3,
                horizon_s: 20.0,
                chaos,
                ..FleetParams::default()
            },
        )
    };
    assert_eq!(
        run_with(ChaosPlan::none()).to_json(),
        run_with(ChaosPlan::default()).to_json()
    );
}

/// A crash that lands while the *same* replica is both gray-inflated and
/// partitioned: the three fault machines must compose without losing a
/// request. The replica crashes mid-overlap, warm-restarts, and the fleet
/// keeps serving — accounting stays exact through the pile-up.
#[test]
fn crash_during_active_gray_and_partition_composes() {
    let tenants = vec![tenant("t", 60.0, 0.015, 0xC0111)];
    let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
    let r = run_fleet(
        &tenants,
        &execs,
        &idle_device(),
        &FleetParams {
            replicas: 3,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams {
                deadline_s: 0.5,
                queue_cap: 16,
                ..ServeParams::default()
            },
            horizon_s: 40.0,
            steal: true,
            route_seed: 0xC0111,
            chaos: ChaosPlan::scripted([
                ChaosEvent {
                    at_s: 5.0,
                    replica: 2,
                    kind: ChaosKind::Gray {
                        len_s: 20.0,
                        inflation: 8.0,
                    },
                },
                ChaosEvent {
                    at_s: 8.0,
                    replica: 2,
                    kind: ChaosKind::Partition {
                        len_s: 10.0,
                        lost_messages: 4,
                    },
                },
                ChaosEvent {
                    at_s: 10.0,
                    replica: 2,
                    kind: ChaosKind::Crash {
                        restart_after_s: 1.0,
                    },
                },
            ]),
            ..FleetParams::default()
        },
    );
    assert_fully_accounted(&r);
    assert_eq!(r.crashes, 1);
    assert_eq!(r.partitions, 1);
    assert_eq!(r.replica_reports[2].crashes, 1);
    let pos = |pred: &dyn Fn(&FleetEventKind) -> bool| r.events.iter().position(|e| pred(&e.kind));
    let partitioned = pos(&|k| matches!(k, FleetEventKind::Partitioned { replica: 2, .. }))
        .expect("Partitioned event");
    let crashed = pos(&|k| matches!(k, FleetEventKind::ReplicaCrashed { replica: 2, .. }))
        .expect("ReplicaCrashed event");
    let restarted = pos(&|k| matches!(k, FleetEventKind::ReplicaRestarted { replica: 2, .. }))
        .expect("ReplicaRestarted event");
    assert!(
        partitioned < crashed && crashed < restarted,
        "partition opens, then the crash lands inside it, then the warm restart"
    );
    assert!(
        r.on_time_rate() > 0.5,
        "two healthy replicas must carry the fleet through the pile-up (got {})",
        r.on_time_rate()
    );
}
