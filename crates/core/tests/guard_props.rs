//! Property tests on the QoS guard's numeric core: the canary comparator
//! and the residual window must stay NaN/inf-safe for arbitrary finite and
//! poisoned observation streams — every counter consistent, every stored
//! statistic finite, every repair finite, never a panic. Plus a
//! corrupt-curve corpus case: a curve salvaged by
//! [`ShippedArtifact::load_repaired`] whose surviving promises sit below
//! the guard's floor is quarantined at the door, not served into a breach.

use at_core::config::Config;
use at_core::guard::{
    fails_floor, CanarySampler, GuardEventKind, GuardParams, GuardVerdict, MiscalibratedExecutor,
    QosGuard, ResidualWindow,
};
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::qos::QosMetric;
use at_core::serve::{generate_arrivals, serve_guarded, ServeParams, TrafficPattern};
use at_core::ship::ShippedArtifact;
use at_hw::{DisturbedDevice, Scenario};
use at_ir::{Graph, GraphBuilder};
use at_tensor::Shape;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An observation that may be finite, huge, or poisoned (NaN/±inf/±MAX
/// roughly one case in three).
fn qos_s() -> impl Strategy<Value = f64> {
    (0u8..15, -1.0e6..1.0e6f64).prop_map(|(tag, v)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => f64::MAX,
        4 => -f64::MAX,
        _ => v,
    })
}

fn curve(n: usize) -> TradeoffCurve {
    TradeoffCurve::from_points(
        (0..n)
            .map(|i| TradeoffPoint {
                qos: 98.0 - 2.0 * i as f64,
                perf: 1.2 + 0.3 * i as f64,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

proptest! {
    /// The residual window never stores a non-finite value, its counters
    /// always partition the stream, and its statistics are finite whenever
    /// they exist.
    #[test]
    fn residual_window_is_nan_safe(
        stream in proptest::collection::vec(qos_s(), 0..64),
        cap in 0usize..8,
    ) {
        let mut w = ResidualWindow::new(cap);
        for &v in &stream {
            w.push(v);
        }
        prop_assert_eq!(w.total(), stream.len());
        prop_assert_eq!(
            w.values().len() + w.evicted() + w.poisoned(),
            w.total(),
            "retained + evicted + poisoned must partition the stream"
        );
        prop_assert_eq!(
            w.poisoned(),
            stream.iter().filter(|v| !v.is_finite()).count()
        );
        prop_assert!(w.values().len() <= cap);
        prop_assert!(w.values().iter().all(|v| v.is_finite()));
        for stat in [w.mean(), w.max(), w.min()] {
            if let Some(s) = stat {
                prop_assert!(s.is_finite(), "stat {s} must be finite");
            } else {
                prop_assert!(w.values().is_empty());
            }
        }
    }

    /// The sampler is a pure function of `(seed, k)` for any seed and any
    /// fraction, including poisoned ones.
    #[test]
    fn canary_sampler_is_pure_for_arbitrary_fractions(
        seed in 0u64..u64::MAX,
        fraction in qos_s(),
        ks in proptest::collection::vec(0usize..1_000_000, 1..32),
    ) {
        let s = CanarySampler::new(seed, fraction);
        prop_assert!((0.0..=1.0).contains(&s.fraction()));
        for &k in &ks {
            prop_assert_eq!(s.is_canary(k), s.is_canary(k));
        }
    }

    /// The full comparator path: arbitrary interleavings of honest, lying
    /// and poisoned observations across rungs (including out-of-range
    /// rungs) never panic, keep every counter consistent, and only ever
    /// repair to finite promises.
    #[test]
    fn canary_comparator_is_nan_safe_end_to_end(
        observations in proptest::collection::vec((0usize..5, qos_s(), qos_s()), 0..128),
        tolerance in qos_s(),
        floor in qos_s(),
        strikes in 1usize..5,
    ) {
        let c = curve(3);
        let mut g = QosGuard::new(
            &GuardParams {
                tolerance,
                qos_floor: floor,
                strikes_to_quarantine: strikes,
                residual_window: 4,
                ..GuardParams::default()
            },
            &c,
        );
        let mut valid = 0usize;
        let mut poisoned = 0usize;
        let mut breaches = 0usize;
        for (i, &(rung, promised, observed)) in observations.iter().enumerate() {
            let verdict = g.observe(i as f64, i, rung, promised, observed);
            if rung >= 3 {
                prop_assert_eq!(verdict, GuardVerdict::Ok, "unknown rung must be inert");
                continue;
            }
            valid += 1;
            if !observed.is_finite() {
                poisoned += 1;
            }
            if fails_floor(observed, floor) {
                breaches += 1;
            }
            if let GuardVerdict::Quarantine { rung: r, repaired_qos } = verdict {
                prop_assert_eq!(r, rung);
                prop_assert!(repaired_qos.is_finite(), "repair must be finite");
            }
        }
        let r = g.into_report(c);
        prop_assert_eq!(r.canaries, valid);
        prop_assert_eq!(r.poisoned, poisoned);
        prop_assert_eq!(r.floor_breaches, breaches);
        // A rung is convicted at most once, and only real rungs convict.
        let mut seen = r.quarantined.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), r.quarantined.len(), "double conviction");
        prop_assert!(r.quarantined.iter().all(|&q| q < 3));
        prop_assert_eq!(r.repairs, r.quarantined.len());
        // Every stored residual and every repaired promise is finite.
        for acct in &r.accounts {
            prop_assert!(acct.window.values().iter().all(|v| v.is_finite()));
        }
        for e in &r.events {
            if let GuardEventKind::Repaired { to_qos, .. } = e.kind {
                prop_assert!(to_qos.is_finite());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Corrupt-curve corpus: load_repaired output meets the guard
// ---------------------------------------------------------------------------

fn corpus_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(21);
    let mut b = GraphBuilder::new("guard-corpus", Shape::nchw(1, 3, 8, 8), &mut rng);
    b.conv(4, 3, (1, 1), (1, 1))
        .relu()
        .flatten()
        .dense(5)
        .softmax();
    b.finish().unwrap()
}

/// An artifact whose fp32 curve carries unique sentinels for string
/// surgery: qos [98.25, 96.25, 94.25] at perf [1.25, 1.75, 2.5].
fn sentinel_artifact(g: &Graph) -> String {
    let curve = TradeoffCurve::from_points(vec![
        TradeoffPoint {
            qos: 98.25,
            perf: 1.25,
            config: Config::from_knobs(vec![]),
        },
        TradeoffPoint {
            qos: 96.25,
            perf: 1.75,
            config: Config::from_knobs(vec![]),
        },
        TradeoffPoint {
            qos: 94.25,
            perf: 2.5,
            config: Config::from_knobs(vec![]),
        },
    ]);
    ShippedArtifact::new(g, QosMetric::Accuracy, 88.5, None, Some(curve)).to_json()
}

#[test]
fn salvaged_curve_below_the_floor_is_quarantined_at_the_door_not_breached() {
    let g = corpus_graph();
    // Poison the *honest, conservative* point's QoS (1e999 parses to +inf):
    // repair drops it, leaving only the two aggressive promises.
    let poisoned = sentinel_artifact(&g).replace("98.25", "1e999");
    let (salvaged, report) = ShippedArtifact::load_repaired(&poisoned, &g, false).unwrap();
    assert_eq!(report.dropped_non_finite, 1);
    assert_eq!(salvaged.len(), 2);

    // Serve the salvaged curve with a floor *above* every surviving
    // promise: the guard must pre-mask the whole curve and clamp to the
    // exact configuration before a single approximated request is served —
    // quarantine at the door, not a QoS-floor breach in flight.
    let trace = generate_arrivals(&TrafficPattern::Steady { rate_rps: 30.0 }, 20.0, 0xD1);
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 10, 5, 0.9, 3));
    let exec = MiscalibratedExecutor {
        honest_qos: vec![96.25, 94.25],
        jitter: 0.1,
        seed: 0xEC0,
    };
    let r = serve_guarded(
        &salvaged,
        0.05,
        &device,
        &trace,
        &exec,
        &ServeParams {
            deadline_s: 0.5,
            ..ServeParams::default()
        },
        &GuardParams {
            canary_fraction: 0.5,
            qos_floor: 97.0,
            ..GuardParams::default()
        },
    );
    assert_eq!(r.guard.premasked_below_floor, vec![0, 1]);
    assert!(r.guard.exact_fallback, "exhausted-at-the-door must clamp");
    assert!(matches!(
        r.guard.events.first().map(|e| &e.kind),
        Some(GuardEventKind::QosFloorUnrecoverable { .. })
    ));
    assert_eq!(r.guard.floor_breaches, 0, "no canaried request may breach");
    assert_eq!(r.serve.final_rung, None, "must serve exact throughout");
    assert!(r.serve.served_on_time > 0, "exact fallback keeps serving");
}

#[test]
fn salvaged_curve_with_one_usable_point_serves_only_that_point() {
    let g = corpus_graph();
    let poisoned = sentinel_artifact(&g).replace("98.25", "1e999");
    let (salvaged, _) = ShippedArtifact::load_repaired(&poisoned, &g, false).unwrap();

    // Floor between the two surviving promises: the aggressive point is
    // pre-masked, the honest point serves and is never convicted.
    let trace = generate_arrivals(&TrafficPattern::Steady { rate_rps: 40.0 }, 30.0, 0xD2);
    let device = DisturbedDevice::tx2(Scenario::brownout_storm(usize::MAX / 2, 10, 5, 0.9, 3));
    let exec = MiscalibratedExecutor {
        honest_qos: vec![96.25, 94.25],
        jitter: 0.1,
        seed: 0xEC1,
    };
    let r = serve_guarded(
        &salvaged,
        0.05,
        &device,
        &trace,
        &exec,
        &ServeParams {
            deadline_s: 0.5,
            ..ServeParams::default()
        },
        &GuardParams {
            canary_fraction: 0.5,
            qos_floor: 95.0,
            tolerance: 1.0,
            ..GuardParams::default()
        },
    );
    assert_eq!(r.guard.premasked_below_floor, vec![1]);
    assert!(!r.guard.exact_fallback);
    assert!(r.guard.quarantined.is_empty(), "honest survivor must serve");
    assert_eq!(r.guard.floor_breaches, 0);
    assert!(r.guard.canaries > 0, "the surviving rung must be canaried");
    assert_eq!(r.guard.misses, 0);
}
