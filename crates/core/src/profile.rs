//! Profile collection (Algorithm 1, lines 12–15) and configuration
//! execution helpers.
//!
//! "QoS profiles are gathered for each unique pair of tensor operation and
//! approximation knob. … The profiles are collected by running the entire
//! program (with calibration inputs) but we approximate a single operator
//! at a time." The profile stores both the end-to-end QoS delta `ΔQ`
//! (consumed by Π2) and the raw final-output tensor delta `ΔT` (consumed by
//! Π1).
//!
//! Because only one operator changes per profiled pair, we re-execute only
//! that operator's *suffix* of the dataflow graph (`at_ir::execute_suffix`),
//! reusing the cached baseline prefix — a large constant-factor saving with
//! bit-identical results.

use crate::config::{single_op_configs, Config};
use crate::knobs::{KnobId, KnobRegistry, KnobSet};
use crate::qos::{measure, QosMetric, QosReference};
use at_ir::{execute, execute_all, execute_suffix, ExecOptions, Graph, NodeId};
use at_tensor::{Tensor, TensorError};
use rayon::ParallelSlice;

/// Executes a configuration over all calibration batches, returning the
/// program outputs per batch.
pub fn run_config(
    graph: &Graph,
    registry: &KnobRegistry,
    config: &Config,
    inputs: &[Tensor],
    promise_seed: u64,
) -> Result<Vec<Tensor>, TensorError> {
    let choices = config.decode(registry, graph);
    let opts = ExecOptions {
        config: choices,
        promise_seed,
    };
    inputs
        .iter()
        .map(|b| execute(graph, b, &opts).map_err(TensorError::from))
        .collect()
}

/// Executes a configuration and measures its QoS.
pub fn measure_config(
    graph: &Graph,
    registry: &KnobRegistry,
    config: &Config,
    inputs: &[Tensor],
    metric: QosMetric,
    reference: &QosReference,
    promise_seed: u64,
) -> Result<f64, TensorError> {
    let outs = run_config(graph, registry, config, inputs, promise_seed)?;
    Ok(measure(metric, &outs, reference))
}

/// The per-(op, knob) QoS profiles of Algorithm 1 (the `Q` and `T` tables).
#[derive(Clone, Debug)]
pub struct QosProfiles {
    /// The profiled (node index, knob) pairs, in collection order.
    pub pairs: Vec<(usize, KnobId)>,
    /// Baseline QoS (`QoS_base`).
    pub qos_base: f64,
    /// Baseline raw program outputs per calibration batch (`T_base`).
    pub t_base: Vec<Tensor>,
    /// `ΔQ(op, knob)`: end-to-end QoS change per pair.
    pub dq: Vec<f64>,
    /// `ΔT(op, knob)`: raw-output delta per pair, per batch. Empty when
    /// tensor profiles were not collected (Π2-only mode).
    pub dt: Vec<Vec<Tensor>>,
    /// Wall-clock seconds spent collecting.
    pub collection_time_s: f64,
}

impl QosProfiles {
    /// Index of a (node, knob) pair in the tables.
    pub fn pair_index(&self, node: usize, knob: KnobId) -> Option<usize> {
        self.pairs.iter().position(|&(n, k)| n == node && k == knob)
    }

    /// ΔQ for a pair; 0 for the baseline knob or unknown pairs.
    pub fn delta_q(&self, node: usize, knob: KnobId) -> f64 {
        if knob == KnobId::BASELINE {
            return 0.0;
        }
        self.pair_index(node, knob).map_or(0.0, |i| self.dq[i])
    }

    /// ΔT batches for a pair (None for baseline/unknown).
    pub fn delta_t(&self, node: usize, knob: KnobId) -> Option<&[Tensor]> {
        if knob == KnobId::BASELINE {
            return None;
        }
        self.pair_index(node, knob)
            .and_then(|i| self.dt.get(i))
            .map(|v| v.as_slice())
    }

    /// Whether tensor (Π1) profiles are available.
    pub fn has_tensor_profiles(&self) -> bool {
        !self.dt.is_empty() && self.dt.iter().all(|b| !b.is_empty())
    }

    /// Merges profiles collected on different devices over *different
    /// calibration shards* (install-time distributed tuning, §4): ΔQ is
    /// averaged, ΔT batches are concatenated. All shards must have profiled
    /// the same pairs in the same order.
    pub fn merge(shards: Vec<QosProfiles>) -> Option<QosProfiles> {
        let mut it = shards.into_iter();
        let mut acc = it.next()?;
        let mut n = 1usize;
        for s in it {
            if s.pairs != acc.pairs {
                return None;
            }
            for (a, b) in acc.dq.iter_mut().zip(&s.dq) {
                *a += b;
            }
            for (a, b) in acc.dt.iter_mut().zip(s.dt) {
                a.extend(b);
            }
            acc.t_base.extend(s.t_base);
            acc.collection_time_s = acc.collection_time_s.max(s.collection_time_s);
            // Baseline QoS: running mean.
            acc.qos_base = (acc.qos_base * n as f64 + s.qos_base) / (n as f64 + 1.0);
            n += 1;
        }
        for a in &mut acc.dq {
            *a /= n as f64;
        }
        Some(acc)
    }
}

/// Collects the QoS profiles for every (op, knob) pair in the knob set.
///
/// `collect_tensors` controls whether `ΔT` (needed by Π1) is stored; Π2
/// only needs `ΔQ`.
#[allow(clippy::too_many_arguments)]
pub fn collect_profiles(
    graph: &Graph,
    registry: &KnobRegistry,
    set: KnobSet,
    inputs: &[Tensor],
    metric: QosMetric,
    reference: &QosReference,
    collect_tensors: bool,
    promise_seed: u64,
) -> Result<QosProfiles, TensorError> {
    let started = std::time::Instant::now();
    let pairs = single_op_configs(graph, registry, set);

    // Baseline pass, caching every node output per batch for suffix reuse.
    let baseline_opts = ExecOptions::baseline();
    let mut caches = Vec::with_capacity(inputs.len());
    let mut t_base = Vec::with_capacity(inputs.len());
    for b in inputs {
        let all = execute_all(graph, b, &baseline_opts)?;
        let last = all.last().ok_or(TensorError::EmptyGraph)?;
        t_base.push(last.clone());
        caches.push(all);
    }
    let qos_base = measure(metric, &t_base, reference);

    // Per-pair suffix executions, in parallel: each pair re-executes only
    // its own graph suffix against the shared read-only baseline caches, so
    // pairs are independent and results are collected in pair order
    // (bit-identical to the sequential loop).
    let per_pair: Result<Vec<(f64, Vec<Tensor>)>, TensorError> = pairs
        .par_iter()
        .map(|&(node, knob)| {
            let class = graph.node(NodeId(node as u32)).op.class();
            let choice = registry.decode(class, knob);
            let mut config = vec![at_ir::ApproxChoice::BASELINE; graph.len()];
            config[node] = choice;
            let opts = ExecOptions {
                config,
                promise_seed,
            };
            let mut outs = Vec::with_capacity(inputs.len());
            for (b, cache) in inputs.iter().zip(&caches) {
                outs.push(execute_suffix(graph, b, cache, NodeId(node as u32), &opts)?);
            }
            let q = measure(metric, &outs, reference);
            let deltas = if collect_tensors {
                outs.iter()
                    .zip(&t_base)
                    .map(|(o, b)| o.sub(b))
                    .collect::<Result<Vec<Tensor>, TensorError>>()?
            } else {
                Vec::new()
            };
            Ok((q - qos_base, deltas))
        })
        .collect();
    let mut dq = Vec::with_capacity(pairs.len());
    let mut dt: Vec<Vec<Tensor>> =
        Vec::with_capacity(if collect_tensors { pairs.len() } else { 0 });
    for (d, deltas) in per_pair? {
        dq.push(d);
        if collect_tensors {
            dt.push(deltas);
        }
    }

    Ok(QosProfiles {
        pairs,
        qos_base,
        t_base,
        dq,
        dt,
        collection_time_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_ir::GraphBuilder;
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Vec<Tensor>, QosReference) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new("t", Shape::nchw(8, 2, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .max_pool(2, 2)
            .flatten()
            .dense(5)
            .softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(2);
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::uniform(Shape::nchw(8, 2, 8, 8), -1.0, 1.0, &mut rng2))
            .collect();
        // Labels = baseline predictions (accuracy 100% at baseline).
        let mut labels = Vec::new();
        for b in &inputs {
            let out = execute(&g, b, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            labels.push(
                (0..rows)
                    .map(|r| {
                        let row = &out.data()[r * c..(r + 1) * c];
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0
                    })
                    .collect(),
            );
        }
        (g, inputs, QosReference::Labels(labels))
    }

    #[test]
    fn baseline_profile_properties() {
        let (g, inputs, reference) = setup();
        let r = KnobRegistry::new();
        let p = collect_profiles(
            &g,
            &r,
            KnobSet::HardwareIndependent,
            &inputs,
            QosMetric::Accuracy,
            &reference,
            true,
            0,
        )
        .unwrap();
        // Labels were set to baseline predictions.
        assert_eq!(p.qos_base, 100.0);
        assert_eq!(p.dq.len(), p.pairs.len());
        assert!(p.has_tensor_profiles());
        // ΔQ is never positive here (labels == baseline predictions, so no
        // knob can beat the baseline).
        assert!(p.dq.iter().all(|&d| d <= 1e-9));
        // Every ΔT has the output shape.
        for batches in &p.dt {
            for t in batches {
                assert_eq!(t.shape(), Shape::mat(8, 5));
            }
        }
    }

    #[test]
    fn suffix_profiles_match_full_execution() {
        let (g, inputs, reference) = setup();
        let r = KnobRegistry::new();
        let p = collect_profiles(
            &g,
            &r,
            KnobSet::HardwareIndependent,
            &inputs,
            QosMetric::Accuracy,
            &reference,
            false,
            0,
        )
        .unwrap();
        // Cross-check one pair against a full (non-suffix) execution.
        let (node, knob) = p.pairs[10];
        let mut config = Config::baseline(&g);
        config.set_knob(node, knob);
        let q =
            measure_config(&g, &r, &config, &inputs, QosMetric::Accuracy, &reference, 0).unwrap();
        assert!(
            (p.delta_q(node, knob) - (q - p.qos_base)).abs() < 1e-9,
            "suffix ΔQ mismatch"
        );
    }

    #[test]
    fn merge_averages_dq_and_concats_dt() {
        let (g, inputs, reference) = setup();
        let r = KnobRegistry::new();
        let mk = |slice: &[Tensor]| {
            collect_profiles(
                &g,
                &r,
                KnobSet::HardwareIndependent,
                slice,
                QosMetric::Accuracy,
                &reference,
                true,
                0,
            )
            .unwrap()
        };
        // NOTE: both shards use the same reference for simplicity; merge
        // semantics are what is under test.
        let a = mk(&inputs[..2]);
        let b = mk(&inputs[..2]);
        let merged = QosProfiles::merge(vec![a.clone(), b]).unwrap();
        assert_eq!(merged.pairs, a.pairs);
        // Same shards → ΔQ unchanged by averaging; ΔT batches doubled.
        assert!((merged.dq[0] - a.dq[0]).abs() < 1e-9);
        assert_eq!(merged.dt[0].len(), 2 * a.dt[0].len());
    }

    #[test]
    fn merge_rejects_mismatched_pairs() {
        let (g, inputs, reference) = setup();
        let r = KnobRegistry::new();
        let a = collect_profiles(
            &g,
            &r,
            KnobSet::HardwareIndependent,
            &inputs[..1],
            QosMetric::Accuracy,
            &reference,
            false,
            0,
        )
        .unwrap();
        let mut b = a.clone();
        b.pairs.pop();
        b.dq.pop();
        assert!(QosProfiles::merge(vec![a, b]).is_none());
    }
}
