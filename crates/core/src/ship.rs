//! The shipped tuning artifact (§2.2: "the final tradeoff curve is included
//! with the program binary").
//!
//! A [`ShippedArtifact`] bundles the tradeoff curve(s) with the metadata an
//! installer needs to use them safely: a program fingerprint (so a curve is
//! never applied to a different graph), the knob-registry version, the QoS
//! metric and bound it was tuned for, and which knob set was used. Since
//! "FP16 availability is not guaranteed on each hardware platform … we
//! allow users to tune the program with and without FP16 support, creating
//! two separate curves" (§3.5), the artifact can hold both variants.

use crate::pareto::{TradeoffCurve, TradeoffPoint};
use crate::qos::QosMetric;
use at_ir::Graph;
use serde::{Deserialize, Serialize};

/// Version tag of the artifact schema (bump on incompatible change).
pub const ARTIFACT_VERSION: u32 = 1;

/// A cheap structural fingerprint of a graph: op names, arity and
/// parameter sizes hashed with FNV-1a. Two structurally different programs
/// collide with negligible probability; weight *values* are not included
/// (install-time refinement re-measures QoS anyway).
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(graph.name().as_bytes());
    for n in graph.nodes() {
        eat(n.op.name().as_bytes());
        eat(&(n.inputs.len() as u32).to_le_bytes());
        for i in &n.inputs {
            eat(&i.0.to_le_bytes());
        }
    }
    eat(&(graph.param_count() as u64).to_le_bytes());
    h
}

/// A content fingerprint of a graph's *weights*: FNV-1a over every
/// parameter tensor's shape and f32 bit patterns, in parameter order.
/// Unlike [`graph_fingerprint`] this sees value changes — a single flipped
/// mantissa bit anywhere in the model changes the result — so an executor
/// constructed against a pinned fingerprint can refuse silently corrupted
/// weights with a typed error instead of serving garbage.
pub fn weights_fingerprint(graph: &Graph) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for p in graph.params() {
        eat(&(p.shape().dims().len() as u32).to_le_bytes());
        for &d in p.shape().dims() {
            eat(&(d as u64).to_le_bytes());
        }
        for &v in p.data() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// The artifact shipped alongside the program binary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShippedArtifact {
    /// Schema version.
    pub version: u32,
    /// Program name.
    pub program: String,
    /// Structural fingerprint of the graph the curves were tuned for.
    pub fingerprint: u64,
    /// QoS metric the curves are expressed in.
    pub metric: QosMetric,
    /// The QoS bound used during tuning.
    pub qos_min: f64,
    /// Curve tuned *with* FP16 knobs available.
    pub curve_fp16: Option<TradeoffCurve>,
    /// Curve tuned with FP32-only knobs (for targets without FP16 units).
    pub curve_fp32_only: Option<TradeoffCurve>,
}

/// Errors raised when loading an artifact on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipError {
    /// The artifact JSON could not be parsed.
    Malformed(String),
    /// Schema version newer than this library understands.
    VersionMismatch {
        /// Version found in the artifact.
        found: u32,
    },
    /// The artifact was tuned for a different program.
    WrongProgram {
        /// Fingerprint in the artifact.
        expected: u64,
        /// Fingerprint of the local graph.
        got: u64,
    },
    /// No curve variant suits the platform.
    NoUsableCurve,
    /// A curve point carries non-finite QoS or performance — the artifact
    /// was corrupted or written by a buggy tuner.
    NonFinitePoint {
        /// Which curve variant (`"fp16"` or `"fp32"`).
        curve: &'static str,
        /// Index of the offending point.
        index: usize,
    },
    /// Curve points are not strictly increasing in performance — the
    /// runtime's index arithmetic over the curve would silently pick wrong
    /// configurations, so the artifact is refused.
    UnsortedCurve {
        /// Which curve variant (`"fp16"` or `"fp32"`).
        curve: &'static str,
        /// Index of the first out-of-order point.
        index: usize,
    },
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipError::Malformed(e) => write!(f, "malformed artifact: {e}"),
            ShipError::VersionMismatch { found } => {
                write!(
                    f,
                    "artifact schema v{found} newer than supported v{ARTIFACT_VERSION}"
                )
            }
            ShipError::WrongProgram { expected, got } => write!(
                f,
                "artifact tuned for program {expected:#x}, local graph is {got:#x}"
            ),
            ShipError::NoUsableCurve => write!(f, "artifact holds no curve for this platform"),
            ShipError::NonFinitePoint { curve, index } => {
                write!(f, "{curve} curve point {index} has non-finite qos/perf")
            }
            ShipError::UnsortedCurve { curve, index } => write!(
                f,
                "{curve} curve point {index} breaks strict speedup ordering"
            ),
        }
    }
}

impl std::error::Error for ShipError {}

impl ShippedArtifact {
    /// Creates an artifact for a tuned program.
    pub fn new(
        graph: &Graph,
        metric: QosMetric,
        qos_min: f64,
        curve_fp16: Option<TradeoffCurve>,
        curve_fp32_only: Option<TradeoffCurve>,
    ) -> ShippedArtifact {
        ShippedArtifact {
            version: ARTIFACT_VERSION,
            program: graph.name().to_string(),
            fingerprint: graph_fingerprint(graph),
            metric,
            qos_min,
            curve_fp16,
            curve_fp32_only,
        }
    }

    /// Serialises to the JSON that ships with the binary. Serialisation
    /// failure degrades to a JSON error object rather than a panic.
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(s) => s,
            Err(e) => format!("{{\"error\":\"artifact serialisation failed: {e}\"}}"),
        }
    }

    /// Re-ships this artifact with a runtime-repaired curve written back
    /// into the variant a platform with `platform_has_fp16` would select —
    /// the QoS guard's online-repair round-trip ([`crate::guard`]): tune →
    /// ship → serve (the guard repairs lying promises in place) → re-ship,
    /// so the next install on this platform class starts from honest
    /// numbers instead of re-learning the same miscalibration.
    pub fn with_repaired_curve(
        &self,
        repaired: TradeoffCurve,
        platform_has_fp16: bool,
    ) -> ShippedArtifact {
        let mut next = self.clone();
        if platform_has_fp16 && next.curve_fp16.is_some() {
            next.curve_fp16 = Some(repaired);
        } else {
            next.curve_fp32_only = Some(repaired);
        }
        next
    }

    /// Loads and checks an artifact on a device: schema version, program
    /// fingerprint, curve finiteness and strict speedup ordering, then
    /// picks the curve matching the platform's FP16 support. Strict: a
    /// corrupted curve is refused (see [`ShippedArtifact::load_repaired`]
    /// for the salvaging variant). Never panics on malformed input.
    pub fn load(
        json: &str,
        graph: &Graph,
        platform_has_fp16: bool,
    ) -> Result<TradeoffCurve, ShipError> {
        let art = Self::parse_checked(json, graph)?;
        let (name, curve) = art.select_curve(platform_has_fp16)?;
        validate_curve(name, &curve)?;
        Ok(curve)
    }

    /// The tolerant sibling of [`ShippedArtifact::load`]: instead of
    /// refusing a curve with bad points, drops every non-finite point,
    /// re-Pareto-filters and re-sorts what remains, and reports what was
    /// done. Header problems (malformed JSON, wrong program, version skew)
    /// are *not* repairable and still fail. Fails with
    /// [`ShipError::NoUsableCurve`] when nothing survives repair.
    pub fn load_repaired(
        json: &str,
        graph: &Graph,
        platform_has_fp16: bool,
    ) -> Result<(TradeoffCurve, RepairReport), ShipError> {
        let art = Self::parse_checked(json, graph)?;
        let (_, curve) = art.select_curve(platform_has_fp16)?;
        let total = curve.len();
        let finite: Vec<TradeoffPoint> = curve
            .points()
            .iter()
            .filter(|p| p.qos.is_finite() && p.perf.is_finite())
            .cloned()
            .collect();
        let dropped_non_finite = total - finite.len();
        let repaired = TradeoffCurve::from_points(finite);
        if repaired.is_empty() {
            return Err(ShipError::NoUsableCurve);
        }
        let report = RepairReport {
            original: total,
            dropped_non_finite,
            kept: repaired.len(),
        };
        Ok((repaired, report))
    }

    /// Parses the JSON and checks the header invariants shared by
    /// [`ShippedArtifact::load`] and [`ShippedArtifact::load_repaired`].
    fn parse_checked(json: &str, graph: &Graph) -> Result<ShippedArtifact, ShipError> {
        let art: ShippedArtifact =
            serde_json::from_str(json).map_err(|e| ShipError::Malformed(e.to_string()))?;
        if art.version > ARTIFACT_VERSION {
            return Err(ShipError::VersionMismatch { found: art.version });
        }
        if !art.qos_min.is_finite() {
            return Err(ShipError::Malformed(format!(
                "non-finite qos_min {}",
                art.qos_min
            )));
        }
        let got = graph_fingerprint(graph);
        if art.fingerprint != got {
            return Err(ShipError::WrongProgram {
                expected: art.fingerprint,
                got,
            });
        }
        Ok(art)
    }

    fn select_curve(
        self,
        platform_has_fp16: bool,
    ) -> Result<(&'static str, TradeoffCurve), ShipError> {
        if platform_has_fp16 {
            if let Some(c) = self.curve_fp16 {
                return Ok(("fp16", c));
            }
        }
        self.curve_fp32_only
            .map(|c| ("fp32", c))
            .ok_or(ShipError::NoUsableCurve)
    }
}

/// What [`ShippedArtifact::load_repaired`] did to a damaged curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// Points in the shipped curve before repair.
    pub original: usize,
    /// Points dropped for non-finite QoS/perf.
    pub dropped_non_finite: usize,
    /// Points in the repaired curve (after re-Pareto-filtering).
    pub kept: usize,
}

impl RepairReport {
    /// True when the curve loaded clean (nothing was dropped or reordered
    /// away).
    pub fn was_clean(&self) -> bool {
        self.dropped_non_finite == 0 && self.kept == self.original
    }
}

/// The curve invariants a device relies on: every point finite, points
/// strictly increasing in performance.
fn validate_curve(name: &'static str, curve: &TradeoffCurve) -> Result<(), ShipError> {
    let pts = curve.points();
    if pts.is_empty() {
        return Err(ShipError::NoUsableCurve);
    }
    for (i, p) in pts.iter().enumerate() {
        if !p.qos.is_finite() || !p.perf.is_finite() {
            return Err(ShipError::NonFinitePoint {
                curve: name,
                index: i,
            });
        }
    }
    for i in 1..pts.len() {
        if pts[i].perf <= pts[i - 1].perf {
            return Err(ShipError::UnsortedCurve {
                curve: name,
                index: i,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::pareto::TradeoffPoint;
    use at_ir::GraphBuilder;
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new("ship-test", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .flatten()
            .dense(5)
            .softmax();
        b.finish().unwrap()
    }

    fn curve() -> TradeoffCurve {
        TradeoffCurve::from_points(vec![TradeoffPoint {
            qos: 90.0,
            perf: 1.5,
            config: Config::from_knobs(vec![]),
        }])
    }

    #[test]
    fn roundtrip_and_fp16_selection() {
        let g = graph(1);
        let art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.0, Some(curve()), Some(curve()));
        let json = art.to_json();
        let with = ShippedArtifact::load(&json, &g, true).unwrap();
        let without = ShippedArtifact::load(&json, &g, false).unwrap();
        assert_eq!(with.len(), 1);
        assert_eq!(without.len(), 1);
    }

    #[test]
    fn fp16_only_artifact_rejected_on_fp32_platform() {
        let g = graph(1);
        let art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.0, Some(curve()), None);
        let err = ShippedArtifact::load(&art.to_json(), &g, false).unwrap_err();
        assert_eq!(err, ShipError::NoUsableCurve);
        // But usable where FP16 exists.
        assert!(ShippedArtifact::load(&art.to_json(), &g, true).is_ok());
    }

    #[test]
    fn wrong_program_detected() {
        let g1 = graph(1);
        // A structurally different program (extra relu).
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new("ship-test", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .relu()
            .flatten()
            .dense(5)
            .softmax();
        let g2 = b.finish().unwrap();
        let art = ShippedArtifact::new(&g1, QosMetric::Accuracy, 88.0, Some(curve()), None);
        let err = ShippedArtifact::load(&art.to_json(), &g2, true).unwrap_err();
        assert!(matches!(err, ShipError::WrongProgram { .. }));
    }

    #[test]
    fn same_structure_different_weights_share_fingerprint() {
        // Fingerprint is structural: retrained weights keep the artifact
        // valid (install-time re-validation covers QoS drift).
        let g1 = graph(1);
        let g2 = graph(99);
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2));
    }

    #[test]
    fn weights_fingerprint_sees_single_bit_flips() {
        let g1 = graph(1);
        let g2 = graph(99);
        // Structurally identical, so the program fingerprint agrees, but the
        // weight fingerprint is a content hash and must not.
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_ne!(weights_fingerprint(&g1), weights_fingerprint(&g2));
        // Deterministic over identical contents.
        assert_eq!(weights_fingerprint(&g1), weights_fingerprint(&graph(1)));
        // A single flipped mantissa bit anywhere in the model is visible to
        // the weight hash while remaining invisible to the structural one.
        let mut flipped = graph(1);
        let data = flipped.param_mut(at_ir::graph::ParamId(0)).data_mut();
        data[3] = f32::from_bits(data[3].to_bits() ^ 1);
        assert_ne!(weights_fingerprint(&g1), weights_fingerprint(&flipped));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&flipped));
    }

    #[test]
    fn future_version_rejected() {
        let g = graph(1);
        let mut art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.0, Some(curve()), None);
        art.version = ARTIFACT_VERSION + 1;
        let err = ShippedArtifact::load(&art.to_json(), &g, true).unwrap_err();
        assert!(matches!(err, ShipError::VersionMismatch { .. }));
    }

    #[test]
    fn malformed_json_rejected() {
        let g = graph(1);
        assert!(matches!(
            ShippedArtifact::load("{not json", &g, true),
            Err(ShipError::Malformed(_))
        ));
    }

    #[test]
    fn repaired_curve_roundtrips_into_the_selected_variant() {
        let g = graph(1);
        let art = ShippedArtifact::new(&g, QosMetric::Accuracy, 88.0, Some(curve()), Some(curve()));
        // The guard observed the fp16 point lying: promise 90 → honest 84.
        let mut repaired = curve();
        assert!(repaired.repair_qos(0, 84.0));
        let reshipped = art.with_repaired_curve(repaired, true);
        let json = reshipped.to_json();
        let fp16 = ShippedArtifact::load(&json, &g, true).unwrap();
        assert!((fp16.points()[0].qos - 84.0).abs() < 1e-12, "fp16 repaired");
        let fp32 = ShippedArtifact::load(&json, &g, false).unwrap();
        assert!(
            (fp32.points()[0].qos - 90.0).abs() < 1e-12,
            "fp32 untouched"
        );
        // On an fp32-only platform the repair lands in the fp32 slot.
        let mut repaired32 = curve();
        assert!(repaired32.repair_qos(0, 86.5));
        let reshipped32 = art.with_repaired_curve(repaired32, false);
        let back = ShippedArtifact::load(&reshipped32.to_json(), &g, false).unwrap();
        assert!((back.points()[0].qos - 86.5).abs() < 1e-12);
    }
}
