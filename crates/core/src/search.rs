//! OpenTuner-style ensemble search (§6.4).
//!
//! "we use the default OpenTuner setting that uses an ensemble of search
//! techniques including Torczon hillclimbers, variants of Nelder-Mead
//! search, a number of evolutionary mutation techniques, and random
//! search." The ensemble is coordinated by OpenTuner's AUC-bandit
//! meta-technique, reproduced here: each iteration the bandit picks the
//! technique with the best recent improvement record plus an exploration
//! bonus.
//!
//! Configurations are manipulated as vectors of *knob indices* (positions
//! within each node's allowed-knob list), which gives the geometric
//! techniques a meaningful coordinate space.

use crate::config::Config;
use crate::knobs::KnobId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The per-node allowed-knob lists defining the search space.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    node_knobs: Vec<Vec<KnobId>>,
    tunable: Vec<usize>,
}

impl SearchSpace {
    /// Builds a space from per-node knob lists.
    pub fn new(node_knobs: Vec<Vec<KnobId>>) -> SearchSpace {
        let tunable = node_knobs
            .iter()
            .enumerate()
            .filter(|(_, k)| k.len() > 1)
            .map(|(i, _)| i)
            .collect();
        SearchSpace {
            node_knobs,
            tunable,
        }
    }

    /// The allowed knobs per node.
    pub fn node_knobs(&self) -> &[Vec<KnobId>] {
        &self.node_knobs
    }

    /// Indices of tunable nodes (more than one allowed knob).
    pub fn tunable(&self) -> &[usize] {
        &self.tunable
    }

    /// Number of tunable dimensions.
    pub fn dims(&self) -> usize {
        self.tunable.len()
    }

    /// Converts a config to the tunable-dimension index vector.
    pub fn to_indices(&self, config: &Config) -> Vec<usize> {
        self.tunable
            .iter()
            .map(|&n| {
                self.node_knobs[n]
                    .iter()
                    .position(|&k| k == config.knob(n))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Builds a config from a tunable-dimension index vector (indices are
    /// clamped to each node's range).
    pub fn from_indices(&self, idx: &[usize]) -> Config {
        let mut knobs = vec![KnobId::BASELINE; self.node_knobs.len()];
        for (d, &n) in self.tunable.iter().enumerate() {
            let ks = &self.node_knobs[n];
            let i = idx.get(d).copied().unwrap_or(0).min(ks.len() - 1);
            knobs[n] = ks[i];
        }
        Config::from_knobs(knobs)
    }

    /// A uniformly random config.
    pub fn random(&self, rng: &mut StdRng) -> Config {
        Config::random(&self.node_knobs, rng)
    }
}

/// One search technique of the ensemble.
trait Technique {
    fn name(&self) -> &'static str;
    fn propose(
        &mut self,
        space: &SearchSpace,
        best: Option<&(Config, f64)>,
        rng: &mut StdRng,
    ) -> Config;
    fn feedback(&mut self, space: &SearchSpace, config: &Config, fitness: f64, improved: bool);
    /// The technique's adaptive state, for checkpoints.
    fn state(&self) -> TechniqueState;
}

/// Serialised adaptive state of one ensemble technique — everything a
/// technique mutates across iterations, so a checkpointed tuner resumes
/// with the exact ensemble it stopped with.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TechniqueState {
    /// [`RandomSearch`] is stateless.
    Random,
    /// [`GreedyMutation`]'s adaptive mutation strength.
    Evolutionary {
        /// Current mutation sites.
        sites: usize,
    },
    /// [`TorczonHillclimber`]'s pattern state.
    Torczon {
        /// Current search center on the index lattice, if established.
        center: Option<Vec<usize>>,
        /// Current step length.
        step: usize,
    },
    /// [`NelderMead`]'s simplex.
    NelderMead {
        /// `(index vector, fitness)` vertices.
        simplex: Vec<(Vec<usize>, f64)>,
        /// Vertex capacity.
        max_vertices: usize,
    },
}

fn technique_from_state(state: &TechniqueState) -> Box<dyn Technique> {
    match state {
        TechniqueState::Random => Box::new(RandomSearch),
        TechniqueState::Evolutionary { sites } => Box::new(GreedyMutation { sites: *sites }),
        TechniqueState::Torczon { center, step } => Box::new(TorczonHillclimber {
            center: center.clone(),
            step: *step,
        }),
        TechniqueState::NelderMead {
            simplex,
            max_vertices,
        } => Box::new(NelderMead {
            simplex: simplex.clone(),
            max_vertices: *max_vertices,
        }),
    }
}

/// Pure random sampling.
struct RandomSearch;

impl Technique for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }
    fn propose(
        &mut self,
        space: &SearchSpace,
        _best: Option<&(Config, f64)>,
        rng: &mut StdRng,
    ) -> Config {
        space.random(rng)
    }
    fn feedback(&mut self, _: &SearchSpace, _: &Config, _: f64, _: bool) {}
    fn state(&self) -> TechniqueState {
        TechniqueState::Random
    }
}

/// Evolutionary greedy mutation of the incumbent.
struct GreedyMutation {
    sites: usize,
}

impl Technique for GreedyMutation {
    fn name(&self) -> &'static str {
        "evolutionary"
    }
    fn propose(
        &mut self,
        space: &SearchSpace,
        best: Option<&(Config, f64)>,
        rng: &mut StdRng,
    ) -> Config {
        match best {
            Some((b, _)) => b.mutate(space.node_knobs(), self.sites, rng),
            None => space.random(rng),
        }
    }
    fn feedback(&mut self, _: &SearchSpace, _: &Config, _: f64, improved: bool) {
        // Adapt mutation strength: shrink on success (exploit), grow on
        // failure (explore), within [1, 4].
        if improved {
            self.sites = (self.sites.saturating_sub(1)).max(1);
        } else {
            self.sites = (self.sites + 1).min(4);
        }
    }
    fn state(&self) -> TechniqueState {
        TechniqueState::Evolutionary { sites: self.sites }
    }
}

/// Torczon-style pattern search over the knob-index lattice.
struct TorczonHillclimber {
    center: Option<Vec<usize>>,
    step: usize,
}

impl Technique for TorczonHillclimber {
    fn name(&self) -> &'static str {
        "torczon"
    }
    fn propose(
        &mut self,
        space: &SearchSpace,
        best: Option<&(Config, f64)>,
        rng: &mut StdRng,
    ) -> Config {
        let center = match (&self.center, best) {
            (Some(c), _) => c.clone(),
            (None, Some((b, _))) => space.to_indices(b),
            (None, None) => return space.random(rng),
        };
        // Move along a random coordinate by ±step.
        let mut idx = center;
        if !idx.is_empty() {
            let d = rng.gen_range(0..idx.len());
            let delta = self.step as isize * if rng.gen_bool(0.5) { 1 } else { -1 };
            idx[d] = (idx[d] as isize + delta).max(0) as usize;
        }
        space.from_indices(&idx)
    }
    fn feedback(&mut self, space: &SearchSpace, config: &Config, _fitness: f64, improved: bool) {
        if improved {
            // Expand around the new point.
            self.center = Some(space.to_indices(config));
            self.step = (self.step * 2).min(8);
        } else {
            // Contract.
            self.step = (self.step / 2).max(1);
        }
    }
    fn state(&self) -> TechniqueState {
        TechniqueState::Torczon {
            center: self.center.clone(),
            step: self.step,
        }
    }
}

/// A compact Nelder–Mead variant on the discrete index lattice: reflects
/// the worst simplex vertex through the centroid of the rest.
struct NelderMead {
    simplex: Vec<(Vec<usize>, f64)>,
    max_vertices: usize,
}

impl Technique for NelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }
    fn propose(
        &mut self,
        space: &SearchSpace,
        best: Option<&(Config, f64)>,
        rng: &mut StdRng,
    ) -> Config {
        if self.simplex.len() < self.max_vertices {
            // Seed the simplex with random points (plus the incumbent).
            if self.simplex.is_empty() {
                if let Some((b, f)) = best {
                    self.simplex.push((space.to_indices(b), *f));
                }
            }
            return space.random(rng);
        }
        // Reflect worst vertex through the centroid of the others.
        // total_cmp: a NaN fitness must never panic the ensemble (the
        // supervision layer filters NaN out, but the sort stays robust).
        self.simplex.sort_by(|a, b| b.1.total_cmp(&a.1));
        let worst = &self.simplex[self.simplex.len() - 1].0;
        let d = worst.len();
        let mut centroid = vec![0.0f64; d];
        for (v, _) in &self.simplex[..self.simplex.len() - 1] {
            for (c, &x) in centroid.iter_mut().zip(v) {
                *c += x as f64;
            }
        }
        let n = (self.simplex.len() - 1).max(1) as f64;
        let idx: Vec<usize> = (0..d)
            .map(|i| {
                let c = centroid[i] / n;
                let r = 2.0 * c - worst[i] as f64;
                r.round().max(0.0) as usize
            })
            .collect();
        space.from_indices(&idx)
    }
    fn feedback(&mut self, space: &SearchSpace, config: &Config, fitness: f64, _improved: bool) {
        let idx = space.to_indices(config);
        if self.simplex.len() < self.max_vertices {
            self.simplex.push((idx, fitness));
            return;
        }
        // Replace the worst vertex when the proposal beats it.
        if let Some(worst) = self.simplex.iter_mut().min_by(|a, b| a.1.total_cmp(&b.1)) {
            if fitness > worst.1 {
                *worst = (idx, fitness);
            }
        }
    }
    fn state(&self) -> TechniqueState {
        TechniqueState::NelderMead {
            simplex: self.simplex.clone(),
            max_vertices: self.max_vertices,
        }
    }
}

/// AUC-bandit meta-technique statistics for one arm.
#[derive(Default)]
struct Arm {
    history: std::collections::VecDeque<bool>,
    uses: usize,
}

impl Arm {
    const WINDOW: usize = 50;

    fn record(&mut self, improved: bool) {
        self.history.push_back(improved);
        if self.history.len() > Self::WINDOW {
            self.history.pop_front();
        }
        self.uses += 1;
    }

    /// Area-under-curve credit: recent improvements weigh more.
    fn auc(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let n = self.history.len();
        let denom = (n * (n + 1) / 2) as f64;
        let score: f64 = self
            .history
            .iter()
            .enumerate()
            .map(|(i, &imp)| if imp { (i + 1) as f64 } else { 0.0 })
            .sum();
        score / denom
    }
}

/// Serialised state of one AUC-bandit arm.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmState {
    /// Improvement history window, oldest first.
    pub history: Vec<bool>,
    /// Total uses of the arm.
    pub uses: usize,
}

/// Serialised state of an [`Autotuner`]: everything that advances as the
/// search runs (RNG stream, bandit statistics, technique state, incumbent,
/// convergence counters). Restoring into a tuner constructed with the same
/// space and budgets resumes the exact proposal stream — the backbone of
/// the checkpoint/resume guarantee.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TunerState {
    /// Raw xoshiro256++ RNG state.
    pub rng: [u64; 4],
    /// Iterations executed.
    pub iterations: usize,
    /// Iterations since the incumbent last improved.
    pub since_improvement: usize,
    /// The incumbent `(config, fitness)`.
    pub best: Option<(Config, f64)>,
    /// Per-technique bandit statistics.
    pub arms: Vec<ArmState>,
    /// Per-technique adaptive state (same order as `arms`).
    pub techniques: Vec<TechniqueState>,
}

/// Outcome of one autotuning iteration.
pub struct Iteration {
    /// The proposed configuration.
    pub config: Config,
    /// Which technique proposed it.
    pub technique: &'static str,
}

/// A proposal from [`Autotuner::propose_batch`] awaiting its fitness
/// report ([`Autotuner::report_proposal`]).
pub struct Proposal {
    /// The proposed configuration.
    pub config: Config,
    /// Which technique proposed it.
    pub technique: &'static str,
    technique_index: usize,
}

/// The ensemble autotuner.
///
/// Usage: call [`Autotuner::next_config`], evaluate its fitness (higher is
/// better), then call [`Autotuner::report`]; repeat while
/// [`Autotuner::continue_tuning`]. For batch-synchronous (parallel)
/// evaluation, use [`Autotuner::propose_batch`] and report every proposal
/// in order with [`Autotuner::report_proposal`] — see [`crate::evaluate`].
pub struct Autotuner {
    space: SearchSpace,
    techniques: Vec<Box<dyn Technique>>,
    arms: Vec<Arm>,
    rng: StdRng,
    best: Option<(Config, f64)>,
    iterations: usize,
    max_iterations: usize,
    since_improvement: usize,
    convergence_window: usize,
    pending: Option<usize>, // technique index of the outstanding proposal
}

impl Autotuner {
    /// Creates a tuner over a space with iteration and convergence bounds
    /// (the paper: max 30 K iterations, convergence after 1 K without
    /// improvement).
    pub fn new(
        space: SearchSpace,
        max_iterations: usize,
        convergence_window: usize,
        seed: u64,
    ) -> Autotuner {
        use rand::SeedableRng;
        let techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation { sites: 2 }),
            Box::new(TorczonHillclimber {
                center: None,
                step: 1,
            }),
            Box::new(NelderMead {
                simplex: Vec::new(),
                max_vertices: 8,
            }),
        ];
        let arms = techniques.iter().map(|_| Arm::default()).collect();
        Autotuner {
            space,
            techniques,
            arms,
            rng: StdRng::seed_from_u64(seed),
            best: None,
            iterations: 0,
            max_iterations,
            since_improvement: 0,
            convergence_window,
            pending: None,
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Whether tuning should continue (Algorithm 1's
    /// `autotuner.continueTuning()`).
    pub fn continue_tuning(&self) -> bool {
        self.iterations < self.max_iterations && self.since_improvement < self.convergence_window
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The incumbent best (config, fitness).
    pub fn best(&self) -> Option<&(Config, f64)> {
        self.best.as_ref()
    }

    /// AUC-bandit arm selection: best recent credit + exploration bonus.
    /// `in_batch` holds per-arm uses and `extra_iters` proposals already
    /// issued within the current (unreported) batch, so one batch spreads
    /// across arms like the same number of sequential picks would.
    fn select_technique_with(&self, in_batch: &[usize], extra_iters: usize) -> usize {
        let t = (self.iterations + extra_iters + 1) as f64;
        let mut best_i = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let uses = arm.uses + in_batch[i];
            let exploration = (2.0 * t.ln() / uses.max(1) as f64).sqrt();
            let score = arm.auc() + exploration;
            if score > best_score {
                best_score = score;
                best_i = i;
            }
        }
        best_i
    }

    /// Algorithm 1's `autotuner.nextConfig()`.
    pub fn next_config(&mut self) -> Iteration {
        let ti = self.select_technique_with(&vec![0; self.arms.len()], 0);
        self.pending = Some(ti);
        let config = self.techniques[ti].propose(&self.space, self.best.as_ref(), &mut self.rng);
        Iteration {
            config,
            technique: self.techniques[ti].name(),
        }
    }

    /// Proposes up to `k` configurations for batch-synchronous evaluation,
    /// capped at the remaining iteration budget.
    ///
    /// Technique selection and proposal advance only sequential state (the
    /// bandit statistics and the shared RNG), so the proposal stream of a
    /// seeded tuner is identical no matter how many threads later evaluate
    /// the batch. All proposals are generated against the incumbent best of
    /// the previous round (batch-synchronous semantics).
    pub fn propose_batch(&mut self, k: usize) -> Vec<Proposal> {
        let remaining = self.max_iterations.saturating_sub(self.iterations);
        let k = k.min(remaining);
        let mut in_batch = vec![0usize; self.techniques.len()];
        let mut proposals = Vec::with_capacity(k);
        for j in 0..k {
            let ti = self.select_technique_with(&in_batch, j);
            in_batch[ti] += 1;
            let config =
                self.techniques[ti].propose(&self.space, self.best.as_ref(), &mut self.rng);
            proposals.push(Proposal {
                config,
                technique: self.techniques[ti].name(),
                technique_index: ti,
            });
        }
        proposals
    }

    /// Algorithm 1's `autotuner.setConfigFitness(...)`: reports the fitness
    /// (higher is better) of the last proposal.
    pub fn report(&mut self, config: &Config, fitness: f64) {
        let ti = self.pending.take();
        self.record(ti, config, fitness);
    }

    /// Reports the fitness of one batch proposal. Callers must report every
    /// proposal of a batch, in proposal order, so seeded runs stay
    /// deterministic.
    pub fn report_proposal(&mut self, proposal: &Proposal, fitness: f64) {
        self.record(Some(proposal.technique_index), &proposal.config, fitness);
    }

    fn record(&mut self, ti: Option<usize>, config: &Config, fitness: f64) {
        self.iterations += 1;
        let improved = match &self.best {
            Some((_, f)) => fitness > *f,
            None => true,
        };
        if improved {
            self.best = Some((config.clone(), fitness));
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
        if let Some(ti) = ti {
            self.arms[ti].record(improved);
            self.techniques[ti].feedback(&self.space, config, fitness, improved);
        }
    }

    /// Captures all advancing state for a checkpoint. The search space and
    /// the iteration/convergence budgets are *not* captured — a resumed
    /// tuner must be constructed with the same parameters, which the tuning
    /// entry points derive deterministically from [`crate::tuner::TunerParams`].
    pub fn snapshot(&self) -> TunerState {
        TunerState {
            rng: self.rng.state(),
            iterations: self.iterations,
            since_improvement: self.since_improvement,
            best: self.best.clone(),
            arms: self
                .arms
                .iter()
                .map(|a| ArmState {
                    history: a.history.iter().copied().collect(),
                    uses: a.uses,
                })
                .collect(),
            techniques: self.techniques.iter().map(|t| t.state()).collect(),
        }
    }

    /// Restores state captured by [`Autotuner::snapshot`]. The proposal
    /// stream continues bit-identically from the snapshot point.
    pub fn restore(&mut self, state: &TunerState) {
        self.rng = StdRng::from_state(state.rng);
        self.iterations = state.iterations;
        self.since_improvement = state.since_improvement;
        self.best = state.best.clone();
        self.arms = state
            .arms
            .iter()
            .map(|a| Arm {
                history: a.history.iter().copied().collect(),
                uses: a.uses,
            })
            .collect();
        self.techniques = state.techniques.iter().map(technique_from_state).collect();
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space(nodes: usize, knobs: usize) -> SearchSpace {
        SearchSpace::new(
            (0..nodes)
                .map(|_| (0..knobs as u16).map(KnobId).collect())
                .collect(),
        )
    }

    #[test]
    fn indices_roundtrip() {
        let s = space(5, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let c = s.random(&mut rng);
            let idx = s.to_indices(&c);
            let back = s.from_indices(&idx);
            assert_eq!(back, c);
        }
    }

    #[test]
    fn from_indices_clamps() {
        let s = space(3, 4);
        let c = s.from_indices(&[100, 100, 100]);
        for &k in c.knobs() {
            assert!(k.0 < 4);
        }
    }

    /// A separable toy objective: fitness is the negated distance of the
    /// knob-index vector from a hidden optimum. The ensemble should get
    /// close fast.
    #[test]
    fn ensemble_optimises_separable_objective() {
        let s = space(8, 6);
        let target: Vec<usize> = vec![3, 1, 5, 0, 2, 4, 1, 3];
        let fitness = |c: &Config, s: &SearchSpace| -> f64 {
            let idx = s.to_indices(c);
            -idx.iter()
                .zip(&target)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum::<f64>()
        };
        // Budget sized for the vendored deterministic RNG stream (the
        // paper runs 30 K iterations; 4 K is ample for 8 dimensions).
        let mut tuner = Autotuner::new(s, 4000, 1000, 42);
        while tuner.continue_tuning() {
            let it = tuner.next_config();
            let f = fitness(&it.config, tuner.space());
            tuner.report(&it.config, f);
        }
        let (_, best_f) = tuner.best().unwrap();
        assert!(
            *best_f >= -2.0,
            "ensemble should approach the optimum, best fitness {best_f}"
        );
    }

    #[test]
    fn beats_pure_random_on_structured_objective() {
        // The same objective, same budget: ensemble vs random-only.
        let target: Vec<usize> = vec![3, 1, 5, 0, 2, 4, 1, 3, 2, 2];
        let fit = |c: &Config, s: &SearchSpace| -> f64 {
            let idx = s.to_indices(c);
            -idx.iter()
                .zip(&target)
                .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
                .sum::<f64>()
        };
        let budget = 400;
        let mut ensemble_best = f64::NEG_INFINITY;
        {
            let s = space(10, 6);
            let mut tuner = Autotuner::new(s, budget, budget, 7);
            while tuner.continue_tuning() {
                let it = tuner.next_config();
                let f = fit(&it.config, tuner.space());
                tuner.report(&it.config, f);
            }
            ensemble_best = ensemble_best.max(tuner.best().unwrap().1);
        }
        let mut random_best = f64::NEG_INFINITY;
        {
            let s = space(10, 6);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..budget {
                let c = s.random(&mut rng);
                random_best = random_best.max(fit(&c, &s));
            }
        }
        assert!(
            ensemble_best >= random_best,
            "ensemble {ensemble_best} vs random {random_best}"
        );
    }

    #[test]
    fn convergence_window_stops_tuning() {
        let s = space(4, 3);
        let mut tuner = Autotuner::new(s, 10_000, 50, 1);
        // Constant fitness: no improvement after the first report.
        let mut iters = 0;
        while tuner.continue_tuning() {
            let it = tuner.next_config();
            tuner.report(&it.config, 0.0);
            iters += 1;
            assert!(iters < 200, "did not converge");
        }
        assert!(iters <= 52);
    }

    #[test]
    fn batch_of_one_matches_sequential_api() {
        // propose_batch(1)/report_proposal must walk the exact state
        // trajectory of next_config/report under the same seed.
        let fit = |c: &Config, s: &SearchSpace| -> f64 {
            -(s.to_indices(c).iter().sum::<usize>() as f64)
        };
        let mut seq = Autotuner::new(space(6, 5), 300, 300, 99);
        while seq.continue_tuning() {
            let it = seq.next_config();
            let f = fit(&it.config, seq.space());
            seq.report(&it.config, f);
        }
        let mut bat = Autotuner::new(space(6, 5), 300, 300, 99);
        while bat.continue_tuning() {
            for p in bat.propose_batch(1) {
                let f = fit(&p.config, bat.space());
                bat.report_proposal(&p, f);
            }
        }
        assert_eq!(seq.iterations(), bat.iterations());
        assert_eq!(seq.best().unwrap(), bat.best().unwrap());
    }

    #[test]
    fn propose_batch_respects_iteration_budget() {
        let mut tuner = Autotuner::new(space(4, 3), 10, 10, 2);
        assert_eq!(tuner.propose_batch(64).len(), 10);
        for p in tuner.propose_batch(64) {
            tuner.report_proposal(&p, 0.0);
        }
        assert_eq!(tuner.iterations(), 10);
        assert!(tuner.propose_batch(64).is_empty());
    }

    #[test]
    fn batch_spreads_across_techniques() {
        // With no history, the exploration bonus must not hand the whole
        // batch to one arm: in-batch uses count toward the bonus.
        let mut tuner = Autotuner::new(space(6, 5), 100, 100, 5);
        let batch = tuner.propose_batch(8);
        let distinct: std::collections::HashSet<&str> = batch.iter().map(|p| p.technique).collect();
        assert!(distinct.len() >= 3, "batch used only {distinct:?}");
    }

    #[test]
    fn snapshot_restore_resumes_identical_stream() {
        // Run to completion once; re-run restoring a mid-flight snapshot
        // into a tuner with a *different* seed. Both must finish in the
        // same final state, proposal for proposal.
        let fit = |c: &Config, s: &SearchSpace| -> f64 {
            -(s.to_indices(c).iter().sum::<usize>() as f64)
        };
        let drive = |tuner: &mut Autotuner, snap_at: Option<usize>| -> Option<TunerState> {
            let mut snap = None;
            let mut round = 0;
            while tuner.continue_tuning() {
                let batch = tuner.propose_batch(4);
                if batch.is_empty() {
                    break;
                }
                for p in batch {
                    let f = fit(&p.config, tuner.space());
                    tuner.report_proposal(&p, f);
                }
                round += 1;
                if snap_at == Some(round) {
                    snap = Some(tuner.snapshot());
                }
            }
            snap
        };
        let mut full = Autotuner::new(space(6, 5), 200, 200, 13);
        let snap = drive(&mut full, Some(5)).expect("snapshot at round 5");

        let mut resumed = Autotuner::new(space(6, 5), 200, 200, 999);
        resumed.restore(&snap);
        drive(&mut resumed, None);

        assert_eq!(full.iterations(), resumed.iterations());
        assert_eq!(full.best(), resumed.best());
        assert_eq!(full.snapshot(), resumed.snapshot());
    }

    #[test]
    fn auc_weights_recent_history() {
        let mut a = Arm::default();
        for _ in 0..10 {
            a.record(false);
        }
        let low = a.auc();
        for _ in 0..5 {
            a.record(true);
        }
        assert!(a.auc() > low);
    }
}
