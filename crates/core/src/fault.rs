//! Deterministic fault injection for the tuning pipeline.
//!
//! Development-time autotuning runs for hours against simulators and (at
//! install time) real edge devices, so candidate evaluation is the part of
//! the pipeline most exposed to transient failures: flaky device
//! measurements, simulator crashes, stragglers, and corrupted readings.
//! This module provides the *test harness* side of that story: a seeded,
//! replayable [`FaultPlan`] and a [`FaultyEvaluator`] wrapper that injects
//! faults into any evaluator so the supervision layer
//! ([`crate::supervise`]) can be exercised — and the whole tuner proven
//! fault-tolerant — without any real hardware misbehaving on cue.
//!
//! Every injection decision is a pure function of `(config, attempt,
//! seed)`: re-running a seeded tuning campaign replays exactly the same
//! faults at exactly the same points regardless of thread count or wall
//! clock, which is what makes the fault-rate sweeps (`tune_faults`) and the
//! crash/resume tests reproducible.

use crate::config::Config;
use crate::evaluate::{AttemptEvaluator, Evaluation};
use at_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The evaluator returns a transient [`TensorError`] (retry-worthy).
    TransientError,
    /// The evaluator panics mid-evaluation.
    Panic,
    /// The evaluator stalls (a simulated straggler) before answering.
    Stall,
    /// The evaluator answers with a non-finite QoS value.
    PoisonQos,
    /// The evaluator answers with a non-finite performance value.
    PoisonPerf,
}

/// Relative weights of the fault kinds within a plan.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultMix {
    /// Weight of [`FaultKind::TransientError`].
    pub error: f64,
    /// Weight of [`FaultKind::Panic`].
    pub panic: f64,
    /// Weight of [`FaultKind::Stall`].
    pub stall: f64,
    /// Weight of [`FaultKind::PoisonQos`].
    pub poison_qos: f64,
    /// Weight of [`FaultKind::PoisonPerf`].
    pub poison_perf: f64,
}

impl Default for FaultMix {
    fn default() -> Self {
        // Errors dominate (the realistic case), panics and poisoned values
        // are common enough to matter, stragglers are rare.
        FaultMix {
            error: 4.0,
            panic: 2.0,
            stall: 1.0,
            poison_qos: 2.0,
            poison_perf: 1.0,
        }
    }
}

impl FaultMix {
    /// A mix containing only transient errors.
    pub fn errors_only() -> FaultMix {
        FaultMix {
            error: 1.0,
            panic: 0.0,
            stall: 0.0,
            poison_qos: 0.0,
            poison_perf: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.error + self.panic + self.stall + self.poison_qos + self.poison_perf
    }

    /// Picks a kind from a uniform draw in `[0, 1)`.
    fn pick(&self, u: f64) -> FaultKind {
        let total = self.total();
        if total <= 0.0 {
            return FaultKind::TransientError;
        }
        let mut x = u * total;
        for (w, k) in [
            (self.error, FaultKind::TransientError),
            (self.panic, FaultKind::Panic),
            (self.stall, FaultKind::Stall),
            (self.poison_qos, FaultKind::PoisonQos),
            (self.poison_perf, FaultKind::PoisonPerf),
        ] {
            if x < w {
                return k;
            }
            x -= w;
        }
        FaultKind::PoisonPerf
    }
}

/// A seeded, replayable fault-injection plan.
///
/// `fault_for(config, attempt)` is pure: the same `(config, attempt,
/// seed)` triple always yields the same decision, so a retried attempt sees
/// a *fresh* (but still deterministic) draw — transient faults clear on
/// retry with probability `1 - rate` per attempt, exactly like a flaky
/// device would.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-attempt fault probability in `[0, 1]`.
    pub rate: f64,
    /// Seed decorrelating this plan from the search RNG.
    pub seed: u64,
    /// Relative weights of the injected fault kinds.
    pub mix: FaultMix,
    /// Simulated straggler delay for [`FaultKind::Stall`], milliseconds.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A plan injecting the default fault mix at `rate` per attempt.
    pub fn new(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            rate: rate.clamp(0.0, 1.0),
            seed,
            mix: FaultMix::default(),
            stall_ms: 5,
        }
    }

    /// SplitMix64-style finalizer over an FNV-1a hash of the triple.
    fn draw(&self, config: &Config, attempt: u32, stream: u64) -> f64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for k in config.knobs() {
            eat(&k.0.to_le_bytes());
        }
        eat(&attempt.to_le_bytes());
        eat(&stream.to_le_bytes());
        // Finalize so nearby triples decorrelate.
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The (pure, replayable) injection decision for one evaluation
    /// attempt: `None` means the attempt runs clean.
    pub fn fault_for(&self, config: &Config, attempt: u32) -> Option<FaultKind> {
        if self.draw(config, attempt, 0) < self.rate {
            Some(self.mix.pick(self.draw(config, attempt, 1)))
        } else {
            None
        }
    }
}

/// The panic payload used by injected panics, so the supervision layer and
/// the test panic hook can tell them apart from genuine bugs.
#[derive(Debug)]
pub struct InjectedPanic {
    /// The attempt index the panic was injected into.
    pub attempt: u32,
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr report for [`InjectedPanic`] payloads only;
/// every other panic still reports through the previously installed hook.
/// Without this, a 20% fault-rate sweep floods the log with thousands of
/// backtraces for panics that are part of the experiment.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Wraps any evaluator with the faults of a [`FaultPlan`].
///
/// Implements [`AttemptEvaluator`] (not [`crate::evaluate::Evaluator`])
/// because the injection decision depends on the attempt index: supervision
/// retries see fresh draws, so transient faults actually behave
/// transiently.
pub struct FaultyEvaluator<'a, E: AttemptEvaluator> {
    inner: &'a E,
    plan: FaultPlan,
}

impl<'a, E: AttemptEvaluator> FaultyEvaluator<'a, E> {
    /// Wraps `inner` with `plan`. Also installs the injected-panic hook
    /// filter — the injector knows its own panics are noise.
    pub fn new(inner: &'a E, plan: FaultPlan) -> FaultyEvaluator<'a, E> {
        silence_injected_panics();
        FaultyEvaluator { inner, plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<E: AttemptEvaluator> AttemptEvaluator for FaultyEvaluator<'_, E> {
    fn evaluate_attempt(&self, config: &Config, attempt: u32) -> Result<Evaluation, TensorError> {
        match self.plan.fault_for(config, attempt) {
            None => self.inner.evaluate_attempt(config, attempt),
            Some(FaultKind::TransientError) => Err(TensorError::Transient {
                detail: format!("injected fault (attempt {attempt})"),
            }),
            Some(FaultKind::Panic) => std::panic::panic_any(InjectedPanic { attempt }),
            Some(FaultKind::Stall) => {
                // A straggler, not a failure: the answer arrives late but
                // correct. Keeps the batch driver's latency overlap honest.
                std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
                self.inner.evaluate_attempt(config, attempt)
            }
            Some(FaultKind::PoisonQos) => {
                let mut e = self.inner.evaluate_attempt(config, attempt)?;
                e.qos = if self.draw_bit(config, attempt) {
                    f64::NAN
                } else {
                    f64::INFINITY
                };
                Ok(e)
            }
            Some(FaultKind::PoisonPerf) => {
                let mut e = self.inner.evaluate_attempt(config, attempt)?;
                e.perf = if self.draw_bit(config, attempt) {
                    f64::NAN
                } else {
                    f64::NEG_INFINITY
                };
                Ok(e)
            }
        }
    }
}

impl<E: AttemptEvaluator> FaultyEvaluator<'_, E> {
    fn draw_bit(&self, config: &Config, attempt: u32) -> bool {
        self.plan.draw(config, attempt, 2) < 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::knobs::KnobId;

    struct Const;
    impl Evaluator for Const {
        fn evaluate(&self, _: &Config) -> Result<Evaluation, TensorError> {
            Ok(Evaluation {
                qos: 90.0,
                perf: 1.5,
            })
        }
    }

    fn cfg(bits: u16) -> Config {
        Config::from_knobs(vec![KnobId(bits), KnobId(bits >> 3)])
    }

    #[test]
    fn decisions_are_pure_and_replayable() {
        let plan = FaultPlan::new(0.3, 42);
        for c in 0..200u16 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.fault_for(&cfg(c), attempt),
                    plan.fault_for(&cfg(c), attempt)
                );
            }
        }
    }

    #[test]
    fn rate_is_respected_roughly() {
        let plan = FaultPlan::new(0.25, 7);
        let n = 4000;
        let faults = (0..n)
            .filter(|&i| plan.fault_for(&cfg(i as u16), i as u32 % 3).is_some())
            .count();
        let frac = faults as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "observed fault rate {frac}");
    }

    #[test]
    fn zero_rate_injects_nothing_and_full_rate_everything() {
        let none = FaultPlan::new(0.0, 1);
        let all = FaultPlan::new(1.0, 1);
        for c in 0..100u16 {
            assert_eq!(none.fault_for(&cfg(c), 0), None);
            assert!(all.fault_for(&cfg(c), 0).is_some());
        }
    }

    #[test]
    fn attempts_draw_independently() {
        // A config that faults on attempt 0 must (at 30% rate) usually run
        // clean on some later attempt — that's what makes faults transient.
        let plan = FaultPlan::new(0.3, 9);
        let mut recovered = 0;
        let mut faulted = 0;
        for c in 0..500u16 {
            if plan.fault_for(&cfg(c), 0).is_some() {
                faulted += 1;
                if (1..4).any(|a| plan.fault_for(&cfg(c), a).is_none()) {
                    recovered += 1;
                }
            }
        }
        assert!(faulted > 100, "rate too low to test ({faulted})");
        assert!(
            recovered as f64 >= 0.9 * faulted as f64,
            "only {recovered}/{faulted} faulty configs recover within 3 retries"
        );
    }

    #[test]
    fn injected_faults_have_the_declared_shape() {
        let mk = |mix: FaultMix| {
            FaultyEvaluator::new(
                &Const,
                FaultPlan {
                    rate: 1.0,
                    seed: 3,
                    mix,
                    stall_ms: 0,
                },
            )
        };
        let errors = mk(FaultMix::errors_only());
        assert!(matches!(
            errors.evaluate_attempt(&cfg(1), 0),
            Err(TensorError::Transient { .. })
        ));
        let poison = mk(FaultMix {
            error: 0.0,
            panic: 0.0,
            stall: 0.0,
            poison_qos: 1.0,
            poison_perf: 0.0,
        });
        let e = poison.evaluate_attempt(&cfg(1), 0).unwrap();
        assert!(!e.qos.is_finite());
        assert!(e.perf.is_finite());
        let stall = mk(FaultMix {
            error: 0.0,
            panic: 0.0,
            stall: 1.0,
            poison_qos: 0.0,
            poison_perf: 0.0,
        });
        let e = stall.evaluate_attempt(&cfg(1), 0).unwrap();
        assert_eq!(e.qos, 90.0);
    }

    #[test]
    fn injected_panics_carry_typed_payload() {
        let panics = FaultyEvaluator::new(
            &Const,
            FaultPlan {
                rate: 1.0,
                seed: 3,
                mix: FaultMix {
                    error: 0.0,
                    panic: 1.0,
                    stall: 0.0,
                    poison_qos: 0.0,
                    poison_perf: 0.0,
                },
                stall_ms: 0,
            },
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            panics.evaluate_attempt(&cfg(1), 2)
        }));
        let payload = caught.expect_err("must panic");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("typed payload");
        assert_eq!(injected.attempt, 2);
    }
}
