//! Fleet-scale multi-tenant serving (§5 at the millions-of-users regime).
//!
//! [`crate::serve`] holds one server's QoS promises under overload; this
//! module generalises it into a simulated *fleet*: N server replicas × M
//! tenant models, each tenant carrying its own shipped [`TradeoffCurve`],
//! QoS floor, baseline cost and traffic profile (the same
//! Steady/Bursty/Diurnal/Spike arrival generators). On top of the
//! per-replica machinery the fleet adds the three distribution concerns the
//! single-server loop cannot express:
//!
//! * **Front-door routing** — a pluggable, pure [`route`] function
//!   implementing round-robin, join-shortest-queue and QoS-aware
//!   power-of-two-choices ([`RouterPolicy`]). Routing never selects a
//!   replica whose circuit breaker is open while any closed replica
//!   exists; with every breaker open the request is shed at the door.
//! * **Per-replica guard + breaker state** — every replica runs its own
//!   [`BreakerState`] machine (trip on consecutive failures, cooldown,
//!   half-open probing), and every (replica, tenant) pair runs its own
//!   [`QosGuard`] + [`RuntimeTuner`], so one tenant's lying curve is
//!   convicted and exact-clamped *per replica* without touching any other
//!   tenant's accounting.
//! * **Work stealing** — when a replica's queue drains it steals the back
//!   half of the longest peer queue, and when a breaker trips its queued
//!   requests migrate to the least-loaded closed replicas instead of being
//!   shed (overflow still sheds, with a typed reason).
//!
//! The whole simulation is a single-threaded pure function of its inputs:
//! one seed produces a bit-identical [`FleetReport`] on any machine and
//! under any rayon thread count, which is what makes fleet behaviour
//! testable — and what lets the `serve_fleet` bench bin push millions of
//! simulated requests per run and publish the harness's own sustained
//! simulated-requests/sec in `BENCH_serve.json`.
//!
//! On top of load the fleet also survives *failure*: a seeded
//! [`ChaosPlan`] merges replica crashes (with warm restart from a
//! [`ReplicaCheckpoint`]), silent gray failures (service-time inflation
//! the router must detect itself via per-replica EWMA ejection —
//! [`EjectionParams`]), and router↔replica partitions (treated like an
//! open breaker, with bounded message loss) into the same time-ordered
//! event stream. The accounting invariant is absolute: every arrival ends
//! up served, faulted, stalled, or shed with a typed
//! [`crate::serve::ShedReason`] — `requests_unaccounted` in the report is
//! arithmetic, not an estimate, and must be zero.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use crate::chaos::{ChaosKind, ChaosPlan, InjectedFlip};
use crate::checkpoint::{ReplicaCheckpoint, TenantCheckpoint, REPLICA_CHECKPOINT_VERSION};
use crate::guard::{fails_floor, splitmix64, GuardParams, GuardVerdict, QosGuard};
use crate::pareto::TradeoffCurve;
use crate::runtime::{Policy, RuntimeTuner};
use crate::serve::{
    generate_arrivals, BreakerState, NoFaultExecutor, RequestExecutor, ServeParams, TrafficPattern,
};
use at_hw::DisturbedDevice;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Tenants and fleet parameters
// ---------------------------------------------------------------------------

/// One tenant model served by the fleet: its shipped curve, cost anchor,
/// QoS contract and traffic profile.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (model zoo benchmark name in the bench harness).
    pub name: String,
    /// The tenant's shipped tradeoff curve.
    pub curve: TradeoffCurve,
    /// Nominal-condition exact service time of one request, seconds.
    pub baseline_time_s: f64,
    /// QoS attributed to the exact baseline configuration.
    pub baseline_qos: f64,
    /// The tenant's traffic profile.
    pub pattern: TrafficPattern,
    /// Seed of the tenant's arrival trace.
    pub arrival_seed: u64,
    /// The tenant's guard contract (canary fraction, tolerance, QoS floor).
    pub guard: GuardParams,
}

/// Front-door load-balancing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through the replicas, skipping open breakers.
    RoundRobin,
    /// Route to the closed replica with the shortest queue.
    JoinShortestQueue,
    /// Sample two closed replicas with a stateless hash and pick the one
    /// with the lower QoS-aware load score (queue depth plus current
    /// degradation rung) — the classic power-of-two-choices balancer made
    /// approximation-aware.
    PowerOfTwoChoices,
}

impl RouterPolicy {
    /// All policies, in report order.
    pub const ALL: [RouterPolicy; 3] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::PowerOfTwoChoices,
    ];

    /// Stable display name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::PowerOfTwoChoices => "qos-power-of-two",
        }
    }
}

/// Fleet-level parameters. Per-replica control behaviour (deadline, queue
/// cap, ladder hysteresis, breaker thresholds, stall watchdog, event cap)
/// reuses [`ServeParams`] unchanged.
#[derive(Clone, Debug)]
pub struct FleetParams {
    /// Number of server replicas (≥ 1).
    pub replicas: usize,
    /// Front-door routing policy.
    pub policy: RouterPolicy,
    /// Per-replica serving parameters (shared by all replicas).
    pub serve: ServeParams,
    /// Simulated horizon, seconds: every tenant's arrival trace covers
    /// `[0, horizon_s)`.
    pub horizon_s: f64,
    /// Enables work stealing (queue-drain steals and breaker-trip
    /// migration). With stealing off, a tripped replica's queue is shed,
    /// exactly like the single-server loop.
    pub steal: bool,
    /// Seed of the power-of-two sampling hash.
    pub route_seed: u64,
    /// Scripted failure injection (empty by default: a chaos-free run is
    /// bit-identical to one that predates the chaos layer).
    pub chaos: ChaosPlan,
    /// Gray-failure ejection knobs for the router.
    pub ejection: EjectionParams,
    /// Silent-data-corruption defense knobs.
    pub sdc: SdcParams,
}

impl Default for FleetParams {
    fn default() -> FleetParams {
        FleetParams {
            replicas: 4,
            policy: RouterPolicy::JoinShortestQueue,
            serve: ServeParams::default(),
            horizon_s: 60.0,
            steal: true,
            route_seed: 0xF1EE7,
            chaos: ChaosPlan::default(),
            ejection: EjectionParams::default(),
            sdc: SdcParams::default(),
        }
    }
}

/// Silent-data-corruption defense knobs: how the fleet reacts when a
/// replica's ABFT-checksummed kernels report a corrupted result.
///
/// The ground truth comes from the chaos plan's bit-flip windows
/// ([`ChaosPlan::bitflip_at`] / [`ChaosPlan::draw_flip`]); the fleet models
/// the at-tensor ABFT layer's sensitivity with `detect_bit_floor`: a flip
/// in bit ≥ floor perturbs the checksum beyond the NaN-safe tolerance and
/// is *detected*, a lower flip stays under the noise floor and *escapes*
/// (it is served silently and counted in `sdc_escaped`). A detected result
/// is discarded — it never reaches the tenant, the guard's residual window
/// or the breaker — and the request is re-executed on a healthy peer
/// within `reexec_budget`; past the budget (or with no healthy peer) it is
/// accounted as faulted. `eject_after` consecutive-style detection strikes
/// hand the replica to the existing gray-failure eject → probe → readmit
/// machinery. Every default keeps a corruption-free run bit-identical to
/// the pre-SDC code path.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SdcParams {
    /// Whether replicas run the ABFT-protected kernels. Unprotected
    /// replicas never detect anything: every injected flip escapes.
    pub protected: bool,
    /// Times one request may be re-executed after a detection before it is
    /// accounted as faulted.
    pub reexec_budget: usize,
    /// Detection strikes on one replica before the router ejects it
    /// (reset by readmission and by warm restart).
    pub eject_after: usize,
    /// Lowest flipped bit the modelled ABFT check can see: flips in bits
    /// `>= detect_bit_floor` are detected, lower flips escape.
    pub detect_bit_floor: u32,
    /// Per-completion probability that verification trips with no real
    /// flip (checksum round-off pessimism). 0 disables the draw entirely.
    pub false_alarm_rate: f64,
}

impl Default for SdcParams {
    fn default() -> SdcParams {
        SdcParams {
            protected: true,
            reexec_budget: 1,
            eject_after: 3,
            detect_bit_floor: 16,
            false_alarm_rate: 0.0,
        }
    }
}

/// Gray-failure defense knobs: how the router spots a slow-but-alive
/// replica and when it lets it back in.
///
/// The router keeps a per-replica EWMA of the *observed slowdown* of each
/// completion (service time × configured speedup ÷ tenant baseline — the
/// same normalised unit as the ladder's `slow_ewma`). A replica whose EWMA
/// exceeds `eject_ratio` × the median EWMA of its healthy peers is ejected
/// from routing candidacy; after `probe_after_s` it is re-probed with a
/// bounded number of requests and readmitted only when the probes come
/// back fast. Detection is *relative*, so a fleet-wide disturbance (every
/// replica slowed by the same brownout) never ejects anyone.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EjectionParams {
    /// Master switch; off = the router never ejects.
    pub enabled: bool,
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest sample).
    pub alpha: f64,
    /// Completions a replica must serve (since start or restart) before it
    /// can be ejected — protects cold replicas from noisy first samples.
    pub min_samples: usize,
    /// Ejection threshold: EWMA > `eject_ratio` × healthy-peer median.
    pub eject_ratio: f64,
    /// Seconds an ejected replica sits out before probing begins.
    pub probe_after_s: f64,
    /// Probe requests admitted per probation round.
    pub probe_budget: usize,
    /// A probe succeeds when its slowdown sample is ≤ `readmit_ratio` ×
    /// the healthy-peer median.
    pub readmit_ratio: f64,
}

impl Default for EjectionParams {
    fn default() -> EjectionParams {
        EjectionParams {
            enabled: true,
            alpha: 0.2,
            min_samples: 32,
            eject_ratio: 2.5,
            probe_after_s: 1.0,
            probe_budget: 3,
            readmit_ratio: 1.5,
        }
    }
}

/// Builds the fleet's merged arrival stream: every tenant's seeded trace
/// over `[0, horizon_s)`, merged into one `(time, tenant)` sequence sorted
/// by time with ties broken by tenant index. Pure in its inputs.
pub fn fleet_arrivals(tenants: &[TenantSpec], horizon_s: f64) -> Vec<(f64, usize)> {
    let mut all: Vec<(f64, usize)> = Vec::new();
    for (t, spec) in tenants.iter().enumerate() {
        let trace = generate_arrivals(&spec.pattern, horizon_s, spec.arrival_seed);
        all.extend(trace.times.into_iter().map(|ts| (ts, t)));
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all
}

// ---------------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------------

/// What the router may observe about one replica.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaView {
    /// Waiting requests (the in-service request does not count).
    pub queue_len: usize,
    /// Whether a request is in service.
    pub busy: bool,
    /// Whether the replica is closed to new work (breaker open, or
    /// half-open with its probe budget spent).
    pub breaker_open: bool,
    /// Current degradation rung depth (0 = exact baseline) — the
    /// QoS-awareness input of power-of-two-choices.
    pub degradation: usize,
    /// Whether the router cannot (or will not) reach the replica: crashed,
    /// partitioned away, or ejected as a gray failure. Treated exactly
    /// like an open breaker by every policy.
    pub unreachable: bool,
}

impl ReplicaView {
    /// Whether a policy may select this replica.
    fn available(&self) -> bool {
        !self.breaker_open && !self.unreachable
    }
}

/// One routing decision: the chosen replica plus the replicas the policy
/// actually examined (meaningful for power-of-two-choices, where only the
/// sampled pair may be chosen).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteDecision {
    /// The selected replica, `None` when every breaker is open.
    pub chosen: Option<usize>,
    /// The replicas the policy considered, in increasing index order.
    pub sampled: Vec<usize>,
}

/// Routes one arrival. A pure function of `(policy, views, cursor, key)`:
/// `cursor` is the round-robin position (advanced in place), `key` the
/// per-arrival hash input of power-of-two sampling. No policy ever selects
/// a replica with an open breaker — or an unreachable one (crashed,
/// partitioned, gray-ejected) — while an available replica exists; with
/// none available the decision is `chosen: None`.
pub fn route(
    policy: RouterPolicy,
    views: &[ReplicaView],
    cursor: &mut usize,
    key: u64,
) -> RouteDecision {
    let closed: Vec<usize> = views
        .iter()
        .enumerate()
        .filter(|(_, v)| v.available())
        .map(|(i, _)| i)
        .collect();
    if closed.is_empty() {
        return RouteDecision {
            chosen: None,
            sampled: Vec::new(),
        };
    }
    match policy {
        RouterPolicy::RoundRobin => {
            let n = views.len();
            for off in 0..n {
                let i = (*cursor + off) % n;
                if views[i].available() {
                    *cursor = (i + 1) % n;
                    return RouteDecision {
                        chosen: Some(i),
                        sampled: closed,
                    };
                }
            }
            // Unreachable: `closed` is non-empty.
            RouteDecision {
                chosen: None,
                sampled: closed,
            }
        }
        RouterPolicy::JoinShortestQueue => {
            let chosen = closed
                .iter()
                .copied()
                .min_by_key(|&i| (views[i].queue_len, usize::from(views[i].busy), i));
            RouteDecision {
                chosen,
                sampled: closed,
            }
        }
        RouterPolicy::PowerOfTwoChoices => {
            let n = closed.len() as u64;
            let a = closed[(splitmix64(key) % n) as usize];
            let b = closed[(splitmix64(key ^ 0x9E37_79B9_7F4A_7C15) % n) as usize];
            let sampled = if a == b {
                vec![a]
            } else {
                vec![a.min(b), a.max(b)]
            };
            let chosen = sampled.iter().copied().min_by_key(|&i| {
                (
                    views[i].queue_len + views[i].degradation,
                    usize::from(views[i].busy),
                    i,
                )
            });
            RouteDecision { chosen, sampled }
        }
    }
}

// ---------------------------------------------------------------------------
// Typed fleet events
// ---------------------------------------------------------------------------

/// A logged fleet control-plane transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetEventKind {
    /// A replica's breaker tripped open; its queue was migrated to closed
    /// peers (work stealing on) or shed.
    BreakerTripped {
        /// The tripped replica.
        replica: usize,
        /// Consecutive failures that caused the trip.
        failures: usize,
        /// Queued requests migrated to closed replicas.
        migrated: usize,
        /// Queued requests shed (no closed replica had room).
        shed: usize,
    },
    /// A replica's breaker moved from `Open` to `HalfOpen`.
    BreakerHalfOpen {
        /// The recovering replica.
        replica: usize,
    },
    /// A replica's half-open probes all succeeded; the breaker closed.
    BreakerClosed {
        /// The recovered replica.
        replica: usize,
    },
    /// An idle replica stole the back half of the longest peer queue.
    Steal {
        /// The stealing (drained) replica.
        thief: usize,
        /// The replica stolen from.
        victim: usize,
        /// Requests moved.
        moved: usize,
    },
    /// A tenant's curve point was convicted on a replica and its promise
    /// repaired in place.
    Quarantined {
        /// The convicting replica.
        replica: usize,
        /// The lying tenant.
        tenant: usize,
        /// Curve index of the convicted point.
        rung: usize,
        /// The honest estimate written into the curve.
        repaired_qos: f64,
    },
    /// Quarantine exhausted a tenant's curve on a replica: requests for
    /// that (replica, tenant) pair now run the exact configuration.
    ExactFallback {
        /// The clamping replica.
        replica: usize,
        /// The exhausted tenant.
        tenant: usize,
    },
    /// A replica crashed: its in-flight request was killed, its queue
    /// migrated to healthy peers or shed, and a warm restart scheduled.
    ReplicaCrashed {
        /// The crashed replica.
        replica: usize,
        /// In-flight requests killed (0 or 1).
        killed: usize,
        /// Queued requests migrated to healthy replicas.
        migrated: usize,
        /// Queued requests shed as `ReplicaLost`.
        shed: usize,
    },
    /// A crashed replica warm-restarted from its checkpoint.
    ReplicaRestarted {
        /// The restarted replica.
        replica: usize,
        /// Quarantine convictions inherited from the checkpoint (summed
        /// over tenants) — the points it does *not* have to re-learn.
        inherited_quarantined: usize,
    },
    /// The router lost contact with a replica; queued requests on the far
    /// side of the partition may be lost.
    Partitioned {
        /// The unreachable replica.
        replica: usize,
        /// Queued requests lost on the wire, shed as `ReplicaLost`.
        lost: usize,
    },
    /// A partition healed; the replica is reachable again.
    PartitionHealed {
        /// The rejoined replica.
        replica: usize,
    },
    /// The router ejected a slow-but-alive replica from routing candidacy.
    GrayEjected {
        /// The ejected replica.
        replica: usize,
        /// Its slowdown EWMA over the healthy-peer median at ejection.
        slow_ratio: f64,
    },
    /// An ejected replica entered probation: a bounded number of probe
    /// requests may be routed to it again.
    GrayProbing {
        /// The probing replica.
        replica: usize,
    },
    /// Probation succeeded; the replica rejoined routing candidacy.
    GrayReadmitted {
        /// The readmitted replica.
        replica: usize,
    },
    /// A replica's ABFT-checksummed kernel caught an injected bit flip;
    /// the corrupted result was discarded before reaching the tenant.
    SdcDetected {
        /// The corrupting replica.
        replica: usize,
        /// The affected tenant.
        tenant: usize,
        /// Flipped bit position of the injected fault.
        bit: u32,
    },
    /// Verification tripped with no injected flip (checksum round-off
    /// pessimism); the good result was discarded anyway.
    SdcFalseAlarm {
        /// The replica whose check tripped.
        replica: usize,
        /// The affected tenant.
        tenant: usize,
    },
    /// A corruption-detected request was re-executed on a healthy peer.
    SdcReexecuted {
        /// The replica that produced the discarded result.
        replica: usize,
        /// The healthy replica the request was requeued on.
        target: usize,
        /// The affected tenant.
        tenant: usize,
    },
    /// Repeated corruption detections ejected the replica from routing
    /// candidacy (it re-enters via the gray probe/readmit machinery).
    SdcEjected {
        /// The ejected replica.
        replica: usize,
        /// Detection strikes at ejection.
        strikes: usize,
    },
}

/// One typed, timestamped fleet event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Simulated time of the transition, seconds.
    pub time_s: f64,
    /// Fleet-wide completions when it happened.
    pub completed: usize,
    /// The transition.
    pub kind: FleetEventKind,
}

impl FleetEvent {
    /// Compact, deterministic one-line rendering (golden-test unit).
    pub fn compact(&self) -> String {
        let body = match &self.kind {
            FleetEventKind::BreakerTripped {
                replica,
                failures,
                migrated,
                shed,
            } => format!(
                "r{replica} breaker->open failures={failures} migrated={migrated} shed={shed}"
            ),
            FleetEventKind::BreakerHalfOpen { replica } => {
                format!("r{replica} breaker->half-open")
            }
            FleetEventKind::BreakerClosed { replica } => format!("r{replica} breaker->closed"),
            FleetEventKind::Steal {
                thief,
                victim,
                moved,
            } => format!("steal r{victim}->r{thief} moved={moved}"),
            FleetEventKind::Quarantined {
                replica,
                tenant,
                rung,
                repaired_qos,
            } => format!(
                "r{replica} quarantine tenant={tenant} rung={rung} repaired={repaired_qos:.3}"
            ),
            FleetEventKind::ExactFallback { replica, tenant } => {
                format!("r{replica} exact-fallback tenant={tenant}")
            }
            FleetEventKind::ReplicaCrashed {
                replica,
                killed,
                migrated,
                shed,
            } => format!("r{replica} crashed killed={killed} migrated={migrated} shed={shed}"),
            FleetEventKind::ReplicaRestarted {
                replica,
                inherited_quarantined,
            } => format!("r{replica} restarted inherited={inherited_quarantined}"),
            FleetEventKind::Partitioned { replica, lost } => {
                format!("r{replica} partitioned lost={lost}")
            }
            FleetEventKind::PartitionHealed { replica } => format!("r{replica} partition-healed"),
            FleetEventKind::GrayEjected {
                replica,
                slow_ratio,
            } => format!("r{replica} gray-ejected ratio={slow_ratio:.2}"),
            FleetEventKind::GrayProbing { replica } => format!("r{replica} gray-probing"),
            FleetEventKind::GrayReadmitted { replica } => format!("r{replica} gray-readmitted"),
            FleetEventKind::SdcDetected {
                replica,
                tenant,
                bit,
            } => format!("r{replica} sdc-detected tenant={tenant} bit={bit}"),
            FleetEventKind::SdcFalseAlarm { replica, tenant } => {
                format!("r{replica} sdc-false-alarm tenant={tenant}")
            }
            FleetEventKind::SdcReexecuted {
                replica,
                target,
                tenant,
            } => format!("r{replica} sdc-reexec->r{target} tenant={tenant}"),
            FleetEventKind::SdcEjected { replica, strikes } => {
                format!("r{replica} sdc-ejected strikes={strikes}")
            }
        };
        format!("t={:.4} n={} {}", self.time_s, self.completed, body)
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Per-tenant accounting over the whole fleet. Counters are exact and
/// isolated: one tenant's quarantines, fallbacks and floor breaches never
/// appear in another tenant's row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Arrivals in the tenant's trace.
    pub arrivals: usize,
    /// Requests that executed to completion.
    pub admitted: usize,
    /// Completed within deadline.
    pub served_on_time: usize,
    /// Completed after deadline.
    pub served_late: usize,
    /// Executor returned a typed error.
    pub faulted: usize,
    /// Cut off by the executor watchdog.
    pub stalled: usize,
    /// Shed: chosen replica's queue at capacity.
    pub shed_queue_full: usize,
    /// Shed: deadline infeasible at admission.
    pub shed_deadline: usize,
    /// Shed: every breaker open at the door, or a breaker-trip flush found
    /// no closed replica with room.
    pub shed_breaker: usize,
    /// Shed: lost to a replica crash or partition (in-flight requests
    /// killed by a crash, crash-flush overflow, partition message loss).
    pub shed_replica_lost: usize,
    /// Canary observations across all replicas.
    pub canaries: usize,
    /// Canary misses (observed below promise − tolerance).
    pub canary_misses: usize,
    /// Canaried requests observed below the tenant's QoS floor.
    pub observed_floor_breaches: usize,
    /// Requests *planned* below the floor (selection-level breaches; zero
    /// whenever premasking + quarantine work).
    pub planned_floor_breaches: usize,
    /// Curve points quarantined for this tenant, summed over replicas.
    pub quarantined_points: usize,
    /// Replicas on which quarantine exhausted this tenant's curve.
    pub exact_fallback_replicas: usize,
    /// Corrupted results caught by ABFT verification for this tenant.
    pub sdc_detected: usize,
    /// Detected requests successfully re-executed on a healthy peer.
    pub sdc_reexecuted: usize,
    /// Injected flips served silently (below the detection floor, or the
    /// replica ran unprotected kernels).
    pub sdc_escaped: usize,
    /// Verification trips with no injected flip.
    pub sdc_false_alarm: usize,
    /// Mean latency of served (on-time + late) requests, seconds.
    pub mean_latency_s: f64,
    /// Mean planned QoS over served requests.
    pub mean_qos: f64,
}

impl TenantReport {
    /// Fraction of executed requests that met their deadline.
    pub fn on_time_rate(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.served_on_time as f64 / self.admitted as f64
        }
    }

    /// Fraction of arrivals shed (any reason).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            (self.shed_queue_full + self.shed_deadline + self.shed_breaker + self.shed_replica_lost)
                as f64
                / self.arrivals as f64
        }
    }
}

/// Per-replica accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Requests this replica executed.
    pub executions: usize,
    /// Times its breaker tripped open.
    pub breaker_trips: usize,
    /// Requests stolen *into* this replica (queue-drain steals).
    pub steals_in: usize,
    /// Requests stolen *from* this replica's queue.
    pub steals_out: usize,
    /// Requests migrated into this replica by peers' breaker trips.
    pub migrations_in: usize,
    /// Ladder escalations (more approximation).
    pub escalations: usize,
    /// Ladder de-escalations.
    pub deescalations: usize,
    /// Deepest queue observed.
    pub max_queue_depth: usize,
    /// Times this replica crashed.
    pub crashes: usize,
    /// Times the router gray-ejected this replica.
    pub gray_ejections: usize,
    /// Times this replica was partitioned away.
    pub partitions: usize,
    /// Corruption detections on this replica's results.
    pub sdc_detections: usize,
    /// Times repeated detections ejected this replica.
    pub sdc_ejections: usize,
    /// Breaker state at end of run.
    pub final_breaker: BreakerState,
}

/// Everything one fleet run produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetReport {
    /// Routing-policy name.
    pub policy: String,
    /// Replica count.
    pub replicas: usize,
    /// Disturbance-scenario name.
    pub scenario: String,
    /// Total arrivals across all tenants.
    pub arrivals: usize,
    /// Requests that executed to completion.
    pub admitted: usize,
    /// Completed within deadline.
    pub served_on_time: usize,
    /// Completed after deadline.
    pub served_late: usize,
    /// Executor faults.
    pub faulted: usize,
    /// Watchdog cutoffs.
    pub stalled: usize,
    /// Total shed (all reasons, all tenants).
    pub shed: usize,
    /// Queue-drain steal events.
    pub steal_events: usize,
    /// Breaker trips across all replicas.
    pub breaker_trips: usize,
    /// Replica crashes injected by the chaos plan.
    pub crashes: usize,
    /// Gray-failure ejections performed by the router.
    pub gray_ejections: usize,
    /// Partitions injected by the chaos plan.
    pub partitions: usize,
    /// Corrupted results caught by ABFT verification, all tenants.
    pub sdc_detected: usize,
    /// Detected requests re-executed on a healthy peer.
    pub sdc_reexecuted: usize,
    /// Injected flips served silently.
    pub sdc_escaped: usize,
    /// Verification trips with no injected flip.
    pub sdc_false_alarm: usize,
    /// Replicas ejected for repeated corruption detections (event count).
    pub sdc_ejections: usize,
    /// |arrivals − (admitted + shed)| — the request-accounting invariant.
    /// Zero means every arrival is accounted: served, faulted, stalled, or
    /// shed with a typed reason. Anything else is a bug.
    pub requests_unaccounted: usize,
    /// Mean time from a crash to the restarted replica's first completed
    /// request, seconds (0 when no crash recovered within the horizon).
    pub mean_recovery_s: f64,
    /// Mean latency of served requests, seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile latency of served requests, seconds.
    pub p99_latency_s: f64,
    /// Per-tenant accounts, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Per-replica accounts, in replica order.
    pub replica_reports: Vec<ReplicaReport>,
    /// Retained fleet events (most recent `event_limit`).
    pub events: Vec<FleetEvent>,
    /// Events dropped by the ring cap.
    pub events_evicted: usize,
}

impl FleetReport {
    /// Fraction of executed requests that met their deadline.
    pub fn on_time_rate(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.served_on_time as f64 / self.admitted as f64
        }
    }

    /// Fraction of arrivals shed.
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }

    /// Compact rendering of the whole event sequence (golden-test unit).
    pub fn event_log(&self) -> Vec<String> {
        self.events.iter().map(FleetEvent::compact).collect()
    }

    /// Serialises the report.
    pub fn to_json(&self) -> String {
        match serde_json::to_string(self) {
            Ok(s) => s,
            Err(e) => format!("{{\"error\":\"report serialisation failed: {e}\"}}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The fleet simulation
// ---------------------------------------------------------------------------

struct QueuedReq {
    tenant: usize,
    arrival_s: f64,
    deadline_s: f64,
    /// Times this request was already re-executed after a corruption
    /// detection (bounded by `SdcParams::reexec_budget`).
    reexecs: usize,
}

struct InFlight {
    tenant: usize,
    arrival_s: f64,
    deadline_s: f64,
    finish_s: f64,
    qos: f64,
    fault: bool,
    stalled: bool,
    rung: Option<usize>,
    canary: Option<f64>,
    /// Per-(replica, tenant) execution index the request ran as.
    tk: usize,
    /// Normalised slowdown of this execution (service × speedup ÷
    /// baseline) — the router's gray-detection sample.
    slow_sample: f64,
    /// Ground-truth injected bit flip, when a chaos bit-flip window was
    /// active at start and the seeded draw fired.
    flip: Option<InjectedFlip>,
    /// Corruption re-executions this request already consumed.
    reexecs: usize,
}

/// Router-side gray-failure state of one replica.
#[derive(Clone, Copy, Debug, PartialEq)]
enum EjectState {
    /// Full routing candidate.
    Healthy,
    /// Removed from candidacy; sits out until probation starts.
    Ejected { since: f64 },
    /// Probation: up to `left` more probe requests may be admitted;
    /// `successes` fast completions so far readmit at the probe budget.
    Probing { left: usize, successes: usize },
}

struct Replica {
    queue: VecDeque<QueuedReq>,
    busy: Option<InFlight>,
    breaker: BreakerState,
    consecutive_failures: usize,
    open_until: f64,
    probes_admitted: usize,
    probe_successes: usize,
    executions: usize,
    /// EWMA of the device slowdown this replica observes (1.0 = nominal).
    slow_ewma: f64,
    applied_required: f64,
    trips: usize,
    steals_in: usize,
    steals_out: usize,
    migrations_in: usize,
    escalations: usize,
    deescalations: usize,
    max_queue_depth: usize,
    /// Crashed and not yet restarted.
    down: bool,
    /// Partitioned away from the router (still executing its own queue).
    partitioned: bool,
    /// Router-side gray-failure state.
    eject: EjectState,
    /// Router-side slowdown EWMA (gray detection; separate from the
    /// ladder's `slow_ewma`, which the replica itself owns).
    router_ewma: f64,
    /// Completions since start or last restart (ejection warm-up gate).
    samples_since_up: usize,
    /// Set at crash time; cleared (into the recovery-time series) by the
    /// first completion after restart.
    recovering_since: Option<f64>,
    crashes: usize,
    gray_ejections: usize,
    partitions: usize,
    /// Requests started while a bit-flip window was active (keys the
    /// seeded flip draw; only advances inside a window).
    flip_draws: usize,
    /// Completions that consumed a false-alarm draw (only advances with a
    /// non-zero false-alarm rate).
    fa_draws: usize,
    /// Detection strikes since the replica last earned trust (readmission
    /// or restart resets it).
    sdc_strikes: usize,
    sdc_detections: usize,
    sdc_ejections: usize,
}

impl Replica {
    fn new() -> Replica {
        Replica {
            queue: VecDeque::new(),
            busy: None,
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0.0,
            probes_admitted: 0,
            probe_successes: 0,
            executions: 0,
            slow_ewma: 1.0,
            applied_required: 1.0,
            trips: 0,
            steals_in: 0,
            steals_out: 0,
            migrations_in: 0,
            escalations: 0,
            deescalations: 0,
            max_queue_depth: 0,
            down: false,
            partitioned: false,
            eject: EjectState::Healthy,
            router_ewma: 1.0,
            samples_since_up: 0,
            recovering_since: None,
            crashes: 0,
            gray_ejections: 0,
            partitions: 0,
            flip_draws: 0,
            fa_draws: 0,
            sdc_strikes: 0,
            sdc_detections: 0,
            sdc_ejections: 0,
        }
    }

    /// Whether the replica accepts new front-door work right now.
    fn open_to_arrivals(&self, probes_needed: usize) -> bool {
        match self.breaker {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => self.probes_admitted < probes_needed,
            BreakerState::Open => false,
        }
    }

    /// Whether the router can reach the replica at all (not crashed, not
    /// partitioned). A reachable replica may still be gray-ejected.
    fn reachable(&self) -> bool {
        !self.down && !self.partitioned
    }

    /// Whether routing must treat the replica as unreachable: crashed,
    /// partitioned, ejected, or probing with the probe budget spent.
    fn route_unreachable(&self) -> bool {
        !self.reachable()
            || match self.eject {
                EjectState::Healthy => false,
                EjectState::Ejected { .. } => true,
                EjectState::Probing { left, .. } => left == 0,
            }
    }

    /// Whether the replica is a fully healthy target for migrated or
    /// stolen work (reachable and not under gray suspicion).
    fn healthy_target(&self) -> bool {
        self.reachable() && self.eject == EjectState::Healthy
    }
}

#[derive(Default)]
struct TenantAccum {
    arrivals: usize,
    served_on_time: usize,
    served_late: usize,
    faulted: usize,
    stalled: usize,
    shed_queue_full: usize,
    shed_deadline: usize,
    shed_breaker: usize,
    shed_replica_lost: usize,
    planned_floor_breaches: usize,
    sdc_detected: usize,
    sdc_reexecuted: usize,
    sdc_escaped: usize,
    sdc_false_alarm: usize,
    latency_sum: f64,
    qos_sum: f64,
    served: usize,
}

struct EventLog {
    events: Vec<FleetEvent>,
    limit: usize,
    evicted: usize,
}

impl EventLog {
    fn push(&mut self, time_s: f64, completed: usize, kind: FleetEventKind) {
        self.events.push(FleetEvent {
            time_s,
            completed,
            kind,
        });
        while self.events.len() > self.limit {
            self.events.remove(0);
            self.evicted += 1;
        }
    }
}

/// A fault-free, canary-less executor used when the caller supplies fewer
/// executors than tenants.
static FALLBACK_EXECUTOR: NoFaultExecutor = NoFaultExecutor;

/// Runs the fleet simulation.
///
/// `executors[t]` decides per-request success and measures canary QoS for
/// tenant `t` (missing entries behave as fault-free, canary-less tenants);
/// `device` is the shared disturbance timeline, indexed by each replica's
/// own execution count. Never panics, whatever the specs, traces or
/// executors. The result is a pure function of the inputs — bit-identical
/// on any machine and thread count.
pub fn run_fleet(
    tenants: &[TenantSpec],
    executors: &[&dyn RequestExecutor],
    device: &DisturbedDevice,
    params: &FleetParams,
) -> FleetReport {
    let n = params.replicas.max(1);
    let m = tenants.len();
    let sp = &params.serve;
    let deadline = sp.deadline_s.max(1e-9);
    let dead_band = sp.dead_band.clamp(0.0, 10.0);
    let drain_budget = deadline * sp.drain_fraction.clamp(0.05, 1.0);
    let trip_at = sp.breaker_threshold.max(1);
    let probes_needed = sp.half_open_probes.max(1);
    let stall_bound = sp.stall_bound_s.max(1e-9);
    // Seeds the ground-truth bit-flip draws; sharing the serve seed keeps
    // the whole simulation a function of the existing parameter set.
    let flip_seed = sp.seed;

    let mut replicas: Vec<Replica> = (0..n).map(|_| Replica::new()).collect();
    // Per-(replica, tenant) state: the shipped-curve tuner, the guard, and
    // the execution counter keying canary sampling and executor calls.
    let mut tuners: Vec<Vec<RuntimeTuner>> = Vec::with_capacity(n);
    let mut guards: Vec<Vec<QosGuard>> = Vec::with_capacity(n);
    let mut texec: Vec<Vec<usize>> = vec![vec![0usize; m]; n];
    let mut log = EventLog {
        events: Vec::new(),
        limit: sp.event_limit,
        evicted: 0,
    };
    let mut completed_total = 0usize;

    for _ in 0..n {
        let mut row_t = Vec::with_capacity(m);
        let mut row_g = Vec::with_capacity(m);
        for spec in tenants {
            let mut tuner = RuntimeTuner::new(
                spec.curve.clone(),
                Policy::EnforceEachInvocation,
                1,
                spec.baseline_time_s.max(1e-12),
                sp.seed,
            );
            let mut guard = QosGuard::new(&spec.guard, &spec.curve);
            // Premask points whose shipped promise already fails the
            // tenant's floor — corrupt curves are quarantined at the door.
            for (i, p) in spec.curve.points().iter().enumerate() {
                if fails_floor(p.qos, spec.guard.qos_floor) {
                    tuner.quarantine(i);
                    guard.note_premask(i);
                }
            }
            if !spec.curve.points().is_empty() && tuner.active_len() == 0 {
                guard.note_unrecoverable(0.0, 0);
            }
            row_t.push(tuner);
            row_g.push(guard);
        }
        tuners.push(row_t);
        guards.push(row_g);
    }

    let arrivals = fleet_arrivals(tenants, params.horizon_s);
    let mut tenant_acc: Vec<TenantAccum> = (0..m).map(|_| TenantAccum::default()).collect();
    for &(_, t) in &arrivals {
        tenant_acc[t].arrivals += 1;
    }
    let mut latencies: Vec<f64> = Vec::new();
    let mut steal_events = 0usize;
    let mut rr_cursor = 0usize;

    // Starts the head-of-queue request on replica `r` if it is idle. The
    // ladder re-selects the serving tenant's configuration for the
    // replica's applied pressure first, so escalation happens before the
    // service time is drawn.
    #[allow(clippy::too_many_arguments)]
    fn start_next(
        r: usize,
        now: f64,
        replicas: &mut [Replica],
        tuners: &mut [Vec<RuntimeTuner>],
        guards: &mut [Vec<QosGuard>],
        texec: &mut [Vec<usize>],
        tenants: &[TenantSpec],
        executors: &[&dyn RequestExecutor],
        tenant_acc: &mut [TenantAccum],
        device: &DisturbedDevice,
        chaos: &ChaosPlan,
        flip_seed: u64,
        dead_band: f64,
        drain_budget: f64,
        stall_bound: f64,
    ) {
        while replicas[r].busy.is_none() {
            let Some(req) = replicas[r].queue.pop_front() else {
                return;
            };
            let t = req.tenant;
            let spec = &tenants[t];
            let rep = &mut replicas[r];
            let k = rep.executions;
            rep.executions += 1;
            let tk = texec[r][t];
            texec[r][t] += 1;

            // Ladder: required total speedup to drain the backlog within
            // the ladder's share of the deadline, from the replica's
            // observed slowdown and the serving tenant's baseline cost.
            let backlog = rep.queue.len() + 1;
            let required = (rep.slow_ewma * spec.baseline_time_s.max(1e-12) * backlog as f64
                / drain_budget)
                .max(1e-6);
            let up = required > rep.applied_required * (1.0 + dead_band);
            let down = required < rep.applied_required * (1.0 - dead_band);
            if up || down {
                rep.applied_required = required;
            }
            let tuner = &mut tuners[r][t];
            let from = tuner.current_index();
            tuner.adapt_to(rep.applied_required);
            let to = tuner.current_index();
            if to != from {
                let escalated = match (from, to) {
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => b > a,
                    (None, None) => false,
                };
                if escalated {
                    rep.escalations += 1;
                } else {
                    rep.deescalations += 1;
                }
            }

            let state = device.state_at(k);
            let speedup = tuner.current_speedup();
            let mut raw_svc =
                device.invocation_time(&state, spec.baseline_time_s.max(1e-12), speedup);
            // Gray failure: silent service-time inflation. The branch keeps
            // the chaos-free service time bit-identical to the pre-chaos
            // code path.
            let inflation = chaos.gray_inflation_at(r, now);
            if inflation != 1.0 {
                raw_svc *= inflation;
            }
            let (svc, stalled) = if raw_svc > stall_bound {
                (stall_bound, true)
            } else {
                (raw_svc, false)
            };
            let slow_sample = svc * speedup / spec.baseline_time_s.max(1e-12);
            rep.slow_ewma = 0.7 * rep.slow_ewma + 0.3 * slow_sample;
            let executor = executors.get(t).copied().unwrap_or(&FALLBACK_EXECUTOR);
            let fault = executor.execute(tk).is_err();
            let rung = tuner.current_index();
            let qos = tuner.current_point().map_or(spec.baseline_qos, |p| p.qos);
            if rung.is_some() && fails_floor(qos, spec.guard.qos_floor) {
                tenant_acc[t].planned_floor_breaches += 1;
            }
            let canary = match rung {
                Some(rg) if !stalled && !fault && guards[r][t].is_canary(tk) => tuner
                    .current_point()
                    .and_then(|p| executor.canary_qos(tk, rg, p)),
                _ => None,
            };
            // Silent corruption: inside an active bit-flip window each
            // started request consumes one seeded draw. Outside a window
            // no draw state advances, keeping chaos-free runs
            // bit-identical to the pre-SDC code path.
            let flip = match chaos.bitflip_at(r, now) {
                Some(w) => {
                    let kd = rep.flip_draws as u64;
                    rep.flip_draws += 1;
                    ChaosPlan::draw_flip(flip_seed, r, kd, &w)
                }
                None => None,
            };
            rep.busy = Some(InFlight {
                tenant: t,
                arrival_s: req.arrival_s,
                deadline_s: req.deadline_s,
                finish_s: now + svc,
                qos,
                fault,
                stalled,
                rung,
                canary,
                tk,
                slow_sample,
                flip,
                reexecs: req.reexecs,
            });
        }
    }

    // Migrates (or sheds) replica `r`'s queue after its breaker tripped or
    // it crashed. Each request goes to the least-loaded healthy replica
    // with room; with stealing off, or no such replica, it is shed — as a
    // breaker casualty (`lost == false`) or as `ReplicaLost` (`lost ==
    // true`, the crash path). Either way every request is accounted.
    #[allow(clippy::too_many_arguments)]
    fn flush_queue(
        r: usize,
        now: f64,
        steal: bool,
        lost: bool,
        queue_cap: usize,
        probes_needed: usize,
        replicas: &mut [Replica],
        tenant_acc: &mut [TenantAccum],
    ) -> (usize, usize) {
        let drained: Vec<QueuedReq> = replicas[r].queue.drain(..).collect();
        let mut migrated = 0usize;
        let mut shed = 0usize;
        let _ = now;
        for q in drained {
            let target = if steal {
                (0..replicas.len())
                    .filter(|&j| {
                        j != r
                            && replicas[j].healthy_target()
                            && replicas[j].open_to_arrivals(probes_needed)
                            && replicas[j].queue.len() < queue_cap
                    })
                    .min_by_key(|&j| (replicas[j].queue.len(), j))
            } else {
                None
            };
            match target {
                Some(j) => {
                    replicas[j].queue.push_back(q);
                    replicas[j].max_queue_depth =
                        replicas[j].max_queue_depth.max(replicas[j].queue.len());
                    replicas[j].migrations_in += 1;
                    migrated += 1;
                }
                None => {
                    if lost {
                        tenant_acc[q.tenant].shed_replica_lost += 1;
                    } else {
                        tenant_acc[q.tenant].shed_breaker += 1;
                    }
                    shed += 1;
                }
            }
        }
        (migrated, shed)
    }

    // Snapshots a replica's full control state for warm restart: breaker,
    // ladder position, slowdown EWMA, and every tenant's (possibly
    // repaired) curve, quarantine mask and guard.
    fn snapshot_replica(
        r: usize,
        now: f64,
        rep: &Replica,
        tuners_row: &[RuntimeTuner],
        guards_row: &[QosGuard],
    ) -> ReplicaCheckpoint {
        let mut cp = ReplicaCheckpoint {
            version: REPLICA_CHECKPOINT_VERSION,
            replica: r,
            crashed_at_s: now,
            applied_required: rep.applied_required,
            slow_ewma: rep.slow_ewma,
            breaker: rep.breaker,
            consecutive_failures: rep.consecutive_failures,
            open_until: rep.open_until,
            tenants: tuners_row
                .iter()
                .zip(guards_row)
                .map(|(tu, g)| TenantCheckpoint {
                    quarantined: (0..tu.curve().len())
                        .map(|ix| tu.is_quarantined(ix))
                        .collect(),
                    curve: tu.curve().clone(),
                    guard: g.clone(),
                })
                .collect(),
            fingerprint: 0,
        };
        cp.seal();
        cp
    }

    // Chaos machinery: the scripted event cursor, pending restart/heal
    // timers, per-replica crash checkpoints, and recovery timing.
    #[derive(Clone, Copy)]
    enum TimerKind {
        Restart,
        Heal,
    }
    impl TimerKind {
        fn rank(self) -> u8 {
            match self {
                TimerKind::Restart => 0,
                TimerKind::Heal => 1,
            }
        }
    }
    struct FleetTimer {
        at_s: f64,
        replica: usize,
        kind: TimerKind,
    }
    let chaos_events = params.chaos.events();
    let mut ci = 0usize; // next chaos event index
    let mut timers: Vec<FleetTimer> = Vec::new();
    let mut checkpoints: Vec<Option<ReplicaCheckpoint>> = (0..n).map(|_| None).collect();
    let mut recovery_times: Vec<f64> = Vec::new();
    let ej = params.ejection;
    let sdcp = params.sdc;

    let mut i = 0usize; // next arrival index
    loop {
        // Earliest completion across replicas (ties: lowest replica index).
        let mut next_c: Option<(f64, usize)> = None;
        for (r, rep) in replicas.iter().enumerate() {
            if let Some(b) = &rep.busy {
                let better = match next_c {
                    None => true,
                    Some((t0, _)) => b.finish_s < t0,
                };
                if better {
                    next_c = Some((b.finish_s, r));
                }
            }
        }
        // Earliest pending timer (ties: restarts before heals, then lowest
        // replica index — unique per (replica, kind) while pending, so the
        // order is total).
        let next_t: Option<usize> = (0..timers.len()).min_by(|&a, &b| {
            timers[a]
                .at_s
                .total_cmp(&timers[b].at_s)
                .then_with(|| timers[a].kind.rank().cmp(&timers[b].kind.rank()))
                .then_with(|| timers[a].replica.cmp(&timers[b].replica))
        });
        let next_k = chaos_events.get(ci).map(|e| e.at_s);
        let next_a = arrivals.get(i).copied();

        // Merge the four sources. Same-instant ties resolve completion →
        // chaos → timer → arrival (strict `<` against each later source),
        // preserving the pre-chaos `completion <= arrival` discipline.
        let mut choice: Option<(f64, u8)> = next_c.map(|(t, _)| (t, 0u8));
        for (t, class) in [
            (next_k, 1u8),
            (next_t.map(|ix| timers[ix].at_s), 2u8),
            (next_a.map(|(a, _)| a), 3u8),
        ]
        .into_iter()
        .filter_map(|(t, c)| t.map(|t| (t, c)))
        {
            let replace = match choice {
                None => true,
                Some((t0, _)) => t < t0,
            };
            if replace {
                choice = Some((t, class));
            }
        }
        let Some((now, class)) = choice else { break };

        if class == 0 {
            // --- Completion ------------------------------------------------
            let r = match next_c {
                Some((_, r)) => r,
                None => break,
            };
            let Some(b) = replicas[r].busy.take() else {
                break;
            };
            completed_total += 1;
            let t = b.tenant;
            let latency = b.finish_s - b.arrival_s;

            // --- Silent-data-corruption verdict ---------------------------
            // Ground truth from the chaos plan meets the modelled ABFT
            // sensitivity. Strictly gated: with no injected flip and a zero
            // false-alarm rate nothing below mutates any state, so
            // corruption-free runs stay bit-identical to the pre-SDC code
            // path.
            let mut sdc_tripped = false;
            if let Some(flip) = b.flip {
                if sdcp.protected && flip.bit >= sdcp.detect_bit_floor {
                    sdc_tripped = true;
                    tenant_acc[t].sdc_detected += 1;
                    replicas[r].sdc_detections += 1;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::SdcDetected {
                            replica: r,
                            tenant: t,
                            bit: flip.bit,
                        },
                    );
                } else {
                    // Below the detection floor (or unprotected kernels):
                    // the corrupted result is served silently.
                    tenant_acc[t].sdc_escaped += 1;
                }
            } else if sdcp.protected && sdcp.false_alarm_rate > 0.0 {
                let kd = replicas[r].fa_draws as u64;
                replicas[r].fa_draws += 1;
                let h = splitmix64(
                    flip_seed
                        ^ 0x5DC_FA11
                        ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ kd.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                if (h as f64) / (u64::MAX as f64) < sdcp.false_alarm_rate {
                    sdc_tripped = true;
                    tenant_acc[t].sdc_false_alarm += 1;
                    replicas[r].sdc_detections += 1;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::SdcFalseAlarm {
                            replica: r,
                            tenant: t,
                        },
                    );
                }
            }

            if sdc_tripped {
                // The discarded result reaches neither the tenant nor the
                // guard's residual window nor the breaker: a corruption
                // verdict is not evidence about promises or failure rates.
                // Re-execute on a healthy peer within budget; past it (or
                // with no peer able to take the request) it is accounted as
                // faulted, keeping the arrival-accounting invariant exact.
                let mut reexecuted = false;
                if b.reexecs < sdcp.reexec_budget {
                    let target = (0..n)
                        .filter(|&j| {
                            j != r
                                && replicas[j].healthy_target()
                                && replicas[j].open_to_arrivals(probes_needed)
                                && replicas[j].queue.len() < sp.queue_cap
                        })
                        .min_by_key(|&j| (replicas[j].queue.len(), j));
                    if let Some(j) = target {
                        replicas[j].queue.push_back(QueuedReq {
                            tenant: t,
                            arrival_s: b.arrival_s,
                            deadline_s: b.deadline_s,
                            reexecs: b.reexecs + 1,
                        });
                        replicas[j].max_queue_depth =
                            replicas[j].max_queue_depth.max(replicas[j].queue.len());
                        tenant_acc[t].sdc_reexecuted += 1;
                        log.push(
                            now,
                            completed_total,
                            FleetEventKind::SdcReexecuted {
                                replica: r,
                                target: j,
                                tenant: t,
                            },
                        );
                        reexecuted = true;
                    }
                }
                if !reexecuted {
                    tenant_acc[t].faulted += 1;
                }
                // Repeated detections hand the replica to the existing gray
                // eject → probe → readmit machinery. Never eject the last
                // healthy replica.
                replicas[r].sdc_strikes += 1;
                if ej.enabled
                    && replicas[r].sdc_strikes >= sdcp.eject_after.max(1)
                    && replicas[r].eject == EjectState::Healthy
                    && (0..n).any(|j| j != r && replicas[j].healthy_target())
                {
                    let strikes = replicas[r].sdc_strikes;
                    replicas[r].eject = EjectState::Ejected { since: now };
                    replicas[r].sdc_ejections += 1;
                    replicas[r].sdc_strikes = 0;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::SdcEjected {
                            replica: r,
                            strikes,
                        },
                    );
                }
            } else {
                let failure = if b.stalled {
                    tenant_acc[t].stalled += 1;
                    true
                } else if b.fault {
                    tenant_acc[t].faulted += 1;
                    true
                } else if b.finish_s > b.deadline_s + 1e-12 {
                    tenant_acc[t].served_late += 1;
                    tenant_acc[t].latency_sum += latency;
                    tenant_acc[t].qos_sum += b.qos;
                    tenant_acc[t].served += 1;
                    latencies.push(latency);
                    true
                } else {
                    tenant_acc[t].served_on_time += 1;
                    tenant_acc[t].latency_sum += latency;
                    tenant_acc[t].qos_sum += b.qos;
                    tenant_acc[t].served += 1;
                    latencies.push(latency);
                    false
                };

                // Per-replica breaker bookkeeping; a trip migrates the queue.
                match replicas[r].breaker {
                    BreakerState::Closed => {
                        if failure {
                            replicas[r].consecutive_failures += 1;
                            if replicas[r].consecutive_failures >= trip_at {
                                replicas[r].breaker = BreakerState::Open;
                                replicas[r].open_until = now + sp.cooldown_s.max(0.0);
                                replicas[r].trips += 1;
                                let failures = replicas[r].consecutive_failures;
                                let (migrated, shed) = flush_queue(
                                    r,
                                    now,
                                    params.steal,
                                    false,
                                    sp.queue_cap,
                                    probes_needed,
                                    &mut replicas,
                                    &mut tenant_acc,
                                );
                                log.push(
                                    now,
                                    completed_total,
                                    FleetEventKind::BreakerTripped {
                                        replica: r,
                                        failures,
                                        migrated,
                                        shed,
                                    },
                                );
                            }
                        } else {
                            replicas[r].consecutive_failures = 0;
                        }
                    }
                    BreakerState::HalfOpen => {
                        if failure {
                            replicas[r].breaker = BreakerState::Open;
                            replicas[r].open_until = now + sp.cooldown_s.max(0.0);
                            replicas[r].trips += 1;
                            replicas[r].consecutive_failures = 1;
                            let (migrated, shed) = flush_queue(
                                r,
                                now,
                                params.steal,
                                false,
                                sp.queue_cap,
                                probes_needed,
                                &mut replicas,
                                &mut tenant_acc,
                            );
                            log.push(
                                now,
                                completed_total,
                                FleetEventKind::BreakerTripped {
                                    replica: r,
                                    failures: 1,
                                    migrated,
                                    shed,
                                },
                            );
                        } else {
                            replicas[r].probe_successes += 1;
                            if replicas[r].probe_successes >= probes_needed {
                                replicas[r].breaker = BreakerState::Closed;
                                replicas[r].consecutive_failures = 0;
                                log.push(
                                    now,
                                    completed_total,
                                    FleetEventKind::BreakerClosed { replica: r },
                                );
                            }
                        }
                    }
                    BreakerState::Open => {}
                }

                // Guard: verify the canaried promise before anything re-selects.
                if !b.stalled && !b.fault {
                    if let (Some(rg), Some(obs)) = (b.rung, b.canary) {
                        let verdict = guards[r][t].observe(now, completed_total, rg, b.qos, obs);
                        if let GuardVerdict::Quarantine { rung, repaired_qos } = verdict {
                            tuners[r][t].repair_qos(rung, repaired_qos);
                            tuners[r][t].quarantine(rung);
                            log.push(
                                now,
                                completed_total,
                                FleetEventKind::Quarantined {
                                    replica: r,
                                    tenant: t,
                                    rung,
                                    repaired_qos,
                                },
                            );
                            if tuners[r][t].active_len() == 0 {
                                guards[r][t].note_unrecoverable(now, completed_total);
                                log.push(
                                    now,
                                    completed_total,
                                    FleetEventKind::ExactFallback {
                                        replica: r,
                                        tenant: t,
                                    },
                                );
                            } else {
                                let applied = replicas[r].applied_required;
                                tuners[r][t].adapt_to(applied);
                            }
                        }
                        let _ = b.tk;
                    }
                }
            }

            // Crash recovery bookkeeping: the first completion after a
            // restart closes that crash's recovery window.
            if let Some(t0) = replicas[r].recovering_since.take() {
                recovery_times.push((now - t0).max(0.0));
            }

            // Router-side gray defense: fold this completion's slowdown
            // sample into the replica's EWMA (NaN-safe), then run the
            // ejection / probation state machine against the healthy-peer
            // median. Detection is relative, so fleet-wide disturbances
            // (which slow every replica together) never eject anyone.
            if ej.enabled && n >= 2 {
                if b.slow_sample.is_finite() {
                    let alpha = ej.alpha.clamp(1e-6, 1.0);
                    let next = (1.0 - alpha) * replicas[r].router_ewma + alpha * b.slow_sample;
                    replicas[r].router_ewma = if next.is_finite() {
                        next
                    } else {
                        b.slow_sample
                    };
                    replicas[r].samples_since_up += 1;
                }
                let mut peers: Vec<f64> = (0..n)
                    .filter(|&j| j != r && replicas[j].healthy_target())
                    .map(|j| replicas[j].router_ewma)
                    .filter(|v| v.is_finite())
                    .collect();
                // Never eject the last healthy replica: with no peer to
                // compare against there is no relative signal.
                if !peers.is_empty() {
                    peers.sort_by(f64::total_cmp);
                    let median = peers[peers.len() / 2].max(1e-9);
                    match replicas[r].eject {
                        EjectState::Healthy => {
                            if replicas[r].samples_since_up >= ej.min_samples.max(1)
                                && replicas[r].router_ewma > ej.eject_ratio.max(1.0) * median
                            {
                                replicas[r].eject = EjectState::Ejected { since: now };
                                replicas[r].gray_ejections += 1;
                                log.push(
                                    now,
                                    completed_total,
                                    FleetEventKind::GrayEjected {
                                        replica: r,
                                        slow_ratio: replicas[r].router_ewma / median,
                                    },
                                );
                            }
                        }
                        EjectState::Probing { left, successes } => {
                            if b.slow_sample.is_finite() {
                                if b.slow_sample <= ej.readmit_ratio.max(1.0) * median {
                                    let s = successes + 1;
                                    if s >= ej.probe_budget.max(1) {
                                        replicas[r].eject = EjectState::Healthy;
                                        // The EWMA is contaminated by the
                                        // gray window; restart trust fresh.
                                        replicas[r].router_ewma = 1.0;
                                        replicas[r].sdc_strikes = 0;
                                        log.push(
                                            now,
                                            completed_total,
                                            FleetEventKind::GrayReadmitted { replica: r },
                                        );
                                    } else {
                                        replicas[r].eject =
                                            EjectState::Probing { left, successes: s };
                                    }
                                } else {
                                    // Failed probe: back to the bench until
                                    // the next probation round.
                                    replicas[r].eject = EjectState::Ejected { since: now };
                                }
                            }
                        }
                        EjectState::Ejected { .. } => {}
                    }
                }
            }

            // Queue drained: steal the back half of the longest reachable
            // peer queue. Only a fully healthy replica steals (never into a
            // gray or partitioned one), and never across a partition.
            if replicas[r].queue.is_empty()
                && params.steal
                && replicas[r].breaker == BreakerState::Closed
                && replicas[r].healthy_target()
            {
                let victim = (0..n)
                    .filter(|&j| j != r && replicas[j].reachable() && replicas[j].queue.len() >= 2)
                    .max_by_key(|&j| (replicas[j].queue.len(), usize::MAX - j));
                if let Some(v) = victim {
                    let vlen = replicas[v].queue.len();
                    let moved = vlen / 2;
                    let mut taken: VecDeque<QueuedReq> = replicas[v].queue.split_off(vlen - moved);
                    replicas[r].steals_in += moved;
                    replicas[v].steals_out += moved;
                    replicas[r].queue.append(&mut taken);
                    replicas[r].max_queue_depth =
                        replicas[r].max_queue_depth.max(replicas[r].queue.len());
                    steal_events += 1;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::Steal {
                            thief: r,
                            victim: v,
                            moved,
                        },
                    );
                }
            }

            start_next(
                r,
                now,
                &mut replicas,
                &mut tuners,
                &mut guards,
                &mut texec,
                tenants,
                executors,
                &mut tenant_acc,
                device,
                &params.chaos,
                flip_seed,
                dead_band,
                drain_budget,
                stall_bound,
            );
            // A breaker trip may have migrated work onto idle replicas.
            for j in 0..n {
                if !replicas[j].down && replicas[j].busy.is_none() && !replicas[j].queue.is_empty()
                {
                    start_next(
                        j,
                        now,
                        &mut replicas,
                        &mut tuners,
                        &mut guards,
                        &mut texec,
                        tenants,
                        executors,
                        &mut tenant_acc,
                        device,
                        &params.chaos,
                        flip_seed,
                        dead_band,
                        drain_budget,
                        stall_bound,
                    );
                }
            }
        } else if class == 1 {
            // --- Chaos event -----------------------------------------------
            let ev = chaos_events[ci];
            ci += 1;
            let r = ev.replica;
            if r >= n {
                continue;
            }
            match ev.kind {
                ChaosKind::Crash { restart_after_s } => {
                    if replicas[r].down {
                        continue;
                    }
                    // Checkpoint first: the warm restart resumes from the
                    // exact pre-crash control state (breaker, ladder,
                    // quarantine convictions).
                    checkpoints[r] = Some(snapshot_replica(
                        r,
                        now,
                        &replicas[r],
                        &tuners[r],
                        &guards[r],
                    ));
                    let killed = match replicas[r].busy.take() {
                        Some(victim) => {
                            tenant_acc[victim.tenant].shed_replica_lost += 1;
                            1
                        }
                        None => 0,
                    };
                    replicas[r].down = true;
                    replicas[r].crashes += 1;
                    replicas[r].recovering_since = Some(now);
                    let (migrated, shed) = flush_queue(
                        r,
                        now,
                        params.steal,
                        true,
                        sp.queue_cap,
                        probes_needed,
                        &mut replicas,
                        &mut tenant_acc,
                    );
                    timers.push(FleetTimer {
                        at_s: now + restart_after_s.max(0.0),
                        replica: r,
                        kind: TimerKind::Restart,
                    });
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::ReplicaCrashed {
                            replica: r,
                            killed,
                            migrated,
                            shed,
                        },
                    );
                    // Migrated work may have landed on idle replicas.
                    for j in 0..n {
                        if !replicas[j].down
                            && replicas[j].busy.is_none()
                            && !replicas[j].queue.is_empty()
                        {
                            start_next(
                                j,
                                now,
                                &mut replicas,
                                &mut tuners,
                                &mut guards,
                                &mut texec,
                                tenants,
                                executors,
                                &mut tenant_acc,
                                device,
                                &params.chaos,
                                flip_seed,
                                dead_band,
                                drain_budget,
                                stall_bound,
                            );
                        }
                    }
                }
                ChaosKind::Gray { .. } => {
                    // Silent by design: the inflation reaches service times
                    // through `gray_inflation_at` inside start_next; the
                    // router has to notice on its own.
                }
                ChaosKind::BitFlip { .. } => {
                    // Silent by design: corruption windows reach requests
                    // through `bitflip_at` + `draw_flip` inside start_next;
                    // only the ABFT verdict at completion is observable.
                }
                ChaosKind::Partition {
                    len_s,
                    lost_messages,
                } => {
                    if replicas[r].down || replicas[r].partitioned {
                        continue;
                    }
                    replicas[r].partitioned = true;
                    replicas[r].partitions += 1;
                    let mut lost = 0usize;
                    for _ in 0..lost_messages {
                        match replicas[r].queue.pop_back() {
                            Some(q) => {
                                tenant_acc[q.tenant].shed_replica_lost += 1;
                                lost += 1;
                            }
                            None => break,
                        }
                    }
                    timers.push(FleetTimer {
                        at_s: now + len_s,
                        replica: r,
                        kind: TimerKind::Heal,
                    });
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::Partitioned { replica: r, lost },
                    );
                }
            }
        } else if class == 2 {
            // --- Restart / heal timer --------------------------------------
            let Some(ix) = next_t else { break };
            let timer = timers.swap_remove(ix);
            let r = timer.replica;
            match timer.kind {
                TimerKind::Restart => {
                    replicas[r].down = false;
                    let mut inherited = 0usize;
                    // A checkpoint whose content fingerprint no longer
                    // matches was corrupted between crash and restart:
                    // refuse the warm restore and restart cold instead.
                    if let Some(cp) = checkpoints[r].take().filter(ReplicaCheckpoint::is_sealed) {
                        let applied = cp.applied_required;
                        {
                            let rep = &mut replicas[r];
                            rep.breaker = cp.breaker;
                            rep.consecutive_failures = cp.consecutive_failures;
                            rep.open_until = cp.open_until;
                            rep.probes_admitted = 0;
                            rep.probe_successes = 0;
                            rep.applied_required = cp.applied_required;
                            rep.slow_ewma = cp.slow_ewma;
                            rep.router_ewma = 1.0;
                            rep.samples_since_up = 0;
                            rep.sdc_strikes = 0;
                        }
                        for (t, tc) in cp.tenants.into_iter().enumerate() {
                            if t >= m {
                                break;
                            }
                            let TenantCheckpoint {
                                curve,
                                quarantined,
                                guard,
                            } = tc;
                            let spec = &tenants[t];
                            let mut tuner = RuntimeTuner::new(
                                curve,
                                Policy::EnforceEachInvocation,
                                1,
                                spec.baseline_time_s.max(1e-12),
                                sp.seed,
                            );
                            // Re-apply the convictions instead of
                            // re-learning them: the restored guard's
                            // Quarantined trust keeps `observe` from ever
                            // re-convicting these points.
                            for (ix2, &q) in quarantined.iter().enumerate() {
                                if q {
                                    tuner.quarantine(ix2);
                                    inherited += 1;
                                }
                            }
                            tuner.adapt_to(applied);
                            tuners[r][t] = tuner;
                            guards[r][t] = guard;
                        }
                    } else {
                        // No checkpoint (unreachable for scripted crashes):
                        // restart cold.
                        replicas[r].router_ewma = 1.0;
                        replicas[r].samples_since_up = 0;
                        replicas[r].sdc_strikes = 0;
                    }
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::ReplicaRestarted {
                            replica: r,
                            inherited_quarantined: inherited,
                        },
                    );
                }
                TimerKind::Heal => {
                    replicas[r].partitioned = false;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::PartitionHealed { replica: r },
                    );
                }
            }
        } else {
            // --- Arrival event ---------------------------------------------
            let Some((at, t)) = next_a else { break };
            i += 1;

            // Cooldowns elapse on arrival ticks, in replica order; crashed
            // replicas are frozen until their restart timer fires. Ejected
            // replicas whose sit-out elapsed enter probation here too.
            for (r, rep) in replicas.iter_mut().enumerate() {
                if rep.down {
                    continue;
                }
                if rep.breaker == BreakerState::Open && now >= rep.open_until {
                    rep.breaker = BreakerState::HalfOpen;
                    rep.probes_admitted = 0;
                    rep.probe_successes = 0;
                    log.push(
                        now,
                        completed_total,
                        FleetEventKind::BreakerHalfOpen { replica: r },
                    );
                }
                if let EjectState::Ejected { since } = rep.eject {
                    if ej.enabled && now >= since + ej.probe_after_s.max(0.0) {
                        rep.eject = EjectState::Probing {
                            left: ej.probe_budget.max(1),
                            successes: 0,
                        };
                        log.push(
                            now,
                            completed_total,
                            FleetEventKind::GrayProbing { replica: r },
                        );
                    }
                }
            }

            let views: Vec<ReplicaView> = replicas
                .iter()
                .enumerate()
                .map(|(r, rep)| ReplicaView {
                    queue_len: rep.queue.len(),
                    busy: rep.busy.is_some(),
                    breaker_open: !rep.open_to_arrivals(probes_needed),
                    degradation: tuners[r][t].current_index().map_or(0, |ix| ix + 1),
                    unreachable: rep.route_unreachable(),
                })
                .collect();
            let key =
                splitmix64(params.route_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let decision = route(params.policy, &views, &mut rr_cursor, key);

            let Some(r) = decision.chosen else {
                // Every breaker open: shed at the fleet door.
                tenant_acc[t].shed_breaker += 1;
                continue;
            };

            let req = QueuedReq {
                tenant: t,
                arrival_s: at,
                deadline_s: at + deadline,
                reexecs: 0,
            };
            // Replica-level admission: bounded queue, then deadline
            // feasibility under the replica's observed slowdown and the
            // queued tenants' current configurations.
            if replicas[r].queue.len() >= sp.queue_cap {
                tenant_acc[t].shed_queue_full += 1;
                continue;
            }
            let est = |tenant: usize, rep: &Replica| -> f64 {
                rep.slow_ewma * tenants[tenant].baseline_time_s.max(1e-12)
                    / tuners[r][tenant].current_speedup().max(1e-9)
            };
            let rep = &replicas[r];
            let mut wait = rep
                .busy
                .as_ref()
                .map(|b| (b.finish_s - now).max(0.0))
                .unwrap_or(0.0);
            for q in &rep.queue {
                wait += est(q.tenant, rep);
            }
            if now + wait + est(t, rep) > req.deadline_s + 1e-12 {
                tenant_acc[t].shed_deadline += 1;
                continue;
            }
            if replicas[r].breaker == BreakerState::HalfOpen {
                replicas[r].probes_admitted += 1;
            }
            // A probing (previously gray-ejected) replica spends one probe
            // slot per admitted request; at zero it leaves candidacy again
            // until its probes complete.
            if let EjectState::Probing { left, successes } = replicas[r].eject {
                if left > 0 {
                    replicas[r].eject = EjectState::Probing {
                        left: left - 1,
                        successes,
                    };
                }
            }
            replicas[r].queue.push_back(req);
            replicas[r].max_queue_depth = replicas[r].max_queue_depth.max(replicas[r].queue.len());
            start_next(
                r,
                now,
                &mut replicas,
                &mut tuners,
                &mut guards,
                &mut texec,
                tenants,
                executors,
                &mut tenant_acc,
                device,
                &params.chaos,
                flip_seed,
                dead_band,
                drain_budget,
                stall_bound,
            );
        }
    }

    // --- Finalise ----------------------------------------------------------
    latencies.sort_by(f64::total_cmp);
    let mean_latency_s = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let p99_latency_s = if latencies.is_empty() {
        0.0
    } else {
        let idx = ((latencies.len() as f64 * 0.99).ceil() as usize)
            .saturating_sub(1)
            .min(latencies.len() - 1);
        latencies[idx]
    };

    // Aggregate guard outcomes per tenant across replicas.
    let mut tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .zip(tenant_acc.iter())
        .map(|(spec, acc)| TenantReport {
            name: spec.name.clone(),
            arrivals: acc.arrivals,
            admitted: acc.served_on_time + acc.served_late + acc.faulted + acc.stalled,
            served_on_time: acc.served_on_time,
            served_late: acc.served_late,
            faulted: acc.faulted,
            stalled: acc.stalled,
            shed_queue_full: acc.shed_queue_full,
            shed_deadline: acc.shed_deadline,
            shed_breaker: acc.shed_breaker,
            shed_replica_lost: acc.shed_replica_lost,
            canaries: 0,
            canary_misses: 0,
            observed_floor_breaches: 0,
            planned_floor_breaches: acc.planned_floor_breaches,
            quarantined_points: 0,
            exact_fallback_replicas: 0,
            sdc_detected: acc.sdc_detected,
            sdc_reexecuted: acc.sdc_reexecuted,
            sdc_escaped: acc.sdc_escaped,
            sdc_false_alarm: acc.sdc_false_alarm,
            mean_latency_s: if acc.served == 0 {
                0.0
            } else {
                acc.latency_sum / acc.served as f64
            },
            mean_qos: if acc.served == 0 {
                spec.baseline_qos
            } else {
                acc.qos_sum / acc.served as f64
            },
        })
        .collect();
    for (r, row) in guards.into_iter().enumerate() {
        for (t, guard) in row.into_iter().enumerate() {
            let fell_back = guard.exact_fallback();
            let grep = guard.into_report(tuners[r][t].curve().clone());
            let tr = &mut tenant_reports[t];
            tr.canaries += grep.canaries;
            tr.canary_misses += grep.misses;
            tr.observed_floor_breaches += grep.floor_breaches;
            tr.quarantined_points += grep.quarantined.len();
            tr.exact_fallback_replicas += usize::from(fell_back);
        }
    }

    let replica_reports: Vec<ReplicaReport> = replicas
        .iter()
        .map(|rep| ReplicaReport {
            executions: rep.executions,
            breaker_trips: rep.trips,
            steals_in: rep.steals_in,
            steals_out: rep.steals_out,
            migrations_in: rep.migrations_in,
            escalations: rep.escalations,
            deescalations: rep.deescalations,
            max_queue_depth: rep.max_queue_depth,
            crashes: rep.crashes,
            gray_ejections: rep.gray_ejections,
            partitions: rep.partitions,
            sdc_detections: rep.sdc_detections,
            sdc_ejections: rep.sdc_ejections,
            final_breaker: rep.breaker,
        })
        .collect();

    let admitted: usize = tenant_reports.iter().map(|t| t.admitted).sum();
    let served_on_time: usize = tenant_reports.iter().map(|t| t.served_on_time).sum();
    let served_late: usize = tenant_reports.iter().map(|t| t.served_late).sum();
    let faulted: usize = tenant_reports.iter().map(|t| t.faulted).sum();
    let stalled: usize = tenant_reports.iter().map(|t| t.stalled).sum();
    let shed: usize = tenant_reports
        .iter()
        .map(|t| t.shed_queue_full + t.shed_deadline + t.shed_breaker + t.shed_replica_lost)
        .sum();
    let mean_recovery_s = if recovery_times.is_empty() {
        0.0
    } else {
        recovery_times.iter().sum::<f64>() / recovery_times.len() as f64
    };
    FleetReport {
        policy: params.policy.name().to_string(),
        replicas: n,
        scenario: device.scenario().name().to_string(),
        arrivals: arrivals.len(),
        admitted,
        served_on_time,
        served_late,
        faulted,
        stalled,
        shed,
        steal_events,
        breaker_trips: replica_reports.iter().map(|r| r.breaker_trips).sum(),
        crashes: replica_reports.iter().map(|r| r.crashes).sum(),
        gray_ejections: replica_reports.iter().map(|r| r.gray_ejections).sum(),
        partitions: replica_reports.iter().map(|r| r.partitions).sum(),
        sdc_detected: tenant_reports.iter().map(|t| t.sdc_detected).sum(),
        sdc_reexecuted: tenant_reports.iter().map(|t| t.sdc_reexecuted).sum(),
        sdc_escaped: tenant_reports.iter().map(|t| t.sdc_escaped).sum(),
        sdc_false_alarm: tenant_reports.iter().map(|t| t.sdc_false_alarm).sum(),
        sdc_ejections: replica_reports.iter().map(|r| r.sdc_ejections).sum(),
        requests_unaccounted: arrivals.len().abs_diff(admitted + shed),
        mean_recovery_s,
        mean_latency_s,
        p99_latency_s,
        tenants: tenant_reports,
        replica_reports,
        events: log.events,
        events_evicted: log.evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::pareto::TradeoffPoint;
    use crate::serve::ScriptedFaultExecutor;
    use at_hw::{FrequencyLadder, Scenario};

    fn curve(perfs: &[f64]) -> TradeoffCurve {
        TradeoffCurve::from_points(
            perfs
                .iter()
                .enumerate()
                .map(|(i, &perf)| TradeoffPoint {
                    qos: 98.0 - 2.0 * i as f64,
                    perf,
                    config: Config::from_knobs(vec![]),
                })
                .collect(),
        )
    }

    fn idle_device() -> DisturbedDevice {
        DisturbedDevice::tx2(Scenario::new(
            "idle",
            FrequencyLadder::tx2_gpu(),
            usize::MAX / 2,
            0,
        ))
    }

    fn tenant(name: &str, rate: f64, base: f64, seed: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            curve: curve(&[1.4, 1.8, 2.2]),
            baseline_time_s: base,
            baseline_qos: 100.0,
            pattern: TrafficPattern::Steady { rate_rps: rate },
            arrival_seed: seed,
            guard: GuardParams {
                qos_floor: 80.0,
                ..GuardParams::default()
            },
        }
    }

    #[test]
    fn merged_arrivals_are_sorted_and_deterministic() {
        let tenants = vec![tenant("a", 5.0, 0.02, 1), tenant("b", 3.0, 0.02, 2)];
        let m1 = fleet_arrivals(&tenants, 20.0);
        let m2 = fleet_arrivals(&tenants, 20.0);
        assert_eq!(m1.len(), m2.len());
        assert!(m1
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 <= w[1].1)));
        assert!(m1.iter().any(|&(_, t)| t == 0) && m1.iter().any(|&(_, t)| t == 1));
        assert!(m1
            .iter()
            .zip(m2.iter())
            .all(|(a, b)| a.0 == b.0 && a.1 == b.1));
    }

    #[test]
    fn light_load_serves_every_tenant_on_time() {
        let tenants = vec![
            tenant("a", 4.0, 0.02, 11),
            tenant("b", 3.0, 0.03, 12),
            tenant("c", 2.0, 0.04, 13),
        ];
        let execs: Vec<&dyn RequestExecutor> =
            vec![&NoFaultExecutor, &NoFaultExecutor, &NoFaultExecutor];
        let r = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 3,
                horizon_s: 30.0,
                ..FleetParams::default()
            },
        );
        assert!(r.arrivals > 100);
        assert_eq!(r.served_on_time, r.admitted, "light load is all on-time");
        assert_eq!(r.shed, 0);
        assert_eq!(r.breaker_trips, 0);
        for t in &r.tenants {
            assert_eq!(t.served_on_time, t.arrivals, "tenant {}", t.name);
            assert_eq!(t.planned_floor_breaches, 0);
            assert!((t.on_time_rate() - 1.0).abs() < 1e-12);
        }
        let execs_total: usize = r.replica_reports.iter().map(|x| x.executions).sum();
        assert_eq!(execs_total, r.admitted);
    }

    #[test]
    fn every_policy_is_deterministic_and_partitions_arrivals() {
        let tenants = vec![tenant("a", 30.0, 0.05, 3), tenant("b", 20.0, 0.02, 4)];
        for policy in RouterPolicy::ALL {
            let run = || {
                let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor, &NoFaultExecutor];
                run_fleet(
                    &tenants,
                    &execs,
                    &idle_device(),
                    &FleetParams {
                        replicas: 3,
                        policy,
                        horizon_s: 20.0,
                        serve: ServeParams {
                            deadline_s: 0.4,
                            ..ServeParams::default()
                        },
                        ..FleetParams::default()
                    },
                )
            };
            let a = run();
            let b = run();
            assert_eq!(a.to_json(), b.to_json(), "{policy:?} must be deterministic");
            let shed_sum: usize = a
                .tenants
                .iter()
                .map(|t| t.shed_queue_full + t.shed_deadline + t.shed_breaker)
                .sum();
            assert_eq!(
                a.arrivals,
                a.admitted + shed_sum,
                "{policy:?}: arrivals must partition into outcomes"
            );
            assert_eq!(a.policy, policy.name());
        }
    }

    #[test]
    fn overload_escalates_and_sheds_rather_than_serving_late() {
        // 2 replicas with combined capacity 40 rps at baseline, offered
        // 200: even the deepest rung (2.2×) cannot absorb it all, so the
        // ladder escalates and the overflow sheds at admission.
        let tenants = vec![tenant("hot", 200.0, 0.05, 5)];
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
        let r = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 2,
                horizon_s: 15.0,
                serve: ServeParams {
                    deadline_s: 0.6,
                    queue_cap: 12,
                    ..ServeParams::default()
                },
                ..FleetParams::default()
            },
        );
        let esc: usize = r.replica_reports.iter().map(|x| x.escalations).sum();
        assert!(esc >= 1, "overload must escalate the ladder");
        assert!(r.shed > 0, "overload must shed");
        assert!(
            r.on_time_rate() > 0.8,
            "admitted work stays mostly on-time: {}",
            r.on_time_rate()
        );
    }

    #[test]
    fn breaker_trips_migrate_queued_work_instead_of_shedding() {
        // One tenant, fault burst on per-(replica, tenant) execution
        // indices: replicas trip around the same window. With stealing on,
        // queued requests migrate instead of being shed.
        let exec = ScriptedFaultExecutor {
            windows: vec![(30, 4)],
        };
        let tenants = vec![tenant("a", 30.0, 0.05, 6)];
        let execs: Vec<&dyn RequestExecutor> = vec![&exec];
        let base = FleetParams {
            replicas: 2,
            horizon_s: 20.0,
            serve: ServeParams {
                deadline_s: 0.6,
                cooldown_s: 0.5,
                ..ServeParams::default()
            },
            ..FleetParams::default()
        };
        let r = run_fleet(&tenants, &execs, &idle_device(), &base);
        assert!(r.breaker_trips >= 1, "fault burst must trip a breaker");
        let migrations: usize = r.replica_reports.iter().map(|x| x.migrations_in).sum();
        let trip_events: Vec<&FleetEvent> = r
            .events
            .iter()
            .filter(|e| matches!(e.kind, FleetEventKind::BreakerTripped { .. }))
            .collect();
        assert!(!trip_events.is_empty());
        // Every replica recovers by the end of the quiet tail.
        for rep in &r.replica_reports {
            assert_eq!(rep.final_breaker, BreakerState::Closed);
        }
        // With stealing disabled the same scenario sheds what migration
        // would have saved.
        let r_nosteal = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                steal: false,
                ..base
            },
        );
        let shed_b: usize = r_nosteal.tenants.iter().map(|t| t.shed_breaker).sum();
        assert!(
            migrations > 0 || shed_b > 0,
            "a trip must either migrate or shed queued work"
        );
    }

    #[test]
    fn drained_replicas_steal_from_the_longest_queue() {
        // Round-robin over one fast and one slow tenant skews queues; the
        // fast replica drains and steals.
        let tenants = vec![tenant("slow", 14.0, 0.12, 7), tenant("fast", 14.0, 0.01, 8)];
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor, &NoFaultExecutor];
        let r = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 2,
                policy: RouterPolicy::RoundRobin,
                horizon_s: 30.0,
                serve: ServeParams {
                    deadline_s: 1.5,
                    queue_cap: 16,
                    ..ServeParams::default()
                },
                ..FleetParams::default()
            },
        );
        assert!(r.steal_events >= 1, "skewed queues must trigger stealing");
        let steals_in: usize = r.replica_reports.iter().map(|x| x.steals_in).sum();
        let steals_out: usize = r.replica_reports.iter().map(|x| x.steals_out).sum();
        assert_eq!(steals_in, steals_out, "stolen work is conserved");
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e.kind, FleetEventKind::Steal { .. })));
    }

    #[test]
    fn empty_fleet_and_missing_executors_never_panic() {
        let r = run_fleet(
            &[],
            &[],
            &idle_device(),
            &FleetParams {
                replicas: 0,
                ..FleetParams::default()
            },
        );
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.replicas, 1, "replica count clamps to 1");

        // Fewer executors than tenants: the fallback executor serves them.
        let tenants = vec![tenant("a", 5.0, 0.02, 9), tenant("b", 5.0, 0.02, 10)];
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
        let r = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 2,
                horizon_s: 10.0,
                ..FleetParams::default()
            },
        );
        assert_eq!(r.faulted, 0);
        assert!(r.admitted > 0);

        // Empty curves: the fleet serves exact-only without panicking.
        let mut bare = tenant("bare", 5.0, 0.02, 11);
        bare.curve = TradeoffCurve::default();
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
        let r = run_fleet(
            &[bare],
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 2,
                horizon_s: 10.0,
                ..FleetParams::default()
            },
        );
        assert_eq!(r.served_on_time, r.admitted);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let tenants = vec![tenant("a", 10.0, 0.03, 21)];
        let execs: Vec<&dyn RequestExecutor> = vec![&NoFaultExecutor];
        let r = run_fleet(
            &tenants,
            &execs,
            &idle_device(),
            &FleetParams {
                replicas: 2,
                horizon_s: 10.0,
                ..FleetParams::default()
            },
        );
        let json = r.to_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json(), json, "lossless roundtrip");
        assert_eq!(back.event_log(), r.event_log());
    }
}
