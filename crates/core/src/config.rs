//! Configurations: "a map Config : op → Int that assigns an approximation
//! knob value to every tensor operation in the program" (§2.1).

use crate::knobs::{KnobId, KnobRegistry, KnobSet};
use at_ir::{ApproxChoice, Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One point of the search space: a knob id per graph node.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Config {
    knobs: Vec<KnobId>,
}

impl Config {
    /// The all-baseline (exact FP32) configuration for a graph.
    pub fn baseline(graph: &Graph) -> Config {
        Config {
            knobs: vec![KnobId::BASELINE; graph.len()],
        }
    }

    /// Builds from explicit knob ids (one per node).
    pub fn from_knobs(knobs: Vec<KnobId>) -> Config {
        Config { knobs }
    }

    /// A uniformly random configuration over the allowed per-node knobs.
    pub fn random<R: Rng + ?Sized>(node_knobs: &[Vec<KnobId>], rng: &mut R) -> Config {
        Config {
            knobs: node_knobs
                .iter()
                .map(|ks| {
                    if ks.is_empty() {
                        KnobId::BASELINE
                    } else {
                        ks[rng.gen_range(0..ks.len())]
                    }
                })
                .collect(),
        }
    }

    /// The knob ids, indexed by node.
    pub fn knobs(&self) -> &[KnobId] {
        &self.knobs
    }

    /// The knob for one node.
    pub fn knob(&self, node: usize) -> KnobId {
        self.knobs.get(node).copied().unwrap_or(KnobId::BASELINE)
    }

    /// Sets the knob for one node.
    pub fn set_knob(&mut self, node: usize, id: KnobId) {
        if node < self.knobs.len() {
            self.knobs[node] = id;
        }
    }

    /// Number of nodes with a non-baseline knob.
    pub fn approximated_ops(&self) -> usize {
        self.knobs
            .iter()
            .filter(|&&k| k != KnobId::BASELINE)
            .count()
    }

    /// Decodes to per-node execution choices via the registry.
    pub fn decode(&self, registry: &KnobRegistry, graph: &Graph) -> Vec<ApproxChoice> {
        registry.decode_config(graph, &self.knobs)
    }

    /// Mutates `n_sites` random tunable nodes to random allowed knobs.
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        node_knobs: &[Vec<KnobId>],
        n_sites: usize,
        rng: &mut R,
    ) -> Config {
        let tunable: Vec<usize> = node_knobs
            .iter()
            .enumerate()
            .filter(|(_, ks)| ks.len() > 1)
            .map(|(i, _)| i)
            .collect();
        let mut next = self.clone();
        if tunable.is_empty() {
            return next;
        }
        for _ in 0..n_sites.max(1) {
            let site = tunable[rng.gen_range(0..tunable.len())];
            let ks = &node_knobs[site];
            next.knobs[site] = ks[rng.gen_range(0..ks.len())];
        }
        next
    }

    /// Histogram of non-baseline knob labels (the rows of Table 3).
    pub fn knob_histogram(&self, registry: &KnobRegistry, graph: &Graph) -> Vec<(String, usize)> {
        let mut hist: Vec<(String, usize)> = Vec::new();
        for (i, &k) in self.knobs.iter().enumerate() {
            if k == KnobId::BASELINE {
                continue;
            }
            let class = graph.node(at_ir::NodeId(i as u32)).op.class();
            let label = registry.label(class, k).to_string();
            if let Some(e) = hist.iter_mut().find(|(l, _)| *l == label) {
                e.1 += 1;
            } else {
                hist.push((label, 1));
            }
        }
        hist.sort_by_key(|e| std::cmp::Reverse(e.1));
        hist
    }

    /// Coarser histogram grouping FP16 into one bucket and dropping offsets
    /// (matches the presentation of Table 3, e.g. "perf-50%: 6, FP16: 13").
    pub fn coarse_histogram(&self, registry: &KnobRegistry, graph: &Graph) -> Vec<(String, usize)> {
        let mut hist: Vec<(String, usize)> = Vec::new();
        for (i, &k) in self.knobs.iter().enumerate() {
            if k == KnobId::BASELINE {
                continue;
            }
            let class = graph.node(at_ir::NodeId(i as u32)).op.class();
            let label = registry.label(class, k);
            let coarse = if label == "fp16" {
                "FP16".to_string()
            } else if let Some(rest) = label.strip_prefix("samp-") {
                format!("samp-{}", rest.split('-').next().unwrap_or(rest))
            } else if let Some(rest) = label.strip_prefix("perf-") {
                format!("perf-{}", rest.split('-').next().unwrap_or(rest))
            } else if label.starts_with("promise-") {
                label.to_string()
            } else if let Some(rest) = label.strip_prefix("red-") {
                format!("red-{}", rest.split('-').next().unwrap_or(rest))
            } else {
                label.to_string()
            };
            if let Some(e) = hist.iter_mut().find(|(l, _)| *l == coarse) {
                e.1 += 1;
            } else {
                hist.push((coarse, 1));
            }
        }
        hist.sort_by_key(|e| std::cmp::Reverse(e.1));
        hist
    }
}

/// Enumerates every knob assignment for a *single* node while all other
/// nodes stay at the baseline — the (op, knob) pairs profiled in Algorithm
/// 1, lines 13–15.
pub fn single_op_configs(
    graph: &Graph,
    registry: &KnobRegistry,
    set: KnobSet,
) -> Vec<(usize, KnobId)> {
    let mut pairs = Vec::new();
    for node in graph.nodes() {
        for k in registry.knobs(node.op.class(), set) {
            if k.id != KnobId::BASELINE {
                pairs.push((node.id.0 as usize, k.id));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_ir::GraphBuilder;
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .avg_pool(2, 2)
            .flatten()
            .dense(10)
            .softmax();
        b.finish().unwrap()
    }

    #[test]
    fn baseline_has_no_approx() {
        let g = graph();
        let c = Config::baseline(&g);
        assert_eq!(c.approximated_ops(), 0);
    }

    #[test]
    fn random_respects_allowed_knobs() {
        let g = graph();
        let r = KnobRegistry::new();
        let nk = r.node_knobs(&g, KnobSet::HardwareIndependent);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let c = Config::random(&nk, &mut rng);
            for (i, &k) in c.knobs().iter().enumerate() {
                assert!(nk[i].contains(&k), "node {i} got disallowed knob {k:?}");
            }
        }
    }

    #[test]
    fn mutation_changes_some_site() {
        let g = graph();
        let r = KnobRegistry::new();
        let nk = r.node_knobs(&g, KnobSet::HardwareIndependent);
        let mut rng = StdRng::seed_from_u64(3);
        let base = Config::baseline(&g);
        let mut changed = 0;
        for _ in 0..20 {
            if base.mutate(&nk, 2, &mut rng) != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "mutation almost never changed the config");
    }

    #[test]
    fn single_op_pairs_cover_all_non_baseline_knobs() {
        let g = graph();
        let r = KnobRegistry::new();
        let pairs = single_op_configs(&g, &r, KnobSet::HardwareIndependent);
        // conv:58 + relu:1 + avgpool:7 + flatten:1 + dense:4 + softmax:1 = 72
        // (58 = 66 conv knobs − 7 PROMISE − baseline; dense = fp16 + 3 lutmul).
        assert_eq!(pairs.len(), 58 + 1 + 7 + 1 + 4 + 1);
        assert!(pairs.iter().all(|&(_, k)| k != KnobId::BASELINE));
    }

    #[test]
    fn histogram_counts_knobs() {
        let g = graph();
        let r = KnobRegistry::new();
        let mut c = Config::baseline(&g);
        c.set_knob(1, KnobId(1)); // conv fp16
        c.set_knob(2, KnobId(1)); // relu fp16
        let hist = c.coarse_histogram(&r, &g);
        assert_eq!(hist, vec![("FP16".to_string(), 2)]);
    }

    #[test]
    fn decode_roundtrip_baseline() {
        let g = graph();
        let r = KnobRegistry::new();
        let choices = Config::baseline(&g).decode(&r, &g);
        assert!(choices.iter().all(|c| c.is_exact()));
    }
}
