//! Tradeoff points, Pareto sets and tradeoff curves (§2.1, Eqns 1–2).

use crate::config::Config;
use serde::{Deserialize, Serialize};

/// A tradeoff point: `(QoS, Perf, config)` (§2.1). Higher is better for
/// both coordinates (Perf is a speedup relative to the baseline).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Quality of service (e.g. classification accuracy in %, or PSNR dB).
    pub qos: f64,
    /// Performance: speedup (or energy-reduction factor) vs the baseline.
    pub perf: f64,
    /// The configuration achieving it.
    pub config: Config,
}

impl TradeoffPoint {
    /// Dominance `self ≼ other`: other has both QoS and Perf at least as
    /// high (§2.1).
    pub fn dominated_by(&self, other: &TradeoffPoint) -> bool {
        self.qos <= other.qos && self.perf <= other.perf
    }

    /// Strict dominance `self ≺ other`.
    pub fn strictly_dominated_by(&self, other: &TradeoffPoint) -> bool {
        self.dominated_by(other) && (self.qos < other.qos || self.perf < other.perf)
    }

    /// Euclidean distance in the (QoS, Perf) plane, used by the relaxed
    /// curve `PS_ε`.
    pub fn dist(&self, other: &TradeoffPoint) -> f64 {
        ((self.qos - other.qos).powi(2) + (self.perf - other.perf).powi(2)).sqrt()
    }
}

/// Eqn 1: the Pareto set of `points` — every point not strictly dominated
/// by another.
pub fn pareto_set(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| p.strictly_dominated_by(q)))
        .cloned()
        .collect()
}

/// Eqn 2: the relaxed Pareto set `PS_ε` — points within Euclidean distance
/// `eps` of some Pareto point.
pub fn pareto_set_eps(points: &[TradeoffPoint], eps: f64) -> Vec<TradeoffPoint> {
    let ps = pareto_set(points);
    points
        .iter()
        .filter(|p| ps.iter().any(|s| p.dist(s) <= eps))
        .cloned()
        .collect()
}

/// Chooses the smallest `ε` (from a coarse sweep) such that `PS_ε` retains
/// at most `max_points` configurations — the paper's per-benchmark ε
/// selection ("these distance thresholds … are computed per benchmark to
/// limit the maximum number of configurations validated and shipped",
/// §6.4). When even the strict Pareto set exceeds the budget, ε = 0 is
/// returned and callers should additionally [`cap_points`].
pub fn eps_for_budget(points: &[TradeoffPoint], max_points: usize) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    // Sweep ε downward from a generous bound until the budget holds.
    let span = points
        .iter()
        .map(|p| p.qos.abs().max(p.perf.abs()))
        .fold(0.0f64, f64::max)
        .max(1.0);
    let mut eps = span;
    for _ in 0..40 {
        if pareto_set_eps(points, eps).len() <= max_points {
            return eps;
        }
        eps *= 0.7;
    }
    0.0
}

/// Evenly subsamples `points` along the performance axis down to
/// `max_points` (keeping the endpoints), used when the Pareto set itself
/// exceeds the validation/shipping budget.
pub fn cap_points(mut points: Vec<TradeoffPoint>, max_points: usize) -> Vec<TradeoffPoint> {
    if points.len() <= max_points || max_points == 0 {
        return points;
    }
    points.sort_by(|a, b| a.perf.total_cmp(&b.perf));
    let n = points.len();
    (0..max_points)
        .map(|i| {
            let idx = if max_points == 1 {
                0
            } else {
                i * (n - 1) / (max_points - 1)
            };
            points[idx].clone()
        })
        .collect()
}

/// Sorts points into the curve invariant: *strictly* increasing
/// performance. Exact performance ties keep only the highest-QoS point —
/// the runtime's index arithmetic over the curve assumes strict ordering,
/// so the invariant is enforced where curves are built (and re-checked
/// where shipped artifacts are loaded, [`crate::ship`]). `total_cmp` keeps
/// the sort panic-free even if a NaN slips in; validation rejects it later.
fn sort_strict(mut points: Vec<TradeoffPoint>) -> Vec<TradeoffPoint> {
    points.sort_by(|a, b| a.perf.total_cmp(&b.perf).then(b.qos.total_cmp(&a.qos)));
    points.dedup_by(|a, b| a.perf == b.perf);
    points
}

/// The tradeoff curve shipped with the program binary: Pareto points
/// sorted by increasing performance, serialisable to JSON.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct TradeoffCurve {
    points: Vec<TradeoffPoint>,
}

impl TradeoffCurve {
    /// Builds a curve from arbitrary points: keeps the Pareto subset and
    /// sorts by performance.
    pub fn from_points(points: Vec<TradeoffPoint>) -> TradeoffCurve {
        TradeoffCurve {
            points: sort_strict(pareto_set(&points)),
        }
    }

    /// Builds a relaxed curve `PS_ε` (still sorted by performance; used for
    /// the development-time curve that is shipped, §2.2).
    pub fn from_points_eps(points: Vec<TradeoffPoint>, eps: f64) -> TradeoffCurve {
        TradeoffCurve {
            points: sort_strict(pareto_set_eps(&points, eps)),
        }
    }

    /// The points, sorted by increasing performance.
    pub fn points(&self) -> &[TradeoffPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The highest-performance point with `qos >= min_qos`, if any — the
    /// static pre-run selection.
    pub fn best_under_qos(&self, min_qos: f64) -> Option<&TradeoffPoint> {
        self.points
            .iter()
            .filter(|p| p.qos >= min_qos)
            .max_by(|a, b| a.perf.total_cmp(&b.perf))
    }

    /// Policy 1 (§5): the *lowest-performance* point with `perf >=
    /// target` — an `O(log |PS|)` binary search on the sorted curve. Returns
    /// the fastest point when none reaches the target.
    pub fn config_for_speedup(&self, target: f64) -> Option<&TradeoffPoint> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|p| p.perf < target);
        Some(if idx == self.points.len() {
            &self.points[self.points.len() - 1]
        } else {
            &self.points[idx]
        })
    }

    /// The two points bracketing `target` performance (below, above) for
    /// Policy 2's probabilistic mix. When the target is outside the curve's
    /// range both entries are the nearest endpoint.
    pub fn bracket(&self, target: f64) -> Option<(&TradeoffPoint, &TradeoffPoint)> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|p| p.perf < target);
        if idx == 0 {
            Some((&self.points[0], &self.points[0]))
        } else if idx == self.points.len() {
            let last = &self.points[self.points.len() - 1];
            Some((last, last))
        } else {
            Some((&self.points[idx - 1], &self.points[idx]))
        }
    }

    /// Repairs one point's QoS promise in place to an observed estimate
    /// (the run-time guard's "online curve repair", [`crate::guard`]).
    /// Performance ordering is untouched, so the curve invariant holds by
    /// construction. Rejects non-finite estimates and out-of-range indices
    /// (returns `false`) instead of poisoning the curve.
    pub fn repair_qos(&mut self, index: usize, observed_qos: f64) -> bool {
        if !observed_qos.is_finite() {
            return false;
        }
        match self.points.get_mut(index) {
            Some(p) => {
                p.qos = observed_qos;
                true
            }
            None => false,
        }
    }

    /// Serialises the curve to JSON (the artifact "shipped with the
    /// application binary").
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("curve serialises")
    }

    /// Deserialises a shipped curve.
    pub fn from_json(s: &str) -> Result<TradeoffCurve, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(qos: f64, perf: f64) -> TradeoffPoint {
        TradeoffPoint {
            qos,
            perf,
            config: Config::from_knobs(vec![]),
        }
    }

    #[test]
    fn pareto_removes_dominated() {
        let pts = vec![pt(90.0, 1.0), pt(85.0, 2.0), pt(80.0, 1.5), pt(70.0, 3.0)];
        let ps = pareto_set(&pts);
        // (80,1.5) is dominated by (85,2.0).
        assert_eq!(ps.len(), 3);
        assert!(!ps.iter().any(|p| p.qos == 80.0));
    }

    #[test]
    fn pareto_keeps_duplicates_of_frontier() {
        let pts = vec![pt(90.0, 1.0), pt(90.0, 1.0)];
        assert_eq!(pareto_set(&pts).len(), 2); // equal points don't strictly dominate
    }

    #[test]
    fn eps_relaxation_monotone() {
        let pts: Vec<_> = (0..20)
            .map(|i| pt(90.0 - i as f64, 1.0 + 0.1 * i as f64))
            .chain((0..20).map(|i| pt(89.0 - i as f64, 1.0 + 0.1 * i as f64)))
            .collect();
        let strict = pareto_set(&pts).len();
        let relaxed = pareto_set_eps(&pts, 1.0).len();
        let more_relaxed = pareto_set_eps(&pts, 5.0).len();
        assert!(strict <= relaxed && relaxed <= more_relaxed);
        assert_eq!(pareto_set_eps(&pts, 0.0).len(), strict);
    }

    #[test]
    fn eps_budget_limits_size() {
        let pts: Vec<_> = (0..500)
            .map(|i| pt(90.0 - 0.01 * i as f64, 1.0 + 0.001 * i as f64))
            .collect();
        let eps = eps_for_budget(&pts, 50);
        let kept = cap_points(pareto_set_eps(&pts, eps), 50);
        assert!(kept.len() <= 50);
        assert!(!kept.is_empty());
        // Endpoints of the perf range survive the cap.
        let perfs: Vec<f64> = kept.iter().map(|p| p.perf).collect();
        assert!((perfs[0] - 1.0).abs() < 1e-9);
        assert!((perfs.last().unwrap() - 1.499).abs() < 1e-9);
    }

    #[test]
    fn curve_sorted_and_queried() {
        let curve = TradeoffCurve::from_points(vec![
            pt(90.0, 1.0),
            pt(88.0, 1.5),
            pt(85.0, 2.0),
            pt(80.0, 2.6),
        ]);
        assert_eq!(curve.len(), 4);
        // Policy 1: need >= 1.4x → the 1.5x point.
        let p = curve.config_for_speedup(1.4).unwrap();
        assert_eq!(p.perf, 1.5);
        // Beyond the curve: fastest point.
        assert_eq!(curve.config_for_speedup(5.0).unwrap().perf, 2.6);
        // Static selection under a QoS bound.
        assert_eq!(curve.best_under_qos(84.0).unwrap().perf, 2.0);
        assert!(curve.best_under_qos(95.0).is_none());
    }

    #[test]
    fn bracket_for_policy2() {
        let curve = TradeoffCurve::from_points(vec![pt(90.0, 1.2), pt(85.0, 1.5)]);
        let (lo, hi) = curve.bracket(1.3).unwrap();
        assert_eq!((lo.perf, hi.perf), (1.2, 1.5));
        let (lo, hi) = curve.bracket(1.0).unwrap();
        assert_eq!((lo.perf, hi.perf), (1.2, 1.2));
        let (lo, hi) = curve.bracket(9.9).unwrap();
        assert_eq!((lo.perf, hi.perf), (1.5, 1.5));
    }

    #[test]
    fn json_roundtrip() {
        let curve = TradeoffCurve::from_points(vec![pt(90.0, 1.0), pt(80.0, 2.0)]);
        let json = curve.to_json();
        let back = TradeoffCurve::from_json(&json).unwrap();
        assert_eq!(back.len(), curve.len());
        assert_eq!(back.points()[0].qos, curve.points()[0].qos);
    }

    #[test]
    fn empty_curve_queries() {
        let curve = TradeoffCurve::default();
        assert!(curve.config_for_speedup(1.0).is_none());
        assert!(curve.bracket(1.0).is_none());
        assert!(curve.best_under_qos(0.0).is_none());
    }
}
