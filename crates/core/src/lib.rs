#![warn(missing_docs)]

//! # at-core — ApproxTuner: three-phase predictive approximation tuning
//!
//! The paper's primary contribution: an automatic framework for
//! accuracy-aware optimisation of tensor-based applications, structured as
//!
//! 1. **Development-time tuning** (§3, [`tuner`]): predictive approximation
//!    tuning — per-(op, knob) QoS profiles ([`profile`]) feed compositional
//!    error models Π1/Π2 ([`predict`]) and an analytical performance model
//!    ([`perf`]), which drive an OpenTuner-style ensemble search
//!    ([`search`]) to produce a relaxed Pareto tradeoff curve
//!    ([`pareto`]).
//! 2. **Install-time tuning** (§4, [`install`]): the shipped curve is
//!    refined with real device measurements; when hardware-specific knobs
//!    (PROMISE voltage levels) exist, a fresh distributed predictive-tuning
//!    round runs across simulated edge devices.
//! 3. **Run-time tuning** (§5, [`runtime`]): a sliding-window performance
//!    monitor picks configurations off the shipped curve to counteract
//!    slowdowns (e.g. DVFS low-power modes), with two selection policies.
//!    [`closed_loop`] closes that loop against `at-hw`'s disturbed device
//!    model (DVFS sweeps, thermal throttling, brownouts, load spikes,
//!    sensor dropout) with feed-forward + feedback control, graceful
//!    QoS-floor degradation and a structured adaptation report. [`serve`]
//!    lifts the same mechanism into an overload-resilient serving loop:
//!    deadline-aware admission over a bounded queue, a degradation ladder
//!    that sheds *accuracy* before it sheds requests, and a circuit
//!    breaker around execution — all deterministic and seeded. [`fleet`]
//!    scales that loop out to N replicas × M tenant models with pluggable
//!    front-door routing, per-replica breaker + per-tenant guard state,
//!    and work stealing across replica queues.
//!
//! [`knobs`] defines the integer knob registry (63 per convolution, 8 per
//! reduction, 2 per other op — §2.3); [`config`] the per-program
//! configuration type; [`qos`] the quality-of-service metrics; and
//! [`empirical`] the conventional measurement-based tuner used as the
//! paper's comparison baseline.
//!
//! Both tuners drive the search through [`evaluate`]: a batch-synchronous
//! loop in which the bandit ensemble proposes a batch of candidates per
//! round, an [`evaluate::Evaluator`] scores unseen ones concurrently
//! through a config-keyed memoisation cache, and fitness is reported back
//! in proposal order — so seeded runs are deterministic regardless of
//! thread count.
//!
//! Long campaigns are fault-tolerant: every candidate runs under a
//! [`supervise::SupervisedEvaluator`] (panic isolation, retry with bounded
//! backoff, quarantine, non-finite sanitisation), the driver checkpoints
//! its full state every N rounds ([`checkpoint`]) so a crashed run resumes
//! bit-identically, and [`fault`] provides deterministic fault injection to
//! prove all of it under test.

pub mod chaos;
pub mod checkpoint;
pub mod closed_loop;
pub mod config;
pub mod empirical;
pub mod evaluate;
pub mod fault;
pub mod fleet;
pub mod guard;
pub mod install;
pub mod knobs;
pub mod monitor;
pub mod pareto;
pub mod perf;
pub mod predict;
pub mod profile;
pub mod qos;
pub mod runtime;
pub mod search;
pub mod serve;
pub mod ship;
pub mod supervise;
pub mod tuner;

pub use chaos::{ChaosEvent, ChaosKind, ChaosPlan};
pub use checkpoint::{
    CheckpointError, CheckpointPolicy, ReplicaCheckpoint, SearchCheckpoint, TenantCheckpoint,
    CHECKPOINT_VERSION, REPLICA_CHECKPOINT_VERSION,
};
pub use closed_loop::{run_closed_loop, ClosedLoopParams, ClosedLoopReport, TraceRow};
pub use config::Config;
pub use evaluate::{AttemptEvaluator, CacheStats, Evaluation, Evaluator};
pub use fault::{FaultKind, FaultMix, FaultPlan, FaultyEvaluator};
pub use fleet::{
    fleet_arrivals, route, run_fleet, EjectionParams, FleetEvent, FleetEventKind, FleetParams,
    FleetReport, ReplicaReport, ReplicaView, RouteDecision, RouterPolicy, TenantReport, TenantSpec,
};
pub use guard::{
    CanarySampler, GuardEvent, GuardEventKind, GuardParams, GuardReport, GuardVerdict,
    MiscalibratedExecutor, PointTrust, QosGuard, ResidualWindow,
};
pub use knobs::{Knob, KnobId, KnobRegistry, KnobSet};
pub use pareto::{pareto_set, pareto_set_eps, TradeoffCurve, TradeoffPoint};
pub use qos::QosMetric;
pub use serve::{
    generate_arrivals, serve, serve_guarded, ArrivalTrace, BreakerState, GraphExecutor,
    GuardedServeReport, NoFaultExecutor, RequestExecutor, RequestOutcome, ScriptedFaultExecutor,
    ServeEvent, ServeEventKind, ServeParams, ServeReport, ShedReason, TrafficPattern,
};
pub use ship::ShippedArtifact;
pub use supervise::{EvalError, FaultStats, SupervisedEvaluator, SupervisionPolicy};
pub use tuner::{PredictiveTuner, RobustnessParams, TunerParams};
