//! Install-time tuning (§4): curve refinement with device measurements and
//! distributed predictive tuning with hardware-specific knobs.

use crate::config::Config;
use crate::knobs::{KnobRegistry, KnobSet};
use crate::pareto::{TradeoffCurve, TradeoffPoint};
use crate::perf::PerfModel;
use crate::profile::{collect_profiles, measure_config, QosProfiles};
use crate::qos::{QosMetric, QosReference};
use crate::tuner::{PredictiveTuner, TunerParams};
use at_hw::{PowerModel, TimingModel};
use at_ir::Graph;
use at_promise::PromiseModel;
use at_tensor::{Shape, Tensor, TensorError};

/// The simulated edge device: timing, accelerator and power models.
#[derive(Clone)]
pub struct EdgeDevice {
    /// Digital-unit timing model.
    pub timing: TimingModel,
    /// PROMISE accelerator model.
    pub promise: PromiseModel,
    /// Rail power model.
    pub power: PowerModel,
}

impl EdgeDevice {
    /// The paper's evaluation SoC: TX2 GPU + PROMISE.
    pub fn tx2() -> EdgeDevice {
        EdgeDevice {
            timing: TimingModel::new(at_hw::DeviceSpec::tx2_gpu()),
            promise: PromiseModel::paper(),
            power: PowerModel::tx2(),
        }
    }
}

/// What the install-time curve's performance axis measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallObjective {
    /// Execution-time speedup vs the FP32 baseline.
    Speedup,
    /// Energy-reduction factor vs the FP32 baseline (Figure 4's axis).
    EnergyReduction,
}

/// Measures a config's install-time performance value on the device.
pub fn device_perf(
    perf: &PerfModel,
    device: &EdgeDevice,
    objective: InstallObjective,
    config: &Config,
) -> f64 {
    match objective {
        InstallObjective::Speedup => perf.device_speedup(config, &device.timing, &device.promise),
        InstallObjective::EnergyReduction => {
            perf.device_energy_reduction(config, &device.timing, &device.promise, &device.power)
        }
    }
}

/// Empirical wall-clock time of one program invocation under a
/// configuration on the host CPU: the median over `reps` runs of the summed
/// per-node kernel times from [`at_ir::exec::execute_with_trace`]. This is
/// the empirical counterpart of the analytical device models — on a CPU
/// target the install-time tuner can replace predicted performance with
/// real measured kernel time (the fast tiled/SIMD kernels make the
/// approximate configs genuinely faster, not just modelled faster).
pub fn measured_cpu_time_s(
    graph: &Graph,
    registry: &KnobRegistry,
    config: &Config,
    input: &Tensor,
    reps: usize,
    promise_seed: u64,
) -> Result<f64, TensorError> {
    let opts = at_ir::ExecOptions {
        config: config.decode(registry, graph),
        promise_seed,
    };
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let (_, times) = at_ir::exec::execute_with_trace(graph, input, &opts)?;
        samples.push(times.iter().sum::<f64>());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("kernel times are finite"));
    Ok(samples[samples.len() / 2])
}

/// Install-time refinement against the *host CPU itself* as the target
/// device: each shipped configuration keeps its re-measured QoS, and its
/// performance axis becomes the measured wall-clock speedup over the
/// measured FP32 baseline (median of `reps` runs each).
#[allow(clippy::too_many_arguments)]
pub fn refine_measured_cpu(
    graph: &Graph,
    registry: &KnobRegistry,
    shipped: &TradeoffCurve,
    inputs: &[Tensor],
    metric: QosMetric,
    reference: &QosReference,
    qos_min: f64,
    reps: usize,
    promise_seed: u64,
) -> Result<TradeoffCurve, TensorError> {
    assert!(!inputs.is_empty(), "need at least one calibration input");
    let base = measured_cpu_time_s(
        graph,
        registry,
        &Config::baseline(graph),
        &inputs[0],
        reps,
        promise_seed,
    )?;
    let mut measured = Vec::new();
    for p in shipped.points() {
        let real_qos = measure_config(
            graph,
            registry,
            &p.config,
            inputs,
            metric,
            reference,
            promise_seed,
        )?;
        if real_qos > qos_min {
            let t =
                measured_cpu_time_s(graph, registry, &p.config, &inputs[0], reps, promise_seed)?;
            measured.push(TradeoffPoint {
                qos: real_qos,
                perf: if t > 0.0 { base / t } else { 1.0 },
                config: p.config.clone(),
            });
        }
    }
    Ok(TradeoffCurve::from_points(measured))
}

/// Software-only install-time refinement: runs the shipped development-time
/// curve's configurations on the device, replaces predicted performance
/// with measured performance, re-filters by measured QoS and returns the
/// strict Pareto curve `PS(S*)`.
#[allow(clippy::too_many_arguments)]
pub fn refine_software_only(
    graph: &Graph,
    registry: &KnobRegistry,
    device: &EdgeDevice,
    objective: InstallObjective,
    shipped: &TradeoffCurve,
    inputs: &[Tensor],
    metric: QosMetric,
    reference: &QosReference,
    qos_min: f64,
    input_shape: Shape,
    promise_seed: u64,
) -> Result<TradeoffCurve, TensorError> {
    let perf = PerfModel::new(graph, registry, input_shape)?;
    let mut measured = Vec::new();
    for p in shipped.points() {
        let real_qos = measure_config(
            graph,
            registry,
            &p.config,
            inputs,
            metric,
            reference,
            promise_seed,
        )?;
        if real_qos > qos_min {
            measured.push(TradeoffPoint {
                qos: real_qos,
                perf: device_perf(&perf, device, objective, &p.config),
                config: p.config.clone(),
            });
        }
    }
    Ok(TradeoffCurve::from_points(measured))
}

/// Result of a distributed install-time tuning round.
#[derive(Clone, Debug)]
pub struct InstallResult {
    /// The final device curve `PS(S*_1 ∪ … ∪ S*_n)`.
    pub curve: TradeoffCurve,
    /// Largest per-device profile-collection time (devices work in
    /// parallel), seconds.
    pub device_profile_time_s: f64,
    /// Server-side autotuning time, seconds.
    pub server_tuning_time_s: f64,
    /// Number of simulated devices that held calibration data.
    pub active_devices: usize,
}

/// Distributed predictive install-time tuning (§4, hardware-specific
/// knobs):
///
/// 1. each of `n_edge` devices collects QoS profiles on its shard of the
///    calibration inputs (simulated with scoped threads);
/// 2. the server merges the profiles (mean ΔQ, concatenated ΔT) and runs a
///    fresh predictive-tuning round over the *combined*
///    software + hardware knob space (approximation choices cannot be
///    decoupled, so the development-time curve is not reused);
/// 3. validation of the candidate configurations is sharded across the
///    devices; the server unions the surviving sets and builds the final
///    Pareto curve with device-measured performance.
#[allow(clippy::too_many_arguments)]
pub fn distributed_install_tune(
    graph: &Graph,
    registry: &KnobRegistry,
    device: &EdgeDevice,
    objective: InstallObjective,
    inputs: &[Tensor],
    metric: QosMetric,
    reference_for_shard: &dyn Fn(usize, usize) -> QosReference,
    reference_full: &QosReference,
    n_edge: usize,
    params: &TunerParams,
    input_shape: Shape,
    promise_seed: u64,
) -> Result<InstallResult, TensorError> {
    assert!(n_edge > 0);
    let params = TunerParams {
        knob_set: KnobSet::WithHardware,
        ..params.clone()
    };

    // Step 1: per-device profile collection over input shards.
    let shards: Vec<(usize, Vec<Tensor>)> = (0..n_edge)
        .map(|i| {
            (
                i,
                inputs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n_edge == i)
                    .map(|(_, b)| b.clone())
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, s)| !s.is_empty())
        .collect();
    let active_devices = shards.len();

    let collect_tensors = params.model == crate::predict::PredictionModel::Pi1;
    let mut shard_profiles: Vec<Option<QosProfiles>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|(i, shard)| {
                let reference = reference_for_shard(*i, n_edge);
                scope.spawn(move |_| {
                    collect_profiles(
                        graph,
                        registry,
                        KnobSet::WithHardware,
                        shard,
                        metric,
                        &reference,
                        collect_tensors,
                        promise_seed ^ (*i as u64),
                    )
                    .ok()
                })
            })
            .collect();
        for h in handles {
            shard_profiles.push(h.join().expect("device thread panicked"));
        }
    })
    .expect("device scope");
    let merged =
        QosProfiles::merge(shard_profiles.into_iter().flatten().collect()).ok_or_else(|| {
            TensorError::ShapeMismatch {
                op: "install::merge",
                detail: "no device produced profiles".into(),
            }
        })?;
    let device_profile_time_s = merged.collection_time_s;

    // Step 2: fresh server-side predictive tuning over software + hardware
    // knobs.
    let server_started = std::time::Instant::now();
    let tuner = PredictiveTuner {
        graph,
        registry,
        inputs,
        metric,
        reference: reference_full,
        input_shape,
        promise_seed,
    };
    let result = tuner.tune(&merged, &params)?;
    let server_tuning_time_s = server_started.elapsed().as_secs_f64();

    // Step 3: validation sharded across devices (each device validates an
    // equal fraction of the configurations on the full calibration set),
    // with device-measured performance on the install objective.
    let perf = PerfModel::new(graph, registry, input_shape)?;
    let candidate_points: Vec<&TradeoffPoint> = result.curve.points().iter().collect();
    let mut validated: Vec<TradeoffPoint> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_edge.min(candidate_points.len().max(1)))
            .map(|i| {
                let mine: Vec<&TradeoffPoint> = candidate_points
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n_edge == i)
                    .map(|(_, p)| *p)
                    .collect();
                let perf = &perf;
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    for p in mine {
                        if let Ok(q) = measure_config(
                            graph,
                            registry,
                            &p.config,
                            inputs,
                            metric,
                            reference_full,
                            promise_seed,
                        ) {
                            if q > params.qos_min {
                                out.push(TradeoffPoint {
                                    qos: q,
                                    perf: device_perf(perf, device, objective, &p.config),
                                    config: p.config.clone(),
                                });
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            validated.extend(h.join().expect("validation thread panicked"));
        }
    })
    .expect("validation scope");

    Ok(InstallResult {
        curve: TradeoffCurve::from_points(validated),
        device_profile_time_s,
        server_tuning_time_s,
        active_devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::PredictionModel;
    use at_ir::{execute, ExecOptions, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Vec<Tensor>, Vec<Vec<usize>>) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new("t", Shape::nchw(8, 2, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .max_pool(2, 2)
            .flatten()
            .dense(5)
            .softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(6);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::uniform(Shape::nchw(8, 2, 8, 8), -1.0, 1.0, &mut rng2))
            .collect();
        let mut labels = Vec::new();
        for bt in &inputs {
            let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            labels.push(
                (0..rows)
                    .map(|r| {
                        let row = &out.data()[r * c..(r + 1) * c];
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0
                    })
                    .collect::<Vec<usize>>(),
            );
        }
        (g, inputs, labels)
    }

    #[test]
    fn distributed_tuning_produces_device_curve() {
        let (g, inputs, labels) = setup();
        let registry = KnobRegistry::new();
        let device = EdgeDevice::tx2();
        let reference_full = QosReference::Labels(labels.clone());
        let labels2 = labels.clone();
        let shard_ref = move |i: usize, n: usize| {
            QosReference::Labels(
                labels2
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n == i)
                    .map(|(_, l)| l.clone())
                    .collect(),
            )
        };
        let params = TunerParams {
            qos_min: 80.0,
            n_calibrate: 4,
            max_iters: 150,
            convergence_window: 150,
            max_validated: 12,
            max_shipped: 8,
            model: PredictionModel::Pi2,
            ..Default::default()
        };
        let r = distributed_install_tune(
            &g,
            &registry,
            &device,
            InstallObjective::EnergyReduction,
            &inputs,
            QosMetric::Accuracy,
            &shard_ref,
            &reference_full,
            3,
            &params,
            inputs[0].shape(),
            0,
        )
        .unwrap();
        assert_eq!(r.active_devices, 3);
        assert!(!r.curve.is_empty(), "install-time curve empty");
        // Energy objective: best point should save energy.
        let best = r
            .curve
            .points()
            .iter()
            .map(|p| p.perf)
            .fold(1.0f64, f64::max);
        assert!(best > 1.0, "best energy reduction {best}");
    }

    #[test]
    fn more_devices_than_batches_is_fine() {
        let (g, inputs, labels) = setup();
        let registry = KnobRegistry::new();
        let device = EdgeDevice::tx2();
        let reference_full = QosReference::Labels(labels.clone());
        let labels2 = labels.clone();
        let shard_ref = move |i: usize, n: usize| {
            QosReference::Labels(
                labels2
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n == i)
                    .map(|(_, l)| l.clone())
                    .collect(),
            )
        };
        let params = TunerParams {
            qos_min: 80.0,
            n_calibrate: 0,
            calibrate: false,
            max_iters: 40,
            convergence_window: 40,
            max_validated: 6,
            max_shipped: 4,
            model: PredictionModel::Pi2,
            ..Default::default()
        };
        // 10 devices, 4 batches: 6 devices hold no data and are skipped.
        let r = distributed_install_tune(
            &g,
            &registry,
            &device,
            InstallObjective::Speedup,
            &inputs,
            QosMetric::Accuracy,
            &shard_ref,
            &reference_full,
            10,
            &params,
            inputs[0].shape(),
            0,
        )
        .unwrap();
        assert_eq!(r.active_devices, 4);
    }

    #[test]
    fn measured_cpu_time_positive_and_stable() {
        let (g, inputs, _) = setup();
        let registry = KnobRegistry::new();
        let base = Config::baseline(&g);
        let t = measured_cpu_time_s(&g, &registry, &base, &inputs[0], 3, 0).unwrap();
        assert!(t > 0.0 && t.is_finite(), "measured time {t}");
    }

    #[test]
    fn measured_cpu_refinement_builds_pareto_curve() {
        let (g, inputs, labels) = setup();
        let registry = KnobRegistry::new();
        let reference = QosReference::Labels(labels);
        // A tiny hand-built "shipped curve": baseline plus one perforated
        // conv config.
        let perf_knob = registry
            .table(at_ir::OpClass::Conv)
            .iter()
            .find(|k| k.label == "perf-50%-row-o0-fp32")
            .unwrap()
            .id;
        let mut approx = Config::baseline(&g);
        approx.set_knob(1, perf_knob);
        let shipped = TradeoffCurve::from_points(vec![
            TradeoffPoint {
                qos: 100.0,
                perf: 1.0,
                config: Config::baseline(&g),
            },
            TradeoffPoint {
                qos: 99.0,
                perf: 1.5,
                config: approx,
            },
        ]);
        let refined = refine_measured_cpu(
            &g,
            &registry,
            &shipped,
            &inputs,
            QosMetric::Accuracy,
            &reference,
            50.0,
            3,
            0,
        )
        .unwrap();
        assert!(!refined.is_empty());
        for p in refined.points() {
            assert!(p.perf > 0.0 && p.perf.is_finite());
        }
    }

    #[test]
    fn software_refinement_replaces_perf_axis() {
        let (g, inputs, labels) = setup();
        let registry = KnobRegistry::new();
        let device = EdgeDevice::tx2();
        let reference = QosReference::Labels(labels);
        // Build a small dev-time curve first.
        let tuner = PredictiveTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let params = TunerParams {
            qos_min: 80.0,
            n_calibrate: 2,
            max_iters: 80,
            convergence_window: 80,
            max_validated: 8,
            max_shipped: 6,
            model: PredictionModel::Pi2,
            ..Default::default()
        };
        let profiles = tuner.collect(&params).unwrap();
        let dev = tuner.tune(&profiles, &params).unwrap();
        assert!(!dev.curve.is_empty());
        let refined = refine_software_only(
            &g,
            &registry,
            &device,
            InstallObjective::Speedup,
            &dev.curve,
            &inputs,
            QosMetric::Accuracy,
            &reference,
            params.qos_min,
            inputs[0].shape(),
            0,
        )
        .unwrap();
        // The refined curve is a strict Pareto set.
        for (i, p) in refined.points().iter().enumerate() {
            for (j, q) in refined.points().iter().enumerate() {
                if i != j {
                    assert!(!p.strictly_dominated_by(q), "refined curve not Pareto");
                }
            }
        }
    }
}
