//! The run-time system monitor (§5).
//!
//! "The system can track various metrics (e.g., load, power, and frequency
//! variations) and provide feedback to the dynamic control, which computes
//! a target speedup (and configuration) to maintain the required level of
//! performance."
//!
//! [`SystemMonitor`] aggregates per-invocation measurements — wall time,
//! the clock the device reported, and rail power if available — into the
//! sliding-window statistics the [`crate::runtime::RuntimeTuner`] consumes,
//! and [`AdaptationLog`] records every control decision for offline
//! inspection (the data behind Figure 6's curves).

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use crate::pareto::TradeoffPoint;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One invocation's observations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InvocationSample {
    /// Wall-clock execution time, seconds.
    pub time_s: f64,
    /// Device clock during the invocation, MHz (if known).
    pub freq_mhz: Option<f64>,
    /// Average system power during the invocation, watts (if measured).
    pub power_w: Option<f64>,
}

/// Sliding-window aggregator over recent invocations.
#[derive(Clone, Debug)]
pub struct SystemMonitor {
    window: VecDeque<InvocationSample>,
    size: usize,
}

impl SystemMonitor {
    /// A monitor over the `size` most recent invocations (the paper uses a
    /// configurable window; the runtime experiments use one batch).
    pub fn new(size: usize) -> SystemMonitor {
        assert!(size > 0, "window must hold at least one invocation");
        SystemMonitor {
            window: VecDeque::with_capacity(size),
            size,
        }
    }

    /// Records one invocation.
    pub fn record(&mut self, sample: InvocationSample) {
        self.window.push_back(sample);
        if self.window.len() > self.size {
            self.window.pop_front();
        }
    }

    /// Whether the window is full (statistics are meaningful).
    pub fn warm(&self) -> bool {
        self.window.len() == self.size
    }

    /// Mean invocation time over the window, if warm.
    pub fn mean_time_s(&self) -> Option<f64> {
        if !self.warm() {
            return None;
        }
        Some(self.window.iter().map(|s| s.time_s).sum::<f64>() / self.window.len() as f64)
    }

    /// Mean power over samples that carried a power reading.
    pub fn mean_power_w(&self) -> Option<f64> {
        let (sum, n) = self
            .window
            .iter()
            .filter_map(|s| s.power_w)
            .fold((0.0, 0usize), |(a, n), p| (a + p, n + 1));
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Detected frequency change: the latest sample's clock differs from
    /// the window's oldest (a DVFS transition happened inside the window).
    pub fn frequency_shift(&self) -> Option<(f64, f64)> {
        let first = self.window.front()?.freq_mhz?;
        let last = self.window.back()?.freq_mhz?;
        if (first - last).abs() > 1e-9 {
            Some((first, last))
        } else {
            None
        }
    }

    /// Energy per invocation over the window, J (needs power readings).
    pub fn mean_energy_j(&self) -> Option<f64> {
        let t = self.mean_time_s()?;
        Some(t * self.mean_power_w()?)
    }
}

/// What kind of control decision an [`AdaptationEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Reactive reselection: the sliding-window statistics missed the
    /// target (load spikes, or any disturbance during sensor dropout).
    Feedback,
    /// Proactive reselection: the frequency sensor reported a clock change
    /// before the invocation ran (the §6.4 DVFS experiments).
    FeedForward,
    /// Graceful degradation: the required speedup exceeds every curve
    /// point, so selection clamped to the fastest point and the QoS floor
    /// is breached (never a panic).
    QosFloorBreach,
}

/// One control decision, as recorded for offline analysis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptationEvent {
    /// Invocation index at which the decision was taken.
    pub invocation: usize,
    /// Window-mean time that triggered it, seconds (for feed-forward
    /// events: the most recent observation when the sensor fired).
    pub observed_time_s: f64,
    /// The required total speedup computed by the controller.
    pub required_speedup: f64,
    /// The (qos, perf) of the selected point; None = fell back to baseline.
    pub selected: Option<(f64, f64)>,
    /// What triggered the decision.
    pub kind: EventKind,
}

/// Records the dynamic tuner's decisions.
///
/// By default the log grows without bound — fine for bounded experiments,
/// wrong for a long-running server. [`AdaptationLog::with_limit`] caps the
/// retained event window ring-buffer style: old events are evicted from the
/// front while the totals (`switches`, `breaches`) remain exact counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdaptationLog {
    events: Vec<AdaptationEvent>,
    limit: Option<usize>,
    total_switches: usize,
    total_breaches: usize,
    evicted: usize,
}

impl AdaptationLog {
    /// A fresh, unbounded log.
    pub fn new() -> AdaptationLog {
        AdaptationLog::default()
    }

    /// A log that retains at most `limit` events (ring buffer; totals keep
    /// counting past the cap). A limit of 0 keeps counters only.
    pub fn with_limit(limit: usize) -> AdaptationLog {
        AdaptationLog {
            limit: Some(limit),
            ..AdaptationLog::default()
        }
    }

    /// Appends a decision.
    pub fn push(
        &mut self,
        invocation: usize,
        observed_time_s: f64,
        required_speedup: f64,
        selected: Option<&TradeoffPoint>,
        kind: EventKind,
    ) {
        if kind == EventKind::QosFloorBreach {
            self.total_breaches += 1;
        } else {
            self.total_switches += 1;
        }
        self.events.push(AdaptationEvent {
            invocation,
            observed_time_s,
            required_speedup,
            selected: selected.map(|p| (p.qos, p.perf)),
            kind,
        });
        if let Some(limit) = self.limit {
            // Caps are small in practice; front-removal keeps Vec (the
            // vendored serde has no VecDeque support) and stays O(limit).
            while self.events.len() > limit {
                self.events.remove(0);
                self.evicted += 1;
            }
        }
    }

    /// The retained events (the most recent `limit` when capped).
    pub fn events(&self) -> &[AdaptationEvent] {
        &self.events
    }

    /// Number of events evicted by the ring-buffer cap.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Number of configuration changes recorded (breach markers are state
    /// transitions, not switches). Counts past the retention cap.
    pub fn switches(&self) -> usize {
        self.total_switches
    }

    /// Number of QoS-floor breaches recorded. Counts past the retention cap.
    pub fn breaches(&self) -> usize {
        self.total_breaches
    }

    /// Serialises the log (an artifact the fig6 harness can persist).
    /// Serialisation failure degrades to a JSON error object rather than a
    /// panic — a logging path must never take the process down.
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(s) => s,
            Err(e) => format!("{{\"error\":\"log serialisation failed: {e}\"}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64, f: f64) -> InvocationSample {
        InvocationSample {
            time_s: t,
            freq_mhz: Some(f),
            power_w: Some(5.0),
        }
    }

    #[test]
    fn window_statistics() {
        let mut m = SystemMonitor::new(3);
        m.record(s(1.0, 1300.0));
        assert!(!m.warm());
        assert_eq!(m.mean_time_s(), None);
        m.record(s(2.0, 1300.0));
        m.record(s(3.0, 1300.0));
        assert!(m.warm());
        assert_eq!(m.mean_time_s(), Some(2.0));
        assert_eq!(m.mean_power_w(), Some(5.0));
        assert_eq!(m.mean_energy_j(), Some(10.0));
        // Window slides.
        m.record(s(5.0, 1300.0));
        assert_eq!(m.mean_time_s(), Some(10.0 / 3.0));
    }

    #[test]
    fn frequency_shift_detected() {
        let mut m = SystemMonitor::new(2);
        m.record(s(1.0, 1300.0));
        m.record(s(1.4, 943.0));
        assert_eq!(m.frequency_shift(), Some((1300.0, 943.0)));
        m.record(s(1.4, 943.0));
        assert_eq!(m.frequency_shift(), None);
    }

    #[test]
    fn missing_power_handled() {
        let mut m = SystemMonitor::new(2);
        m.record(InvocationSample {
            time_s: 1.0,
            freq_mhz: None,
            power_w: None,
        });
        m.record(InvocationSample {
            time_s: 1.0,
            freq_mhz: None,
            power_w: None,
        });
        assert_eq!(m.mean_power_w(), None);
        assert_eq!(m.mean_energy_j(), None);
        assert_eq!(m.frequency_shift(), None);
    }

    #[test]
    fn log_roundtrip() {
        let mut log = AdaptationLog::new();
        log.push(10, 1.5, 1.5, None, EventKind::Feedback);
        log.push(
            20,
            1.2,
            1.2,
            Some(&TradeoffPoint {
                qos: 88.0,
                perf: 1.5,
                config: crate::config::Config::from_knobs(vec![]),
            }),
            EventKind::FeedForward,
        );
        log.push(30, 4.2, 5.0, None, EventKind::QosFloorBreach);
        assert_eq!(log.switches(), 2);
        assert_eq!(log.breaches(), 1);
        let json = log.to_json();
        let back: AdaptationLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events().len(), 3);
        assert_eq!(back.events()[1].selected, Some((88.0, 1.5)));
        assert_eq!(back.events()[1].kind, EventKind::FeedForward);
        assert_eq!(back.events()[2].kind, EventKind::QosFloorBreach);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = SystemMonitor::new(0);
    }

    #[test]
    fn capped_log_evicts_but_counts() {
        let mut log = AdaptationLog::with_limit(2);
        for i in 0..5 {
            log.push(i, 1.0, 1.0, None, EventKind::Feedback);
        }
        log.push(5, 4.0, 9.0, None, EventKind::QosFloorBreach);
        assert_eq!(log.events().len(), 2, "ring buffer holds the cap");
        assert_eq!(log.events()[1].kind, EventKind::QosFloorBreach);
        assert_eq!(log.switches(), 5, "totals count past the cap");
        assert_eq!(log.breaches(), 1);
        assert_eq!(log.evicted(), 4);
        // The capped log still serde-roundtrips.
        let back: AdaptationLog = serde_json::from_str(&log.to_json()).unwrap();
        assert_eq!(back.events().len(), 2);
        assert_eq!(back.switches(), 5);
        assert_eq!(back.evicted(), 4);
    }
}
