//! Trust-but-verify QoS guard for the run-time phase (§2.3, §5).
//!
//! The shipped tradeoff curve is a set of *promises*: "this configuration
//! loses at most so much QoS for so much speedup". The run-time phase (and
//! the serving ladder built on it, [`crate::serve`]) selects knobs by
//! believing those promises — but approximate-kernel error is strongly
//! input- and platform-dependent, so a curve calibrated at development time
//! can silently lie on the deployed device. This module closes that gap
//! with four mechanisms:
//!
//! * **Shadow canary re-execution** — a seeded, deterministic
//!   [`CanarySampler`] picks a small fraction of served requests; each
//!   canary is re-executed with the exact (knob-free) configuration through
//!   the same executor and the true per-request QoS is computed with the
//!   existing [`crate::qos`] metrics.
//! * **Per-config error accounting** — a [`ResidualWindow`] per curve point
//!   ring-buffers the observed-vs-promised QoS residuals with NaN-safe
//!   (`total_cmp`) statistics; non-finite observations are counted as
//!   *poisoned* rather than stored, so a single NaN can never corrupt the
//!   stats.
//! * **Curve quarantine + online repair** — a point whose observed loss
//!   exceeds its promise beyond a dead-banded tolerance for ≥K consecutive
//!   canaries is quarantined (removed from the
//!   [`crate::runtime::RuntimeTuner`]'s selectable range) and its QoS
//!   promise is repaired in place to the observed estimate, so the
//!   degradation ladder and closed loop immediately plan against honest
//!   numbers. Every transition is a typed, logged [`GuardEvent`], mirroring
//!   the serve breaker's state machine.
//! * **Exact-fallback safety net** — when quarantine exhausts every point
//!   at or above the QoS floor, the guard clamps to the exact configuration
//!   and emits a typed [`GuardEventKind::QosFloorUnrecoverable`] event
//!   instead of panicking or silently breaching.
//!
//! Everything is a pure function of its inputs: the sampler is a stateless
//! hash of `(seed, request index)`, so guard decisions are bit-identical
//! across machines and thread counts.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use crate::pareto::{TradeoffCurve, TradeoffPoint};
use crate::serve::RequestExecutor;
use at_tensor::TensorError;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Deterministic canary sampling
// ---------------------------------------------------------------------------

/// NaN-safe floor check: `true` when `qos` is *not* at or above `floor`,
/// so a poisoned (NaN) observation counts as failing the floor instead of
/// slipping past an ordinary `<`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn fails_floor(qos: f64, floor: f64) -> bool {
    !(qos >= floor)
}

/// SplitMix64: a high-quality stateless mixer. Used instead of a sequential
/// RNG so whether request `k` is a canary depends only on `(seed, k)` —
/// never on how many other decisions the guard has taken.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded, deterministic Bernoulli sampler over request indices.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CanarySampler {
    seed: u64,
    /// Sampled fraction, clamped to [0, 1].
    fraction: f64,
}

impl CanarySampler {
    /// A sampler that canaries roughly `fraction` of requests.
    pub fn new(seed: u64, fraction: f64) -> CanarySampler {
        CanarySampler {
            seed,
            fraction: if fraction.is_finite() {
                fraction.clamp(0.0, 1.0)
            } else {
                0.0
            },
        }
    }

    /// Whether execution `k` is shadow-canaried. Pure in `(seed, k)`.
    pub fn is_canary(&self, k: usize) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        if self.fraction >= 1.0 {
            return true;
        }
        // Map the top 53 bits to [0, 1) — exact for every f64 fraction.
        let u = (splitmix64(self.seed ^ k as u64) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.fraction
    }

    /// The configured fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

// ---------------------------------------------------------------------------
// Residual accounting
// ---------------------------------------------------------------------------

/// Ring-buffered window of observed-vs-promised QoS residuals for one curve
/// point. A residual is `promised_qos - observed_qos`: positive means the
/// config lost more QoS than it promised. Non-finite residuals are counted
/// as `poisoned` and never stored, so every statistic over the window is
/// finite by construction; ordering uses `total_cmp` as a second line of
/// defence.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResidualWindow {
    values: Vec<f64>,
    cap: usize,
    total: usize,
    poisoned: usize,
    evicted: usize,
}

impl ResidualWindow {
    /// A window retaining the `cap` most recent finite residuals (a cap of
    /// 0 keeps counters only).
    pub fn new(cap: usize) -> ResidualWindow {
        ResidualWindow {
            cap,
            ..ResidualWindow::default()
        }
    }

    /// Records one residual. Non-finite values bump `poisoned` and are
    /// dropped; finite values enter the ring.
    pub fn push(&mut self, residual: f64) {
        self.total += 1;
        if !residual.is_finite() {
            self.poisoned += 1;
            return;
        }
        self.values.push(residual);
        while self.values.len() > self.cap {
            self.values.remove(0);
            self.evicted += 1;
        }
    }

    /// Finite residuals currently retained, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Residuals recorded in total (finite and poisoned).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Non-finite residuals rejected.
    pub fn poisoned(&self) -> usize {
        self.poisoned
    }

    /// Finite residuals evicted by the ring cap.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Mean of the retained residuals (`None` when empty). Always finite.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let m = self.values.iter().sum::<f64>() / self.values.len() as f64;
        // Retained values are finite, but their sum can still overflow.
        if m.is_finite() {
            Some(m)
        } else {
            Some(self.values[self.values.len() - 1])
        }
    }

    /// Largest retained residual (worst observed lie), `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().max_by(f64::total_cmp)
    }

    /// Smallest retained residual, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().min_by(f64::total_cmp)
    }
}

// ---------------------------------------------------------------------------
// Typed events and the per-point state machine
// ---------------------------------------------------------------------------

/// Trust state of one curve point — the guard's per-config mirror of the
/// serve breaker's `Closed / HalfOpen / Open`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointTrust {
    /// No unresolved canary misses.
    Trusted,
    /// One or more consecutive canary misses; not yet convicted.
    Suspect,
    /// Convicted: removed from the selectable range for the rest of the
    /// run, promise repaired to the observed estimate.
    Quarantined,
}

/// A logged guard transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GuardEventKind {
    /// A canary observed QoS below the point's promise beyond the
    /// dead-banded tolerance (strike `strikes` of the conviction budget).
    CanaryMiss {
        /// Curve index of the lying point.
        rung: usize,
        /// Observed per-request QoS.
        observed_qos: f64,
        /// The shipped promise.
        promised_qos: f64,
        /// Consecutive misses so far.
        strikes: usize,
    },
    /// A canaried request observed QoS below the guard's floor.
    FloorBreach {
        /// Curve index serving the request.
        rung: usize,
        /// Observed per-request QoS.
        observed_qos: f64,
    },
    /// A point reached the strike budget and left the selectable range.
    Quarantined {
        /// Curve index of the convicted point.
        rung: usize,
        /// The promise it shipped with.
        promised_qos: f64,
    },
    /// The convicted point's promise was repaired in place.
    Repaired {
        /// Curve index of the repaired point.
        rung: usize,
        /// The promise before repair.
        from_qos: f64,
        /// The observed estimate written into the curve.
        to_qos: f64,
    },
    /// Quarantine exhausted every point at or above the QoS floor: the
    /// guard clamped to the exact configuration.
    QosFloorUnrecoverable {
        /// The floor that can no longer be met approximately.
        floor: f64,
    },
}

/// One typed, timestamped guard event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardEvent {
    /// Simulated time of the transition, seconds.
    pub time_s: f64,
    /// Executions completed when it happened.
    pub completed: usize,
    /// The transition.
    pub kind: GuardEventKind,
}

impl GuardEvent {
    /// Compact, deterministic one-line rendering (golden-test unit).
    pub fn compact(&self) -> String {
        let body = match &self.kind {
            GuardEventKind::CanaryMiss {
                rung,
                observed_qos,
                promised_qos,
                strikes,
            } => format!(
                "canary-miss rung={rung} obs={observed_qos:.3} promised={promised_qos:.3} strikes={strikes}"
            ),
            GuardEventKind::FloorBreach { rung, observed_qos } => {
                format!("floor-breach rung={rung} obs={observed_qos:.3}")
            }
            GuardEventKind::Quarantined { rung, promised_qos } => {
                format!("quarantine rung={rung} promised={promised_qos:.3}")
            }
            GuardEventKind::Repaired {
                rung,
                from_qos,
                to_qos,
            } => format!("repair rung={rung} {from_qos:.3}->{to_qos:.3}"),
            GuardEventKind::QosFloorUnrecoverable { floor } => {
                format!("floor-unrecoverable floor={floor:.3}")
            }
        };
        format!("t={:.4} n={} {}", self.time_s, self.completed, body)
    }
}

// ---------------------------------------------------------------------------
// Parameters, verdicts, report
// ---------------------------------------------------------------------------

/// Guard configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GuardParams {
    /// Fraction of served requests shadow-canaried (0–1).
    pub canary_fraction: f64,
    /// Seed of the deterministic canary sampler.
    pub canary_seed: u64,
    /// Dead-banded tolerance: a canary only counts as a miss when the
    /// observed QoS is below `promise - tolerance` (same unit as QoS), so
    /// measurement noise never convicts an honest point.
    pub tolerance: f64,
    /// Consecutive canary misses that convict a point.
    pub strikes_to_quarantine: usize,
    /// Ring capacity of each point's [`ResidualWindow`].
    pub residual_window: usize,
    /// The QoS floor served requests must not be planned below.
    pub qos_floor: f64,
    /// Ring-buffer cap on the retained guard-event log.
    pub event_limit: usize,
}

impl Default for GuardParams {
    fn default() -> GuardParams {
        GuardParams {
            canary_fraction: 0.05,
            canary_seed: 0xCA9A,
            tolerance: 1.0,
            strikes_to_quarantine: 3,
            residual_window: 32,
            qos_floor: 0.0,
            event_limit: 4096,
        }
    }
}

/// What the caller must do after a canary observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GuardVerdict {
    /// Within tolerance (or already convicted): nothing to do.
    Ok,
    /// Below promise but not yet at the strike budget.
    Strike,
    /// Convicted: remove `rung` from the selectable range and repair its
    /// promise to `repaired_qos`.
    Quarantine {
        /// Curve index to quarantine.
        rung: usize,
        /// Honest QoS estimate to write into the curve.
        repaired_qos: f64,
    },
}

/// Per-point account in the final report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PointAccount {
    /// Trust state at end of run.
    pub trust: PointTrust,
    /// Canary observations charged to this point.
    pub canaries: usize,
    /// Consecutive misses at end of run.
    pub strikes: usize,
    /// The residual window (observed-vs-promised stats).
    pub window: ResidualWindow,
    /// The promise the point shipped with.
    pub shipped_qos: f64,
}

/// Everything the guard did during one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GuardReport {
    /// Canary observations processed.
    pub canaries: usize,
    /// Canary misses (observed below promise − tolerance).
    pub misses: usize,
    /// Non-finite canary observations.
    pub poisoned: usize,
    /// Canaried requests that observed QoS below the floor.
    pub floor_breaches: usize,
    /// Rungs quarantined, in conviction order.
    pub quarantined: Vec<usize>,
    /// Points whose shipped promise was already below the floor and were
    /// therefore excluded from selection before serving began.
    pub premasked_below_floor: Vec<usize>,
    /// In-place promise repairs applied.
    pub repairs: usize,
    /// Whether the exact-fallback safety net engaged.
    pub exact_fallback: bool,
    /// Per-point accounts, indexed by curve rung.
    pub accounts: Vec<PointAccount>,
    /// The curve as the run ended — quarantined points carry their
    /// repaired (honest) promises, ready for the shipped-artifact
    /// round-trip ([`crate::ship::ShippedArtifact::with_repaired_curve`]).
    pub repaired_curve: TradeoffCurve,
    /// Retained guard events (most recent `event_limit`).
    pub events: Vec<GuardEvent>,
    /// Events dropped by the ring cap.
    pub events_evicted: usize,
}

impl GuardReport {
    /// Compact rendering of the whole event sequence (golden-test unit).
    pub fn event_log(&self) -> Vec<String> {
        self.events.iter().map(GuardEvent::compact).collect()
    }
}

// ---------------------------------------------------------------------------
// The guard
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Account {
    trust: PointTrust,
    canaries: usize,
    strikes: usize,
    window: ResidualWindow,
    shipped_qos: f64,
}

/// The trust-but-verify QoS guard. Owns the canary sampler, the per-point
/// error accounts and the event log; the caller (the serving loop) owns the
/// [`crate::runtime::RuntimeTuner`] and applies [`GuardVerdict`]s to it.
///
/// Serializable so a replica checkpoint can carry its guards across a
/// crash: a restored guard keeps its convictions (a `Quarantined` point
/// stays quarantined — `observe` short-circuits on it), its strike
/// counters, and its canary cursor state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QosGuard {
    params: GuardParams,
    sampler: CanarySampler,
    accounts: Vec<Account>,
    quarantined: Vec<usize>,
    events: Vec<GuardEvent>,
    events_evicted: usize,
    canaries: usize,
    misses: usize,
    poisoned: usize,
    floor_breaches: usize,
    repairs: usize,
    premasked: Vec<usize>,
    exact_fallback: bool,
}

impl QosGuard {
    /// A guard over a shipped curve's promises.
    pub fn new(params: &GuardParams, curve: &TradeoffCurve) -> QosGuard {
        let accounts = curve
            .points()
            .iter()
            .map(|p| Account {
                trust: PointTrust::Trusted,
                canaries: 0,
                strikes: 0,
                window: ResidualWindow::new(params.residual_window.max(1)),
                shipped_qos: p.qos,
            })
            .collect();
        QosGuard {
            sampler: CanarySampler::new(params.canary_seed, params.canary_fraction),
            params: params.clone(),
            accounts,
            quarantined: Vec::new(),
            events: Vec::new(),
            events_evicted: 0,
            canaries: 0,
            misses: 0,
            poisoned: 0,
            floor_breaches: 0,
            repairs: 0,
            premasked: Vec::new(),
            exact_fallback: false,
        }
    }

    /// Whether execution `k` should be shadow-canaried.
    pub fn is_canary(&self, k: usize) -> bool {
        self.sampler.is_canary(k)
    }

    /// The configured parameters.
    pub fn params(&self) -> &GuardParams {
        &self.params
    }

    /// Rungs convicted so far, in order.
    pub fn quarantined(&self) -> &[usize] {
        &self.quarantined
    }

    /// Records that `rung` was excluded from selection before serving
    /// because its shipped promise was already below the QoS floor.
    pub fn note_premask(&mut self, rung: usize) {
        self.premasked.push(rung);
    }

    /// Whether the exact-fallback safety net has engaged.
    pub fn exact_fallback(&self) -> bool {
        self.exact_fallback
    }

    /// Marks the run unrecoverable: quarantine exhausted every point at or
    /// above the floor, so the caller clamped to the exact configuration.
    /// Idempotent; logs one typed event.
    pub fn note_unrecoverable(&mut self, time_s: f64, completed: usize) {
        if self.exact_fallback {
            return;
        }
        self.exact_fallback = true;
        self.push_event(
            time_s,
            completed,
            GuardEventKind::QosFloorUnrecoverable {
                floor: self.params.qos_floor,
            },
        );
    }

    /// Processes one canary observation for the request served on `rung`
    /// with the shipped promise `promised_qos`. `observed_qos` is the true
    /// per-request QoS from shadow re-execution (non-finite = poisoned
    /// measurement, treated as a violation). Returns the action the caller
    /// must apply to its tuner.
    pub fn observe(
        &mut self,
        time_s: f64,
        completed: usize,
        rung: usize,
        promised_qos: f64,
        observed_qos: f64,
    ) -> GuardVerdict {
        let strikes_needed = self.params.strikes_to_quarantine.max(1);
        let tolerance = self.params.tolerance.max(0.0);
        let floor = self.params.qos_floor;
        let (was_quarantined, strikes) = {
            let Some(acct) = self.accounts.get_mut(rung) else {
                return GuardVerdict::Ok;
            };
            acct.canaries += 1;
            acct.window.push(promised_qos - observed_qos);
            (acct.trust == PointTrust::Quarantined, acct.strikes)
        };
        self.canaries += 1;
        if !observed_qos.is_finite() {
            self.poisoned += 1;
        }

        // Floor accounting: a NaN observation is *not* at or above the
        // floor, so [`fails_floor`] counts it as a breach.
        if fails_floor(observed_qos, floor) {
            self.floor_breaches += 1;
            self.push_event(
                time_s,
                completed,
                GuardEventKind::FloorBreach { rung, observed_qos },
            );
        }

        if was_quarantined {
            // A convicted point can still drain already-started requests;
            // nothing further to decide.
            return GuardVerdict::Ok;
        }

        // Dead-banded comparator, NaN-safe: a poisoned observation fails
        // the `>=` and counts as a miss.
        let honest = observed_qos >= promised_qos - tolerance;
        if honest {
            if let Some(acct) = self.accounts.get_mut(rung) {
                acct.strikes = 0;
                acct.trust = PointTrust::Trusted;
            }
            return GuardVerdict::Ok;
        }

        self.misses += 1;
        let strikes = strikes + 1;
        if let Some(acct) = self.accounts.get_mut(rung) {
            acct.strikes = strikes;
            acct.trust = PointTrust::Suspect;
        }
        self.push_event(
            time_s,
            completed,
            GuardEventKind::CanaryMiss {
                rung,
                observed_qos,
                promised_qos,
                strikes,
            },
        );
        if strikes < strikes_needed {
            return GuardVerdict::Strike;
        }

        // Conviction: quarantine and repair to the observed estimate. The
        // estimate is the windowed mean residual subtracted from the
        // promise; with no finite observation at all (every canary
        // poisoned) the point is marked just below the floor — finite, and
        // honest about being unusable.
        let mean_residual = {
            let Some(acct) = self.accounts.get_mut(rung) else {
                return GuardVerdict::Ok;
            };
            acct.trust = PointTrust::Quarantined;
            acct.window.mean()
        };
        // The "unusable" sentinel sits below the floor; with a non-finite
        // floor that expression overflows, so it bottoms out at the most
        // negative finite QoS.
        let unusable = {
            let u = floor - tolerance - 1.0;
            if u.is_finite() {
                u
            } else {
                -f64::MAX
            }
        };
        let repaired_qos = match mean_residual {
            Some(mean_residual) => promised_qos - mean_residual,
            None => unusable,
        };
        let repaired_qos = if repaired_qos.is_finite() {
            repaired_qos
        } else {
            unusable
        };
        self.quarantined.push(rung);
        self.repairs += 1;
        self.push_event(
            time_s,
            completed,
            GuardEventKind::Quarantined { rung, promised_qos },
        );
        self.push_event(
            time_s,
            completed,
            GuardEventKind::Repaired {
                rung,
                from_qos: promised_qos,
                to_qos: repaired_qos,
            },
        );
        GuardVerdict::Quarantine { rung, repaired_qos }
    }

    fn push_event(&mut self, time_s: f64, completed: usize, kind: GuardEventKind) {
        self.events.push(GuardEvent {
            time_s,
            completed,
            kind,
        });
        while self.events.len() > self.params.event_limit {
            self.events.remove(0);
            self.events_evicted += 1;
        }
    }

    /// Finalises the guard into its report. `repaired_curve` is the curve
    /// the run ended with (promises repaired in place by the caller's
    /// tuner).
    pub fn into_report(self, repaired_curve: TradeoffCurve) -> GuardReport {
        GuardReport {
            canaries: self.canaries,
            misses: self.misses,
            poisoned: self.poisoned,
            floor_breaches: self.floor_breaches,
            quarantined: self.quarantined,
            premasked_below_floor: self.premasked,
            repairs: self.repairs,
            exact_fallback: self.exact_fallback,
            accounts: self
                .accounts
                .into_iter()
                .map(|a| PointAccount {
                    trust: a.trust,
                    canaries: a.canaries,
                    strikes: a.strikes,
                    window: a.window,
                    shipped_qos: a.shipped_qos,
                })
                .collect(),
            repaired_curve,
            events: self.events,
            events_evicted: self.events_evicted,
        }
    }
}

// ---------------------------------------------------------------------------
// Miscalibration injection
// ---------------------------------------------------------------------------

/// A simulation executor whose *honest* per-rung QoS differs from the
/// curve's promises — the guard experiments' tool for injecting curve
/// miscalibration on cue. `execute` always succeeds; a canary on rung `r`
/// observes `honest_qos[r]` plus a deterministic, per-request jitter in
/// `±jitter` (a pure [`splitmix64`] function of `(seed, k, r)`, so runs are
/// bit-identical on any thread count).
pub struct MiscalibratedExecutor {
    /// True QoS delivered by each curve rung.
    pub honest_qos: Vec<f64>,
    /// Amplitude of the deterministic per-request observation noise.
    pub jitter: f64,
    /// Seed of the jitter hash.
    pub seed: u64,
}

impl RequestExecutor for MiscalibratedExecutor {
    fn execute(&self, _k: usize) -> Result<(), TensorError> {
        Ok(())
    }

    fn canary_qos(&self, k: usize, rung: usize, _point: &TradeoffPoint) -> Option<f64> {
        let honest = self.honest_qos.get(rung).copied()?;
        let h = splitmix64(
            self.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((rung as u64) << 48),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        Some(honest + (2.0 * u - 1.0) * self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn curve(qos: &[f64]) -> TradeoffCurve {
        TradeoffCurve::from_points(
            qos.iter()
                .enumerate()
                .map(|(i, &q)| TradeoffPoint {
                    qos: q,
                    perf: 1.2 + 0.3 * i as f64,
                    config: Config::from_knobs(vec![]),
                })
                .collect(),
        )
    }

    #[test]
    fn sampler_is_deterministic_and_tracks_fraction() {
        let s = CanarySampler::new(7, 0.25);
        let picks: Vec<bool> = (0..10_000).map(|k| s.is_canary(k)).collect();
        let again: Vec<bool> = (0..10_000).map(|k| s.is_canary(k)).collect();
        assert_eq!(
            picks, again,
            "sampling must be a pure function of (seed, k)"
        );
        let frac = picks.iter().filter(|&&b| b).count() as f64 / picks.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed fraction {frac}");
        // Different seeds decorrelate.
        let other = CanarySampler::new(8, 0.25);
        assert!((0..10_000).any(|k| s.is_canary(k) != other.is_canary(k)));
        // Degenerate fractions.
        assert!(!CanarySampler::new(1, 0.0).is_canary(3));
        assert!(CanarySampler::new(1, 1.0).is_canary(3));
        assert!(!CanarySampler::new(1, f64::NAN).is_canary(3));
    }

    #[test]
    fn residual_window_rings_and_rejects_poison() {
        let mut w = ResidualWindow::new(3);
        for v in [1.0, 2.0, f64::NAN, 3.0, f64::INFINITY, 4.0] {
            w.push(v);
        }
        assert_eq!(w.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(w.total(), 6);
        assert_eq!(w.poisoned(), 2);
        assert_eq!(w.evicted(), 1);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.max(), Some(4.0));
        assert_eq!(w.min(), Some(2.0));
        // Serde roundtrip.
        let json = serde_json::to_string(&w).unwrap();
        let back: ResidualWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.values(), w.values());
        assert_eq!(back.poisoned(), w.poisoned());
    }

    #[test]
    fn honest_canaries_never_convict() {
        let c = curve(&[98.0, 96.0, 94.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                tolerance: 1.0,
                qos_floor: 90.0,
                ..GuardParams::default()
            },
            &c,
        );
        for k in 0..100 {
            // Observed within the dead band of the promise.
            let v = g.observe(k as f64, k, 1, 96.0, 95.5);
            assert_eq!(v, GuardVerdict::Ok);
        }
        let r = g.into_report(c);
        assert_eq!(r.misses, 0);
        assert!(r.quarantined.is_empty());
        assert_eq!(r.floor_breaches, 0);
        assert_eq!(r.accounts[1].trust, PointTrust::Trusted);
        assert_eq!(r.accounts[1].canaries, 100);
    }

    #[test]
    fn strikes_convict_and_repair_to_observed_estimate() {
        let c = curve(&[98.0, 96.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                tolerance: 1.0,
                strikes_to_quarantine: 3,
                qos_floor: 85.0,
                ..GuardParams::default()
            },
            &c,
        );
        assert_eq!(g.observe(0.1, 1, 1, 96.0, 90.0), GuardVerdict::Strike);
        assert_eq!(g.observe(0.2, 2, 1, 96.0, 90.0), GuardVerdict::Strike);
        let v = g.observe(0.3, 3, 1, 96.0, 90.0);
        match v {
            GuardVerdict::Quarantine { rung, repaired_qos } => {
                assert_eq!(rung, 1);
                assert!(
                    (repaired_qos - 90.0).abs() < 1e-9,
                    "repaired {repaired_qos}"
                );
            }
            other => panic!("expected conviction, got {other:?}"),
        }
        // Further canaries on a convicted point are inert.
        assert_eq!(g.observe(0.4, 4, 1, 96.0, 90.0), GuardVerdict::Ok);
        let r = g.into_report(c);
        assert_eq!(r.quarantined, vec![1]);
        assert_eq!(r.repairs, 1);
        assert_eq!(r.accounts[1].trust, PointTrust::Quarantined);
        // Typed sequence: three misses, then quarantine, then repair.
        let kinds: Vec<&GuardEventKind> = r.events.iter().map(|e| &e.kind).collect();
        assert!(matches!(
            kinds[0],
            GuardEventKind::CanaryMiss { strikes: 1, .. }
        ));
        assert!(matches!(
            kinds[2],
            GuardEventKind::CanaryMiss { strikes: 3, .. }
        ));
        assert!(matches!(
            kinds[3],
            GuardEventKind::Quarantined { rung: 1, .. }
        ));
        assert!(
            matches!(kinds[4], GuardEventKind::Repaired { rung: 1, to_qos, .. } if (*to_qos - 90.0).abs() < 1e-9)
        );
    }

    #[test]
    fn dead_band_tolerates_noise_and_honest_canary_resets_strikes() {
        let c = curve(&[98.0, 96.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                tolerance: 2.0,
                strikes_to_quarantine: 2,
                ..GuardParams::default()
            },
            &c,
        );
        // Within the ±2 dead band: never a miss.
        assert_eq!(g.observe(0.1, 1, 0, 98.0, 96.5), GuardVerdict::Ok);
        // One miss, then an honest canary resets the strike count.
        assert_eq!(g.observe(0.2, 2, 0, 98.0, 90.0), GuardVerdict::Strike);
        assert_eq!(g.observe(0.3, 3, 0, 98.0, 97.5), GuardVerdict::Ok);
        assert_eq!(g.observe(0.4, 4, 0, 98.0, 90.0), GuardVerdict::Strike);
        let r = g.into_report(c);
        assert!(r.quarantined.is_empty(), "reset strikes must not convict");
        assert_eq!(r.accounts[0].trust, PointTrust::Suspect);
    }

    #[test]
    fn poisoned_observations_are_violations_and_repair_stays_finite() {
        let c = curve(&[98.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                strikes_to_quarantine: 2,
                qos_floor: 90.0,
                tolerance: 1.0,
                ..GuardParams::default()
            },
            &c,
        );
        assert_eq!(g.observe(0.1, 1, 0, 98.0, f64::NAN), GuardVerdict::Strike);
        let v = g.observe(0.2, 2, 0, 98.0, f64::NEG_INFINITY);
        let GuardVerdict::Quarantine { repaired_qos, .. } = v else {
            panic!("poisoned stream must convict, got {v:?}");
        };
        assert!(repaired_qos.is_finite(), "repair must stay finite");
        assert!(repaired_qos < 90.0, "all-poisoned repair lands below floor");
        let r = g.into_report(c);
        assert_eq!(r.poisoned, 2);
        // NaN observations are floor breaches by definition.
        assert_eq!(r.floor_breaches, 2);
    }

    #[test]
    fn unrecoverable_is_idempotent_and_typed() {
        let c = curve(&[98.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                qos_floor: 95.0,
                ..GuardParams::default()
            },
            &c,
        );
        g.note_unrecoverable(1.0, 10);
        g.note_unrecoverable(2.0, 20);
        let r = g.into_report(c);
        assert!(r.exact_fallback);
        let n = r
            .events
            .iter()
            .filter(|e| matches!(e.kind, GuardEventKind::QosFloorUnrecoverable { .. }))
            .count();
        assert_eq!(n, 1, "unrecoverable must log exactly once");
        assert!(
            matches!(r.events[0].kind, GuardEventKind::QosFloorUnrecoverable { floor } if (floor - 95.0).abs() < 1e-12)
        );
    }

    #[test]
    fn event_log_cap_evicts_but_counts() {
        let c = curve(&[98.0]);
        let mut g = QosGuard::new(
            &GuardParams {
                event_limit: 4,
                strikes_to_quarantine: usize::MAX,
                qos_floor: -1.0e9,
                ..GuardParams::default()
            },
            &c,
        );
        for k in 0..20 {
            let _ = g.observe(k as f64, k, 0, 98.0, 50.0);
        }
        let r = g.into_report(c);
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.events_evicted, 16);
        assert_eq!(r.misses, 20);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let c = curve(&[98.0, 96.0]);
        let mut g = QosGuard::new(&GuardParams::default(), &c);
        let _ = g.observe(0.1, 1, 0, 98.0, 80.0);
        g.note_premask(1);
        let r = g.into_report(c);
        let json = serde_json::to_string(&r).unwrap();
        let back: GuardReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.event_log(), r.event_log());
        assert_eq!(back.premasked_below_floor, vec![1]);
    }
}
