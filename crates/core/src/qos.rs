//! Quality-of-service metrics (§2.1, §6.1).
//!
//! A QoS metric maps the program's output tensors (and a reference — labels
//! or golden outputs) to a scalar where **higher is better**: classification
//! accuracy in percent for the CNNs, PSNR in dB for image processing. A QoS
//! constraint is a lower bound on this scalar.

use at_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which QoS metric a program is tuned under.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum QosMetric {
    /// Top-1 classification accuracy (%) against ground-truth labels.
    Accuracy,
    /// Peak signal-to-noise ratio (dB) against golden outputs:
    /// `-10·log10(MSE)` (§6.1; the predictive models use the MSE itself,
    /// "the exponential of PSNR").
    Psnr,
}

/// The reference data a metric is computed against.
#[derive(Clone, Debug)]
pub enum QosReference {
    /// Ground-truth labels per batch.
    Labels(Vec<Vec<usize>>),
    /// Golden (exact-execution) output tensors per batch.
    Golden(Vec<Tensor>),
}

/// Top-1 accuracy in percent of batched `[B, classes]` outputs.
pub fn accuracy(outputs: &[Tensor], labels: &[Vec<usize>]) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (out, labs) in outputs.iter().zip(labels) {
        let (rows, classes) = match out.shape().as_mat() {
            Ok(v) => v,
            Err(_) => continue,
        };
        for (r, &lab) in labs.iter().enumerate().take(rows) {
            let row = &out.data()[r * classes..(r + 1) * classes];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            if best == lab {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * correct as f64 / total as f64
    }
}

/// Mean squared error of outputs against golden outputs, averaged over
/// batches.
pub fn mse(outputs: &[Tensor], golden: &[Tensor]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (o, g) in outputs.iter().zip(golden) {
        if let Ok(m) = o.mse(g) {
            sum += m;
            n += 1;
        }
    }
    if n == 0 {
        f64::INFINITY
    } else {
        sum / n as f64
    }
}

/// PSNR in dB: `-10·log10(MSE)`, clamped for the exact-match case.
pub fn psnr_from_mse(mse: f64) -> f64 {
    if mse <= 0.0 {
        // Exact match: report a very high but finite PSNR.
        150.0
    } else {
        -10.0 * mse.log10()
    }
}

/// PSNR of outputs against golden outputs.
pub fn psnr(outputs: &[Tensor], golden: &[Tensor]) -> f64 {
    psnr_from_mse(mse(outputs, golden))
}

/// Computes the configured metric.
pub fn measure(metric: QosMetric, outputs: &[Tensor], reference: &QosReference) -> f64 {
    match (metric, reference) {
        (QosMetric::Accuracy, QosReference::Labels(labels)) => accuracy(outputs, labels),
        (QosMetric::Psnr, QosReference::Golden(golden)) => psnr(outputs, golden),
        _ => panic!("QoS metric/reference mismatch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_tensor::Shape;

    #[test]
    fn accuracy_counts_correct_rows() {
        let out = Tensor::from_vec(Shape::mat(3, 2), vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        let labels = vec![vec![0usize, 1, 1]];
        // Predictions: 0, 1, 0 → 2 of 3 correct.
        let acc = accuracy(&[out], &labels);
        assert!((acc - 66.666).abs() < 0.01);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Tensor::full(Shape::vec(100), 1.0);
        let small = Tensor::full(Shape::vec(100), 1.01);
        let large = Tensor::full(Shape::vec(100), 1.5);
        let p_small = psnr(&[small], std::slice::from_ref(&a));
        let p_large = psnr(&[large], std::slice::from_ref(&a));
        assert!(p_small > p_large);
        // Exact: the finite cap.
        assert_eq!(
            psnr(std::slice::from_ref(&a), std::slice::from_ref(&a)),
            150.0
        );
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01 → PSNR = 20 dB.
        assert!((psnr_from_mse(0.01) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn metric_reference_mismatch_panics() {
        let r = QosReference::Labels(vec![]);
        let _ = measure(QosMetric::Psnr, &[], &r);
    }
}
