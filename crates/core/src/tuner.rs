//! Algorithm 1: predictive approximation tuning (development time, §3).

use crate::checkpoint::{CheckpointPolicy, SearchCheckpoint};
use crate::config::Config;
use crate::evaluate::{
    run_batched_search, AttemptEvaluator, BatchTelemetry, CacheStats, EvalCache,
    PredictiveEvaluator, SearchOptions, SearchOutcome,
};
use crate::fault::{FaultPlan, FaultyEvaluator};
use crate::knobs::{KnobRegistry, KnobSet};
use crate::pareto::{cap_points, eps_for_budget, pareto_set_eps, TradeoffCurve, TradeoffPoint};
use crate::perf::PerfModel;
use crate::predict::{PredictionModel, Predictor};
use crate::profile::{collect_profiles, measure_config, QosProfiles};
use crate::qos::{QosMetric, QosReference};
use crate::search::{Autotuner, SearchSpace};
use crate::supervise::{FaultStats, SupervisedEvaluator, SupervisionPolicy};
use at_ir::Graph;
use at_tensor::{Shape, Tensor, TensorError};
use rayon::ParallelSlice;

/// Inputs of Algorithm 1 (plus engineering knobs).
#[derive(Clone, Debug)]
pub struct TunerParams {
    /// `QoS_min`: minimal acceptable QoS (same unit as the metric).
    pub qos_min: f64,
    /// `nCalibrate`: measured configurations used to refine α (the paper
    /// finds ~50 sufficient).
    pub n_calibrate: usize,
    /// `nIters`: maximum autotuning iterations (paper: 30 K).
    pub max_iters: usize,
    /// Convergence: stop after this many iterations without improvement
    /// (paper: 1 K).
    pub convergence_window: usize,
    /// Maximum configurations retained for QoS validation (`ε1` is derived
    /// per benchmark to honour this budget, §6.4).
    pub max_validated: usize,
    /// Maximum configurations shipped in the tradeoff curve (`ε2` budget;
    /// paper: at most 50).
    pub max_shipped: usize,
    /// Which knobs are in play.
    pub knob_set: KnobSet,
    /// Which QoS prediction model drives the search.
    pub model: PredictionModel,
    /// Whether to run predictor calibration (step 2). Disabling it is the
    /// `--no-calibrate` ablation.
    pub calibrate: bool,
    /// RNG seed for the search.
    pub seed: u64,
    /// Candidates proposed per batch-synchronous search round; unseen ones
    /// are evaluated concurrently ([`crate::evaluate`]). `1` recovers the
    /// classic one-at-a-time loop. For any value, a seeded run is
    /// deterministic regardless of the evaluation thread count.
    pub batch_size: usize,
    /// Fault-tolerance knobs: supervision policy, optional fault injection,
    /// checkpointing and resume.
    pub robustness: RobustnessParams,
}

/// Fault-tolerance configuration of a tuning run.
#[derive(Clone, Debug, Default)]
pub struct RobustnessParams {
    /// Inject deterministic faults into every evaluation (test harness;
    /// `None` in production runs).
    pub fault_plan: Option<FaultPlan>,
    /// Retry/quarantine policy for supervised evaluation.
    pub supervision: SupervisionPolicy,
    /// Write a [`SearchCheckpoint`] every N rounds, if set.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Stop the search after this many total rounds with `halted = true`
    /// (a simulated crash; used by the resume-determinism tests).
    pub halt_after_rounds: Option<usize>,
    /// Resume the search from a previously written checkpoint. The
    /// checkpoint must match the run's `qos_min` and `batch_size`.
    pub resume_from: Option<SearchCheckpoint>,
}

impl Default for TunerParams {
    fn default() -> Self {
        TunerParams {
            qos_min: 0.0,
            n_calibrate: 12,
            max_iters: 3000,
            convergence_window: 600,
            max_validated: 50,
            max_shipped: 50,
            knob_set: KnobSet::HardwareIndependent,
            model: PredictionModel::Pi1,
            calibrate: true,
            seed: 0xA99,
            batch_size: 16,
            robustness: RobustnessParams::default(),
        }
    }
}

/// Runs the supervised batched search shared by the predictive and
/// empirical tuners, wiring in the run's [`RobustnessParams`]: optional
/// fault injection around the evaluator, the supervision policy,
/// checkpointing, simulated crashes, and resume (validated against the
/// run's parameters first).
pub(crate) fn run_supervised<E: AttemptEvaluator>(
    tuner: &mut Autotuner,
    evaluator: &E,
    cache: &mut EvalCache,
    seeds: &[Config],
    params: &TunerParams,
) -> Result<SearchOutcome, TensorError> {
    let opts = SearchOptions {
        qos_min: params.qos_min,
        batch_size: params.batch_size,
        checkpoint: params.robustness.checkpoint.clone(),
        halt_after_rounds: params.robustness.halt_after_rounds,
        telemetry_limit: None,
    };
    let resume = params.robustness.resume_from.as_ref();
    if let Some(cp) = resume {
        cp.validate_run(opts.qos_min, opts.batch_size)
            .map_err(|e| TensorError::Transient {
                detail: e.to_string(),
            })?;
    }
    let policy = params.robustness.supervision;
    Ok(match &params.robustness.fault_plan {
        Some(plan) => {
            let faulty = FaultyEvaluator::new(evaluator, plan.clone());
            let sup = SupervisedEvaluator::new(&faulty, policy);
            run_batched_search(tuner, &sup, cache, seeds, &opts, resume)
        }
        None => {
            let sup = SupervisedEvaluator::new(evaluator, policy);
            run_batched_search(tuner, &sup, cache, seeds, &opts, resume)
        }
    })
}

/// Everything Algorithm 1 produced, plus timing breakdowns for Table 4.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// The final tradeoff curve (`PS_ε2` of the validated configs).
    pub curve: TradeoffCurve,
    /// Wall-clock seconds of the autotuning loop (steps 2–4).
    pub search_time_s: f64,
    /// Wall-clock seconds of QoS validation (step 5).
    pub validation_time_s: f64,
    /// Iterations the search ran.
    pub iterations: usize,
    /// Candidate configurations generated (pre-selection), §7.3.
    pub candidates: usize,
    /// The calibrated α.
    pub alpha: f64,
    /// Evaluation-cache counters of the search loop (hits, misses and
    /// in-batch dedups; `misses` equals the number of distinct
    /// configurations the evaluator actually scored).
    pub cache: CacheStats,
    /// Per-round search telemetry: batch size, cache hits, evaluator
    /// invocations and best-so-far fitness.
    pub telemetry: Vec<BatchTelemetry>,
    /// What supervision absorbed during the search: faults caught, retries,
    /// quarantines, skipped candidates.
    pub faults: FaultStats,
    /// `true` when the search stopped at a simulated crash
    /// (`halt_after_rounds`) rather than by convergence or budget; the
    /// curve then reflects only the rounds that ran.
    pub halted: bool,
}

impl TuningResult {
    /// Total tuning time excluding profile collection.
    pub fn tuning_time_s(&self) -> f64 {
        self.search_time_s + self.validation_time_s
    }

    /// Packages the tuned curve as the artifact that ships with the binary
    /// (§2.2) — the entry point of the ship → serve → guard-repair →
    /// re-ship round-trip. The curve lands in the FP32-only slot: the
    /// predictive tuner runs one knob set per call, and FP16-specific
    /// variants are added by a second tuning round
    /// ([`crate::ship::ShippedArtifact::new`] directly).
    pub fn to_artifact(
        &self,
        graph: &at_ir::Graph,
        metric: crate::qos::QosMetric,
        qos_min: f64,
    ) -> crate::ship::ShippedArtifact {
        crate::ship::ShippedArtifact::new(graph, metric, qos_min, None, Some(self.curve.clone()))
    }
}

/// The development-time predictive tuner (Algorithm 1).
pub struct PredictiveTuner<'a> {
    /// The program under tuning.
    pub graph: &'a Graph,
    /// The knob registry.
    pub registry: &'a KnobRegistry,
    /// Calibration input batches (`C`).
    pub inputs: &'a [Tensor],
    /// The QoS metric.
    pub metric: QosMetric,
    /// The metric's reference data.
    pub reference: &'a QosReference,
    /// Per-sample input shape for the performance model.
    pub input_shape: Shape,
    /// PROMISE noise seed for measured runs.
    pub promise_seed: u64,
}

impl<'a> PredictiveTuner<'a> {
    /// Step 1: profile collection (delegates to [`collect_profiles`]).
    pub fn collect(&self, params: &TunerParams) -> Result<QosProfiles, TensorError> {
        collect_profiles(
            self.graph,
            self.registry,
            params.knob_set,
            self.inputs,
            self.metric,
            self.reference,
            params.model == PredictionModel::Pi1,
            self.promise_seed,
        )
    }

    /// Steps 2–5 of Algorithm 1 over pre-collected profiles.
    pub fn tune(
        &self,
        profiles: &QosProfiles,
        params: &TunerParams,
    ) -> Result<TuningResult, TensorError> {
        let search_started = std::time::Instant::now();
        let perf = PerfModel::new(self.graph, self.registry, self.input_shape)?;
        let mut predictor = Predictor::new(profiles, params.model, self.metric);

        // Step 2: refine α against a few measured configurations.
        let space = SearchSpace::new(self.registry.node_knobs(self.graph, params.knob_set));
        if params.calibrate && params.n_calibrate > 0 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed ^ 0xCAFE);
            let mut samples = Vec::with_capacity(params.n_calibrate);
            for _ in 0..params.n_calibrate {
                let c = space.random(&mut rng);
                let q = measure_config(
                    self.graph,
                    self.registry,
                    &c,
                    self.inputs,
                    self.metric,
                    self.reference,
                    self.promise_seed,
                )?;
                samples.push((c, q));
            }
            predictor.calibrate(&samples, self.reference);
        }

        // Step 3: batched autotuning with the QoS and performance
        // prediction models. The search is seeded with the two
        // universally-sensible anchors — the exact baseline (always
        // feasible) and all-FP16 — because random points in a
        // 56-knobs-per-conv space are almost surely infeasible, so without
        // anchors the ensemble spends its whole budget walking back to the
        // feasible region.
        let mut tuner = Autotuner::new(
            space,
            params.max_iters,
            params.convergence_window,
            params.seed,
        );
        let evaluator = PredictiveEvaluator {
            predictor: &predictor,
            perf: &perf,
            reference: self.reference,
        };
        let mut cache = EvalCache::new();
        let seeds = seed_configs(self.graph, self.registry);
        let outcome = run_supervised(&mut tuner, &evaluator, &mut cache, &seeds, params)?;
        let candidates = outcome.candidates;

        // Step 4: keep configs within ε1 of the Pareto set, with ε1 chosen
        // per benchmark to bound validation work.
        let eps1 = eps_for_budget(&candidates, params.max_validated);
        let mut pareto_configs = pareto_set_eps(&candidates, eps1);
        // Deduplicate identical configs to avoid redundant validations.
        pareto_configs.sort_by(|a, b| a.perf.total_cmp(&b.perf));
        pareto_configs.dedup_by(|a, b| a.config == b.config);
        let pareto_configs = cap_points(pareto_configs, params.max_validated);
        let search_time_s = search_started.elapsed().as_secs_f64();

        // Step 5: validate — measure the real QoS of every retained config
        // concurrently (each measurement is an independent program run),
        // then filter violators. Order is preserved, so the shipped curve
        // is identical to the sequential loop's.
        let validation_started = std::time::Instant::now();
        let measured: Result<Vec<(f64, TradeoffPoint)>, TensorError> = pareto_configs
            .par_iter()
            .map(|p| {
                let real_qos = measure_config(
                    self.graph,
                    self.registry,
                    &p.config,
                    self.inputs,
                    self.metric,
                    self.reference,
                    self.promise_seed,
                )?;
                Ok((real_qos, p.clone()))
            })
            .collect();
        let validated: Vec<TradeoffPoint> = measured?
            .into_iter()
            .filter(|(real_qos, _)| real_qos.is_finite() && *real_qos > params.qos_min)
            .map(|(real_qos, p)| TradeoffPoint {
                qos: real_qos,
                perf: p.perf,
                config: p.config,
            })
            .collect();
        let eps2 = eps_for_budget(&validated, params.max_shipped);
        let shipped = cap_points(pareto_set_eps(&validated, eps2), params.max_shipped);
        let curve = TradeoffCurve::from_points_eps(shipped, f64::INFINITY);
        let validation_time_s = validation_started.elapsed().as_secs_f64();

        Ok(TuningResult {
            curve,
            search_time_s,
            validation_time_s,
            iterations: tuner.iterations(),
            // §7.3 "configurations generated": every iteration proposes one.
            candidates: tuner.iterations(),
            alpha: predictor.alpha,
            cache: cache.stats(),
            telemetry: outcome.telemetry,
            faults: outcome.faults,
            halted: outcome.halted,
        })
    }
}

/// The search-seeding anchors: exact baseline and all-FP16 (the FP16 knob
/// id differs per op class).
pub fn seed_configs(graph: &Graph, registry: &KnobRegistry) -> Vec<Config> {
    let baseline = Config::baseline(graph);
    let mut fp16 = Config::baseline(graph);
    for node in graph.nodes() {
        let class = node.op.class();
        if let Some(k) = registry
            .table(class)
            .iter()
            .find(|k| k.choice == at_ir::ApproxChoice::FP16)
        {
            fp16.set_knob(node.id.0 as usize, k.id);
        }
    }
    vec![baseline, fp16]
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_ir::{execute, ExecOptions, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Vec<Tensor>, QosReference) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new("t", Shape::nchw(16, 2, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .conv(4, 3, (1, 1), (1, 1))
            .relu();
        b.max_pool(2, 2).flatten().dense(5).softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(6);
        let inputs: Vec<Tensor> = (0..2)
            .map(|_| Tensor::uniform(Shape::nchw(16, 2, 8, 8), -1.0, 1.0, &mut rng2))
            .collect();
        let mut labels = Vec::new();
        for bt in &inputs {
            let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            labels.push(
                (0..rows)
                    .map(|r| {
                        let row = &out.data()[r * c..(r + 1) * c];
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0
                    })
                    .collect(),
            );
        }
        (g, inputs, QosReference::Labels(labels))
    }

    fn quick_params(model: PredictionModel) -> TunerParams {
        TunerParams {
            qos_min: 85.0,
            n_calibrate: 6,
            max_iters: 250,
            convergence_window: 250,
            max_validated: 20,
            max_shipped: 10,
            model,
            ..Default::default()
        }
    }

    #[test]
    fn predictive_tuning_produces_valid_curve() {
        let (g, inputs, reference) = setup();
        let registry = KnobRegistry::new();
        let tuner = PredictiveTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        for model in [PredictionModel::Pi1, PredictionModel::Pi2] {
            let params = quick_params(model);
            let profiles = tuner.collect(&params).unwrap();
            let result = tuner.tune(&profiles, &params).unwrap();
            assert!(
                !result.curve.is_empty(),
                "{model:?} produced an empty curve"
            );
            assert!(result.curve.len() <= params.max_shipped);
            // Every shipped point satisfies the (validated) QoS constraint
            // and reports a real speedup ≥ 1 … not guaranteed for every
            // point, but the best one should beat baseline.
            for p in result.curve.points() {
                assert!(p.qos > params.qos_min, "{model:?}: shipped QoS {}", p.qos);
            }
            let best = result
                .curve
                .points()
                .iter()
                .map(|p| p.perf)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(best > 1.0, "{model:?}: best predicted speedup {best}");
            assert!(result.iterations > 0);
        }
    }

    #[test]
    fn qos_constraint_respected_by_validation() {
        let (g, inputs, reference) = setup();
        let registry = KnobRegistry::new();
        let tuner = PredictiveTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let params = quick_params(PredictionModel::Pi2);
        let profiles = tuner.collect(&params).unwrap();
        let result = tuner.tune(&profiles, &params).unwrap();
        // Re-measure every shipped config: real QoS must exceed QoS_min
        // (validation guarantees it on the calibration inputs).
        for p in result.curve.points() {
            let q = measure_config(
                &g,
                &registry,
                &p.config,
                &inputs,
                QosMetric::Accuracy,
                &reference,
                0,
            )
            .unwrap();
            assert!(q > params.qos_min);
        }
    }

    #[test]
    fn tighter_qos_gives_no_more_speedup() {
        let (g, inputs, reference) = setup();
        let registry = KnobRegistry::new();
        let tuner = PredictiveTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let best_speedup = |qos_min: f64| -> f64 {
            let params = TunerParams {
                qos_min,
                ..quick_params(PredictionModel::Pi2)
            };
            let profiles = tuner.collect(&params).unwrap();
            let r = tuner.tune(&profiles, &params).unwrap();
            r.curve
                .points()
                .iter()
                .map(|p| p.perf)
                .fold(1.0f64, f64::max)
        };
        let strict = best_speedup(99.0);
        let loose = best_speedup(70.0);
        assert!(
            loose >= strict - 1e-9,
            "looser constraint must not reduce attainable speedup: strict {strict}, loose {loose}"
        );
    }
}
