//! Closed-loop run-time adaptation against a disturbed simulated device
//! (§5, evaluated in §6.4).
//!
//! [`run_closed_loop`] drives a program invocation-by-invocation over an
//! `at_hw` [`DisturbedDevice`], closing the loop the paper describes: the
//! [`SystemMonitor`] collects each invocation's wall time and sensor
//! readings, a controller estimates the *required speedup* to hold the
//! performance target, and the [`RuntimeTuner`] re-selects a configuration
//! from the shipped tradeoff curve under the chosen [`Policy`].
//!
//! The controller combines two paths:
//!
//! * **Feed-forward** — when the frequency sensor reports a clock change
//!   (a DVFS governor step), the frequency-slowdown estimate updates
//!   *before* the next invocation runs. This is why Policy 1 can hold the
//!   per-invocation target at every step of the §6.4 sweep: the switch
//!   happens at the step boundary, not one window later.
//! * **Feedback** — the residual slowdown that the clock cannot explain
//!   (co-running load, or any disturbance during a sensor dropout) is
//!   estimated from a sliding window of frequency-corrected residuals,
//!   with a ±2 % dead-band and a minimum dwell between updates so
//!   single-sample noise never thrashes switches.
//!
//! Degradation is graceful by construction: when the required speedup
//! exceeds every curve point, selection clamps to the fastest point and a
//! [`EventKind::QosFloorBreach`] transition is recorded in the
//! [`AdaptationLog`] — never a panic, including on empty or one-point
//! curves and under total sensor dropout.

use crate::monitor::{AdaptationLog, EventKind, InvocationSample, SystemMonitor};
use crate::pareto::TradeoffCurve;
use crate::runtime::{Policy, RuntimeTuner};
use at_hw::DisturbedDevice;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Controller parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopParams {
    /// Configuration-selection policy (§5).
    pub policy: Policy,
    /// Sliding-window length in invocations (the paper's runtime
    /// experiments use one batch).
    pub window: usize,
    /// Minimum invocations between feedback-driven re-estimations (switch
    /// hysteresis; feed-forward sensor events are exempt).
    pub min_dwell: usize,
    /// Seed for Policy 2's probabilistic mixing.
    pub seed: u64,
    /// QoS of the unapproximated baseline configuration, reported in the
    /// trace when no curve point is selected.
    pub baseline_qos: f64,
}

impl Default for ClosedLoopParams {
    fn default() -> ClosedLoopParams {
        ClosedLoopParams {
            policy: Policy::EnforceEachInvocation,
            window: 1,
            min_dwell: 3,
            seed: 7,
            baseline_qos: 100.0,
        }
    }
}

/// One invocation of the adaptation trace (the data behind the paper's
/// frequency-change figure: clock, selected config, speedup, QoS over
/// time).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceRow {
    /// Invocation index.
    pub invocation: usize,
    /// Sensed clock in MHz (None during sensor dropout).
    pub freq_mhz: Option<f64>,
    /// Sensed system power in W (None during sensor dropout).
    pub power_w: Option<f64>,
    /// Simulated wall time of the invocation, seconds.
    pub time_s: f64,
    /// Time normalised to the baseline invocation time (target ≤ 1).
    pub norm_time: f64,
    /// Speedup of the configuration the invocation ran with.
    pub speedup: f64,
    /// QoS of that configuration (baseline QoS when unapproximated).
    pub qos: f64,
    /// Curve index of the selected point (None = baseline config).
    pub selected: Option<usize>,
}

/// The structured result of one closed-loop run: the full per-invocation
/// trace, the control-decision log, and summary statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// Sliding-window length used.
    pub window: usize,
    /// Baseline invocation time the target is normalised to, seconds.
    pub baseline_time_s: f64,
    /// Per-invocation trace.
    pub trace: Vec<TraceRow>,
    /// Every control decision (switches and QoS-floor breaches).
    pub log: AdaptationLog,
    /// Total configuration switches (including Policy 2's re-rolls).
    pub switches: usize,
    /// QoS-floor breach transitions.
    pub breaches: usize,
    /// Mean normalised invocation time over the whole run.
    pub mean_norm_time: f64,
    /// Mean QoS over the whole run.
    pub mean_qos: f64,
}

impl ClosedLoopReport {
    /// Serialises the report (the artifact `runtime_adapt` persists).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Fraction of invocations meeting the target within `tol` (e.g.
    /// `0.02` for the 2 % band).
    pub fn target_hit_rate(&self, tol: f64) -> f64 {
        if self.trace.is_empty() {
            return 1.0;
        }
        let hits = self
            .trace
            .iter()
            .filter(|r| r.norm_time <= 1.0 + tol)
            .count();
        hits as f64 / self.trace.len() as f64
    }
}

/// Runs the closed loop over every invocation the device's scenario
/// scripts. `baseline_time_s` is the unapproximated invocation time at
/// nominal conditions; the target is to keep invocations at (or under)
/// that time (§6.4). Never panics, whatever the curve or scenario.
pub fn run_closed_loop(
    curve: &TradeoffCurve,
    baseline_time_s: f64,
    device: &DisturbedDevice,
    params: &ClosedLoopParams,
) -> ClosedLoopReport {
    let baseline = baseline_time_s.max(1e-12);
    let window = params.window.max(1);
    let nominal = device.scenario().nominal_mhz();
    let mut tuner = RuntimeTuner::new(curve.clone(), params.policy, window, baseline, params.seed);
    let mut monitor = SystemMonitor::new(window);
    let mut log = AdaptationLog::new();
    let mut trace = Vec::with_capacity(device.scenario().invocations());

    // Frequency-slowdown estimate (feed-forward path; holds its last value
    // through sensor dropouts) and residual-load estimate (feedback path).
    let mut fs_est = 1.0f64;
    let mut load_est = 1.0f64;
    let mut residuals: VecDeque<f64> = VecDeque::with_capacity(window);
    let mut since_load_update = usize::MAX;
    let mut in_breach = false;
    let mut last_time = baseline;

    // Re-selects for `required`, returning the event to log (if any):
    // a breach transition takes precedence over a plain switch.
    let decide = |tuner: &mut RuntimeTuner,
                  log: &mut AdaptationLog,
                  in_breach: &mut bool,
                  invocation: usize,
                  observed: f64,
                  required: f64,
                  kind: EventKind| {
        let switched = tuner.adapt_to(required).is_some();
        let exceeded = required > tuner.max_speedup() * (1.0 + 1e-9) && required > 1.0 + 1e-9;
        if exceeded && !*in_breach {
            *in_breach = true;
            log.push(
                invocation,
                observed,
                required,
                tuner.current_point(),
                EventKind::QosFloorBreach,
            );
        } else if switched {
            log.push(invocation, observed, required, tuner.current_point(), kind);
        }
        if !exceeded {
            *in_breach = false;
        }
    };

    for i in 0..device.scenario().invocations() {
        let state = device.state_at(i);
        let (freq_sensor, power_sensor) = device.sensors(&state);

        // Feed-forward: a sensed clock change updates the frequency
        // estimate before the invocation runs.
        if let Some(f) = freq_sensor {
            let new_fs = nominal / f.max(1.0);
            if (new_fs - fs_est).abs() > 1e-9 {
                fs_est = new_fs;
                let observed = monitor.mean_time_s().unwrap_or(last_time);
                decide(
                    &mut tuner,
                    &mut log,
                    &mut in_breach,
                    i,
                    observed,
                    fs_est * load_est,
                    EventKind::FeedForward,
                );
            }
        }
        // Policy 2 re-rolls its probabilistic mix on every invocation —
        // that alternation is what achieves the average target (§5).
        if params.policy == Policy::AverageOverTime {
            tuner.adapt_to(fs_est * load_est);
        }

        // Run the invocation on the disturbed device.
        let speedup = tuner.current_speedup();
        let time_s = device.invocation_time(&state, baseline, speedup);
        last_time = time_s;
        monitor.record(InvocationSample {
            time_s,
            freq_mhz: freq_sensor,
            power_w: power_sensor,
        });
        let (qos, selected) = match tuner.current_index() {
            Some(idx) => (curve.points()[idx].qos, Some(idx)),
            None => (params.baseline_qos, None),
        };
        trace.push(TraceRow {
            invocation: i,
            freq_mhz: freq_sensor,
            power_w: power_sensor,
            time_s,
            norm_time: time_s / baseline,
            speedup,
            qos,
            selected,
        });

        // Feedback: the residual is the slowdown the (estimated) clock
        // cannot explain — exactly the external load when sensors are up,
        // and the whole disturbance when they are down.
        let fs_actual = match freq_sensor {
            Some(f) => nominal / f.max(1.0),
            None => fs_est,
        };
        let r = (time_s * speedup / (baseline * fs_actual)).max(1e-3);
        residuals.push_back(r);
        if residuals.len() > window {
            residuals.pop_front();
        }
        since_load_update = since_load_update.saturating_add(1);
        if residuals.len() == window && since_load_update >= params.min_dwell {
            let mean_r = residuals.iter().sum::<f64>() / window as f64;
            // Dead-band: only re-estimate when the window mean leaves the
            // ±2 % hysteresis band around the current estimate.
            if (mean_r - load_est).abs() > 0.02 * load_est {
                load_est = mean_r.max(1e-3);
                since_load_update = 0;
                let observed = monitor.mean_time_s().unwrap_or(time_s);
                decide(
                    &mut tuner,
                    &mut log,
                    &mut in_breach,
                    i,
                    observed,
                    fs_est * load_est,
                    EventKind::Feedback,
                );
            }
        }
    }

    let n = trace.len().max(1) as f64;
    let mean_norm_time = trace.iter().map(|r| r.norm_time).sum::<f64>() / n;
    let mean_qos = trace.iter().map(|r| r.qos).sum::<f64>() / n;
    let breaches = log.breaches();
    ClosedLoopReport {
        scenario: device.scenario().name().to_string(),
        policy: params.policy.name().to_string(),
        window,
        baseline_time_s: baseline,
        trace,
        log,
        switches: tuner.switches,
        breaches,
        mean_norm_time,
        mean_qos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::pareto::TradeoffPoint;
    use at_hw::{Disturbance, FrequencyLadder, Scenario};

    fn curve(perfs: &[f64]) -> TradeoffCurve {
        TradeoffCurve::from_points(
            perfs
                .iter()
                .enumerate()
                .map(|(i, &perf)| TradeoffPoint {
                    qos: 98.0 - 2.0 * i as f64,
                    perf,
                    config: Config::from_knobs(vec![]),
                })
                .collect(),
        )
    }

    fn sweep_device(dwell: usize) -> DisturbedDevice {
        DisturbedDevice::tx2(Scenario::tx2_dvfs_sweep(dwell))
    }

    #[test]
    fn idle_scenario_never_adapts() {
        let s = Scenario::new("idle", FrequencyLadder::tx2_gpu(), 20, 0);
        let r = run_closed_loop(
            &curve(&[1.2, 1.5, 2.0]),
            1.0,
            &DisturbedDevice::tx2(s),
            &ClosedLoopParams::default(),
        );
        assert_eq!(r.switches, 0);
        assert_eq!(r.breaches, 0);
        assert!(r.trace.iter().all(|t| (t.norm_time - 1.0).abs() < 1e-12));
        assert!(r.trace.iter().all(|t| t.selected.is_none()));
    }

    #[test]
    fn feed_forward_switch_lands_on_the_step_boundary() {
        let r = run_closed_loop(
            &curve(&[1.2, 1.5, 2.0, 2.6, 3.3, 4.2]),
            1.0,
            &sweep_device(10),
            &ClosedLoopParams::default(),
        );
        // First governor step is invocation 10; the tuner must react there,
        // not one window later.
        let first = r.log.events().first().expect("an adaptation happened");
        assert_eq!(first.invocation, 10);
        assert_eq!(first.kind, EventKind::FeedForward);
        assert!(r.trace[10].norm_time <= 1.0 + 1e-9, "step-boundary miss");
    }

    #[test]
    fn empty_curve_degrades_without_panicking() {
        let r = run_closed_loop(
            &TradeoffCurve::default(),
            1.0,
            &sweep_device(5),
            &ClosedLoopParams::default(),
        );
        assert_eq!(r.switches, 0);
        assert!(r.breaches >= 1, "breach must be recorded");
        assert!(r
            .trace
            .iter()
            .all(|t| t.time_s.is_finite() && t.time_s > 0.0));
        // Unaided, times grow like the slowdown.
        assert!(r.trace.last().unwrap().norm_time > 3.5);
    }

    #[test]
    fn load_spike_is_handled_by_feedback_only() {
        let s = Scenario::new("spike", FrequencyLadder::tx2_gpu(), 60, 0).with(
            Disturbance::LoadSpike {
                at: 20,
                len: 30,
                time_factor: 1.8,
            },
        );
        let r = run_closed_loop(
            &curve(&[1.2, 1.5, 2.0, 2.6]),
            1.0,
            &DisturbedDevice::tx2(s),
            &ClosedLoopParams {
                window: 3,
                ..ClosedLoopParams::default()
            },
        );
        // The spike is invisible to the frequency sensor, so the log must
        // contain a feedback event and the loop must recover the target.
        assert!(r.log.events().iter().any(|e| e.kind == EventKind::Feedback));
        let during: Vec<&TraceRow> = r.trace.iter().filter(|t| t.invocation >= 30).collect();
        let hit = during
            .iter()
            .filter(|t| t.norm_time <= 1.02 && t.invocation < 50)
            .count();
        assert!(hit > 10, "feedback never recovered the target");
    }
}
