//! Seeded, replayable fleet chaos: scripted replica crashes with delayed
//! restart, gray failures (silent service-time inflation), and
//! router↔replica partitions with message loss.
//!
//! A [`ChaosPlan`] is a time-sorted script of [`ChaosEvent`]s that the
//! fleet loop (`fleet::run_fleet`) merges into its discrete-event stream.
//! Plans are either hand-scripted ([`ChaosPlan::scripted`]) or drawn from
//! a seed ([`ChaosPlan::campaign`]) with the same stateless splitmix64
//! discipline as `fault.rs`: every draw is a pure function of
//! `(seed, stream, index)`, never of call order, so a campaign replays
//! bit-identically regardless of how the simulation is threaded.
//!
//! Gray failures are deliberately *not* delivered as stream events: a gray
//! replica keeps accepting and completing work, just slower. The plan
//! instead exposes [`ChaosPlan::gray_inflation_at`], a pure function of
//! `(replica, time)` that the fleet multiplies into raw service time, and
//! detection is left entirely to the router's ejection logic — the
//! simulation never tells the router a replica has gone gray.

use crate::guard::splitmix64;
use serde::{Deserialize, Serialize};

/// What a chaos event does to its target replica.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// The replica process dies: its in-flight request is lost, its queue
    /// is redistributed or shed, and a warm restart from the replica's
    /// checkpoint is scheduled `restart_after_s` later.
    Crash {
        /// Delay between the crash and the warm restart, in seconds.
        restart_after_s: f64,
    },
    /// Gray failure: for `len_s` seconds the replica silently serves
    /// `inflation`× slower. No event is surfaced to the router; defense is
    /// the router's own EWMA-based ejection.
    Gray {
        /// Window length in seconds.
        len_s: f64,
        /// Service-time multiplier (≥ 1) while the window is active.
        inflation: f64,
    },
    /// Router↔replica partition: for `len_s` seconds the replica is
    /// unreachable (treated like an open breaker by routing and stealing),
    /// and up to `lost_messages` already-queued requests are dropped on
    /// the wire — accounted as `ShedReason::ReplicaLost`, never silently.
    Partition {
        /// Window length in seconds.
        len_s: f64,
        /// Queued requests lost when the partition opens.
        lost_messages: usize,
    },
}

impl ChaosKind {
    /// Stable tie-break rank for same-instant events on the same replica.
    fn rank(&self) -> u8 {
        match self {
            ChaosKind::Crash { .. } => 0,
            ChaosKind::Gray { .. } => 1,
            ChaosKind::Partition { .. } => 2,
        }
    }
}

/// One scripted chaos event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Simulation time at which the event fires.
    pub at_s: f64,
    /// Target replica index. Events aimed past the fleet are ignored.
    pub replica: usize,
    /// What happens.
    pub kind: ChaosKind,
}

/// A time-sorted, sanitized script of chaos events.
///
/// The default plan is empty: a fleet run with `ChaosPlan::default()` is
/// bit-identical to one that predates the chaos layer.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

/// Maps a splitmix64 draw to `[0, 1)`.
fn unit(seed: u64, stream: u64, i: u64) -> f64 {
    let h = splitmix64(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xD134_2543_DE82_EF95),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Picks a replica index in `[0, n)` from a splitmix64 draw.
fn pick(seed: u64, stream: u64, i: u64, n: usize) -> usize {
    let h = splitmix64(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xD134_2543_DE82_EF95),
    );
    (h % n.max(1) as u64) as usize
}

impl ChaosPlan {
    /// An empty plan (no chaos).
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Builds a plan from explicit events, sanitizing and time-sorting.
    ///
    /// Sanitization drops events with a non-finite or negative fire time,
    /// clamps crash restart delays to finite non-negative, drops gray /
    /// partition windows with non-positive length, and clamps gray
    /// inflation into `[1, ∞)` (finite). Events are then sorted by
    /// `(at_s, replica, kind)` so merge order is total.
    pub fn scripted(events: impl IntoIterator<Item = ChaosEvent>) -> ChaosPlan {
        let mut kept: Vec<ChaosEvent> = events
            .into_iter()
            .filter_map(|mut e| {
                if !e.at_s.is_finite() || e.at_s < 0.0 {
                    return None;
                }
                match &mut e.kind {
                    ChaosKind::Crash { restart_after_s } => {
                        if !restart_after_s.is_finite() || *restart_after_s < 0.0 {
                            *restart_after_s = 0.0;
                        }
                    }
                    ChaosKind::Gray { len_s, inflation } => {
                        if !len_s.is_finite() || *len_s <= 0.0 {
                            return None;
                        }
                        if !inflation.is_finite() || *inflation < 1.0 {
                            *inflation = 1.0;
                        }
                    }
                    ChaosKind::Partition { len_s, .. } => {
                        if !len_s.is_finite() || *len_s <= 0.0 {
                            return None;
                        }
                    }
                }
                Some(e)
            })
            .collect();
        kept.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then_with(|| a.replica.cmp(&b.replica))
                .then_with(|| a.kind.rank().cmp(&b.kind.rank()))
        });
        ChaosPlan { events: kept }
    }

    /// Draws a seeded chaos campaign over a `horizon_s`-second run against
    /// `replicas` replicas: `crashes` crash/restart pairs, `grays` gray
    /// windows, and `partitions` partition windows, all placed inside the
    /// middle of the horizon so recovery is observable before the run ends.
    /// Pure in `(seed, horizon_s, replicas, counts)`.
    pub fn campaign(
        seed: u64,
        horizon_s: f64,
        replicas: usize,
        crashes: usize,
        grays: usize,
        partitions: usize,
    ) -> ChaosPlan {
        if !horizon_s.is_finite() || horizon_s <= 0.0 || replicas == 0 {
            return ChaosPlan::default();
        }
        let mut events = Vec::with_capacity(crashes + grays + partitions);
        for i in 0..crashes {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.15 + 0.55 * unit(seed, 1, i)) * horizon_s,
                replica: pick(seed, 2, i, replicas),
                kind: ChaosKind::Crash {
                    restart_after_s: (0.02 + 0.06 * unit(seed, 3, i)) * horizon_s,
                },
            });
        }
        for i in 0..grays {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.10 + 0.50 * unit(seed, 4, i)) * horizon_s,
                replica: pick(seed, 5, i, replicas),
                kind: ChaosKind::Gray {
                    len_s: (0.08 + 0.12 * unit(seed, 6, i)) * horizon_s,
                    inflation: 3.0 + 5.0 * unit(seed, 7, i),
                },
            });
        }
        for i in 0..partitions {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.10 + 0.55 * unit(seed, 8, i)) * horizon_s,
                replica: pick(seed, 9, i, replicas),
                kind: ChaosKind::Partition {
                    len_s: (0.02 + 0.05 * unit(seed, 10, i)) * horizon_s,
                    lost_messages: 1
                        + (splitmix64(seed ^ 11 ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9)) % 4)
                            as usize,
                },
            });
        }
        ChaosPlan::scripted(events)
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sanitized, time-sorted events.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// `(crashes, grays, partitions)` in the plan.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.events {
            match e.kind {
                ChaosKind::Crash { .. } => c.0 += 1,
                ChaosKind::Gray { .. } => c.1 += 1,
                ChaosKind::Partition { .. } => c.2 += 1,
            }
        }
        c
    }

    /// The silent service-time multiplier for `replica` at time `t`:
    /// the product of all gray windows active there, `1.0` when none are.
    pub fn gray_inflation_at(&self, replica: usize, t: f64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if e.replica != replica {
                continue;
            }
            if let ChaosKind::Gray { len_s, inflation } = e.kind {
                if t >= e.at_s && t < e.at_s + len_s {
                    factor *= inflation;
                }
            }
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_sorts_and_sanitizes() {
        let plan = ChaosPlan::scripted([
            ChaosEvent {
                at_s: 5.0,
                replica: 1,
                kind: ChaosKind::Crash {
                    restart_after_s: -2.0,
                },
            },
            ChaosEvent {
                at_s: 1.0,
                replica: 0,
                kind: ChaosKind::Gray {
                    len_s: 2.0,
                    inflation: 0.5,
                },
            },
            ChaosEvent {
                at_s: f64::NAN,
                replica: 0,
                kind: ChaosKind::Partition {
                    len_s: 1.0,
                    lost_messages: 3,
                },
            },
            ChaosEvent {
                at_s: 3.0,
                replica: 2,
                kind: ChaosKind::Partition {
                    len_s: 0.0,
                    lost_messages: 3,
                },
            },
        ]);
        // NaN fire time and zero-length partition are dropped.
        assert_eq!(plan.events().len(), 2);
        // Sorted by time.
        assert_eq!(plan.events()[0].at_s, 1.0);
        // Sub-unity inflation clamps to the identity.
        assert_eq!(
            plan.events()[0].kind,
            ChaosKind::Gray {
                len_s: 2.0,
                inflation: 1.0
            }
        );
        // Negative restart delay clamps to immediate restart.
        assert_eq!(
            plan.events()[1].kind,
            ChaosKind::Crash {
                restart_after_s: 0.0
            }
        );
    }

    #[test]
    fn campaign_is_deterministic_and_in_horizon() {
        let a = ChaosPlan::campaign(42, 100.0, 8, 4, 2, 2);
        let b = ChaosPlan::campaign(42, 100.0, 8, 4, 2, 2);
        assert_eq!(a, b);
        assert_eq!(a.counts(), (4, 2, 2));
        for e in a.events() {
            assert!(e.at_s >= 0.0 && e.at_s <= 100.0);
            assert!(e.replica < 8);
        }
        let c = ChaosPlan::campaign(43, 100.0, 8, 4, 2, 2);
        assert_ne!(a, c, "different seeds must draw different campaigns");
    }

    #[test]
    fn campaign_degenerate_inputs_are_empty() {
        assert!(ChaosPlan::campaign(1, f64::NAN, 8, 4, 2, 2).is_empty());
        assert!(ChaosPlan::campaign(1, -5.0, 8, 4, 2, 2).is_empty());
        assert!(ChaosPlan::campaign(1, 100.0, 0, 4, 2, 2).is_empty());
    }

    #[test]
    fn gray_inflation_composes_and_defaults_to_identity() {
        let plan = ChaosPlan::scripted([
            ChaosEvent {
                at_s: 10.0,
                replica: 3,
                kind: ChaosKind::Gray {
                    len_s: 5.0,
                    inflation: 4.0,
                },
            },
            ChaosEvent {
                at_s: 12.0,
                replica: 3,
                kind: ChaosKind::Gray {
                    len_s: 5.0,
                    inflation: 2.0,
                },
            },
        ]);
        assert_eq!(plan.gray_inflation_at(3, 9.9), 1.0);
        assert_eq!(plan.gray_inflation_at(3, 10.0), 4.0);
        assert_eq!(plan.gray_inflation_at(3, 13.0), 8.0);
        assert_eq!(plan.gray_inflation_at(3, 15.5), 2.0);
        assert_eq!(plan.gray_inflation_at(2, 13.0), 1.0);
        assert_eq!(ChaosPlan::none().gray_inflation_at(0, 1.0), 1.0);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan = ChaosPlan::campaign(7, 60.0, 4, 2, 1, 1);
        let json = serde_json::to_string(&serde_json::to_value(&plan))
            .unwrap_or_else(|e| panic!("serialize: {e:?}"));
        let back: ChaosPlan =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize: {e:?}"));
        assert_eq!(plan, back);
    }
}
