//! Seeded, replayable fleet chaos: scripted replica crashes with delayed
//! restart, gray failures (silent service-time inflation), router↔replica
//! partitions with message loss, and bit-flip windows (silent data
//! corruption).
//!
//! A [`ChaosPlan`] is a time-sorted script of [`ChaosEvent`]s that the
//! fleet loop (`fleet::run_fleet`) merges into its discrete-event stream.
//! Plans are either hand-scripted ([`ChaosPlan::scripted`]) or drawn from
//! a seed ([`ChaosPlan::campaign`]) with the same stateless splitmix64
//! discipline as `fault.rs`: every draw is a pure function of
//! `(seed, stream, index)`, never of call order, so a campaign replays
//! bit-identically regardless of how the simulation is threaded.
//!
//! Gray failures are deliberately *not* delivered as stream events: a gray
//! replica keeps accepting and completing work, just slower. The plan
//! instead exposes [`ChaosPlan::gray_inflation_at`], a pure function of
//! `(replica, time)` that the fleet multiplies into raw service time, and
//! detection is left entirely to the router's ejection logic — the
//! simulation never tells the router a replica has gone gray.
//!
//! Bit-flip windows follow the same silent discipline: while a window is
//! active ([`ChaosPlan::bitflip_at`]), each request started on the target
//! replica draws a flip with the window's per-request rate via
//! [`ChaosPlan::draw_flip`] — pure in `(seed, replica, draw index)`, never
//! in call order. The fleet is never told a flip happened; the ABFT layer
//! has to *detect* it, and the injector's ground truth is what makes
//! escapes measurable.

use crate::guard::splitmix64;
use serde::{Deserialize, Serialize};

/// What a chaos event does to its target replica.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// The replica process dies: its in-flight request is lost, its queue
    /// is redistributed or shed, and a warm restart from the replica's
    /// checkpoint is scheduled `restart_after_s` later.
    Crash {
        /// Delay between the crash and the warm restart, in seconds.
        restart_after_s: f64,
    },
    /// Gray failure: for `len_s` seconds the replica silently serves
    /// `inflation`× slower. No event is surfaced to the router; defense is
    /// the router's own EWMA-based ejection.
    Gray {
        /// Window length in seconds.
        len_s: f64,
        /// Service-time multiplier (≥ 1) while the window is active.
        inflation: f64,
    },
    /// Router↔replica partition: for `len_s` seconds the replica is
    /// unreachable (treated like an open breaker by routing and stealing),
    /// and up to `lost_messages` already-queued requests are dropped on
    /// the wire — accounted as `ShedReason::ReplicaLost`, never silently.
    Partition {
        /// Window length in seconds.
        len_s: f64,
        /// Queued requests lost when the partition opens.
        lost_messages: usize,
    },
    /// Silent-data-corruption window: for `len_s` seconds each request
    /// started on the replica independently flips one bit (probability
    /// `rate`) in the given target buffer. Like gray failures, nothing is
    /// surfaced to the router — detection is the ABFT layer's job.
    BitFlip {
        /// Window length in seconds.
        len_s: f64,
        /// Per-request flip probability in `[0, 1]`.
        rate: f64,
        /// Which buffer the flip lands in.
        target: FlipTarget,
        /// Lowest bit position drawn (flipped bits are uniform in
        /// `min_bit..32`); low mantissa bits perturb below approximation
        /// noise, so raising the floor concentrates on consequential flips.
        min_bit: u32,
    },
}

/// Which buffer a bit flip corrupts. The targets mirror the data a
/// GEMM-shaped kernel touches; which defense layer catches each is part of
/// the fault model (weight fingerprints catch resident weight corruption,
/// ABFT checksums catch the rest).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlipTarget {
    /// Packed weight panel (model parameters resident on the replica).
    WeightPanel,
    /// im2col activation/patch buffer (per-request scratch).
    ActivationBuffer,
    /// GEMM output accumulator.
    Accumulator,
}

impl FlipTarget {
    /// All targets, in draw order.
    pub const ALL: [FlipTarget; 3] = [
        FlipTarget::WeightPanel,
        FlipTarget::ActivationBuffer,
        FlipTarget::Accumulator,
    ];
}

/// An active bit-flip window's parameters, as seen by [`ChaosPlan::bitflip_at`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BitFlipWindow {
    /// Per-request flip probability.
    pub rate: f64,
    /// Corrupted buffer.
    pub target: FlipTarget,
    /// Lowest bit position drawn.
    pub min_bit: u32,
}

/// One injected flip, drawn by [`ChaosPlan::draw_flip`]: ground truth the
/// fleet report uses to measure detection coverage and escapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFlip {
    /// Corrupted buffer.
    pub target: FlipTarget,
    /// Flipped bit position (`min_bit..32`).
    pub bit: u32,
}

impl ChaosKind {
    /// Stable tie-break rank for same-instant events on the same replica.
    fn rank(&self) -> u8 {
        match self {
            ChaosKind::Crash { .. } => 0,
            ChaosKind::Gray { .. } => 1,
            ChaosKind::Partition { .. } => 2,
            ChaosKind::BitFlip { .. } => 3,
        }
    }
}

/// One scripted chaos event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Simulation time at which the event fires.
    pub at_s: f64,
    /// Target replica index. Events aimed past the fleet are ignored.
    pub replica: usize,
    /// What happens.
    pub kind: ChaosKind,
}

/// A time-sorted, sanitized script of chaos events.
///
/// The default plan is empty: a fleet run with `ChaosPlan::default()` is
/// bit-identical to one that predates the chaos layer.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

/// Maps a splitmix64 draw to `[0, 1)`.
fn unit(seed: u64, stream: u64, i: u64) -> f64 {
    let h = splitmix64(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xD134_2543_DE82_EF95),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Picks a replica index in `[0, n)` from a splitmix64 draw.
fn pick(seed: u64, stream: u64, i: u64, n: usize) -> usize {
    let h = splitmix64(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xD134_2543_DE82_EF95),
    );
    (h % n.max(1) as u64) as usize
}

impl ChaosPlan {
    /// An empty plan (no chaos).
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Builds a plan from explicit events, sanitizing and time-sorting.
    ///
    /// Sanitization drops events with a non-finite or negative fire time,
    /// clamps crash restart delays to finite non-negative, drops gray /
    /// partition windows with non-positive length, and clamps gray
    /// inflation into `[1, ∞)` (finite). Events are then sorted by
    /// `(at_s, replica, kind)` so merge order is total.
    pub fn scripted(events: impl IntoIterator<Item = ChaosEvent>) -> ChaosPlan {
        let mut kept: Vec<ChaosEvent> = events
            .into_iter()
            .filter_map(|mut e| {
                if !e.at_s.is_finite() || e.at_s < 0.0 {
                    return None;
                }
                match &mut e.kind {
                    ChaosKind::Crash { restart_after_s } => {
                        if !restart_after_s.is_finite() || *restart_after_s < 0.0 {
                            *restart_after_s = 0.0;
                        }
                    }
                    ChaosKind::Gray { len_s, inflation } => {
                        if !len_s.is_finite() || *len_s <= 0.0 {
                            return None;
                        }
                        if !inflation.is_finite() || *inflation < 1.0 {
                            *inflation = 1.0;
                        }
                    }
                    ChaosKind::Partition { len_s, .. } => {
                        if !len_s.is_finite() || *len_s <= 0.0 {
                            return None;
                        }
                    }
                    ChaosKind::BitFlip {
                        len_s,
                        rate,
                        min_bit,
                        ..
                    } => {
                        if !len_s.is_finite() || *len_s <= 0.0 || !rate.is_finite() {
                            return None;
                        }
                        *rate = rate.clamp(0.0, 1.0);
                        *min_bit = (*min_bit).min(31);
                    }
                }
                Some(e)
            })
            .collect();
        kept.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then_with(|| a.replica.cmp(&b.replica))
                .then_with(|| a.kind.rank().cmp(&b.kind.rank()))
        });
        ChaosPlan { events: kept }
    }

    /// Draws a seeded chaos campaign over a `horizon_s`-second run against
    /// `replicas` replicas: `crashes` crash/restart pairs, `grays` gray
    /// windows, and `partitions` partition windows, all placed inside the
    /// middle of the horizon so recovery is observable before the run ends.
    /// Pure in `(seed, horizon_s, replicas, counts)`.
    pub fn campaign(
        seed: u64,
        horizon_s: f64,
        replicas: usize,
        crashes: usize,
        grays: usize,
        partitions: usize,
    ) -> ChaosPlan {
        if !horizon_s.is_finite() || horizon_s <= 0.0 || replicas == 0 {
            return ChaosPlan::default();
        }
        let mut events = Vec::with_capacity(crashes + grays + partitions);
        for i in 0..crashes {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.15 + 0.55 * unit(seed, 1, i)) * horizon_s,
                replica: pick(seed, 2, i, replicas),
                kind: ChaosKind::Crash {
                    restart_after_s: (0.02 + 0.06 * unit(seed, 3, i)) * horizon_s,
                },
            });
        }
        for i in 0..grays {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.10 + 0.50 * unit(seed, 4, i)) * horizon_s,
                replica: pick(seed, 5, i, replicas),
                kind: ChaosKind::Gray {
                    len_s: (0.08 + 0.12 * unit(seed, 6, i)) * horizon_s,
                    inflation: 3.0 + 5.0 * unit(seed, 7, i),
                },
            });
        }
        for i in 0..partitions {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.10 + 0.55 * unit(seed, 8, i)) * horizon_s,
                replica: pick(seed, 9, i, replicas),
                kind: ChaosKind::Partition {
                    len_s: (0.02 + 0.05 * unit(seed, 10, i)) * horizon_s,
                    lost_messages: 1
                        + (splitmix64(seed ^ 11 ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9)) % 4)
                            as usize,
                },
            });
        }
        ChaosPlan::scripted(events)
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sanitized, time-sorted events.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// `(crashes, grays, partitions)` in the plan.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.events {
            match e.kind {
                ChaosKind::Crash { .. } => c.0 += 1,
                ChaosKind::Gray { .. } => c.1 += 1,
                ChaosKind::Partition { .. } => c.2 += 1,
                ChaosKind::BitFlip { .. } => {}
            }
        }
        c
    }

    /// Number of bit-flip windows in the plan.
    pub fn bitflip_windows(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ChaosKind::BitFlip { .. }))
            .count()
    }

    /// Appends a seeded bit-flip campaign to the plan: `windows` corruption
    /// windows placed inside the middle of the horizon, each with the given
    /// per-request flip `rate` and bit floor, targets cycling through
    /// [`FlipTarget::ALL`] by seeded draw. Pure in its inputs; an existing
    /// plan's events are preserved (the merged script is re-sorted).
    pub fn with_bitflip_campaign(
        self,
        seed: u64,
        horizon_s: f64,
        replicas: usize,
        windows: usize,
        rate: f64,
        min_bit: u32,
    ) -> ChaosPlan {
        if !horizon_s.is_finite() || horizon_s <= 0.0 || replicas == 0 {
            return self;
        }
        let mut events = self.events;
        for i in 0..windows {
            let i = i as u64;
            events.push(ChaosEvent {
                at_s: (0.10 + 0.55 * unit(seed, 12, i)) * horizon_s,
                replica: pick(seed, 13, i, replicas),
                kind: ChaosKind::BitFlip {
                    len_s: (0.08 + 0.15 * unit(seed, 14, i)) * horizon_s,
                    rate,
                    target: FlipTarget::ALL[pick(seed, 15, i, FlipTarget::ALL.len())],
                    min_bit,
                },
            });
        }
        ChaosPlan::scripted(events)
    }

    /// The bit-flip window active for `replica` at time `t`, if any — the
    /// earliest-starting active window wins when windows overlap (a single
    /// flip per request is the modelled fault).
    pub fn bitflip_at(&self, replica: usize, t: f64) -> Option<BitFlipWindow> {
        for e in &self.events {
            if e.replica != replica {
                continue;
            }
            if let ChaosKind::BitFlip {
                len_s,
                rate,
                target,
                min_bit,
            } = e.kind
            {
                if t >= e.at_s && t < e.at_s + len_s {
                    return Some(BitFlipWindow {
                        rate,
                        target,
                        min_bit,
                    });
                }
            }
        }
        None
    }

    /// Draws whether the `k`-th corruption-eligible request on `replica`
    /// flips a bit under `window`, and which bit. Pure in
    /// `(seed, replica, k)` — never in call order — so campaigns replay
    /// bit-identically at any thread count.
    pub fn draw_flip(
        seed: u64,
        replica: usize,
        k: u64,
        window: &BitFlipWindow,
    ) -> Option<InjectedFlip> {
        let rseed = seed ^ (replica as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        if unit(rseed, 16, k) >= window.rate {
            return None;
        }
        let span = 32 - window.min_bit.min(31);
        let bit = window.min_bit + pick(rseed, 17, k, span as usize) as u32;
        Some(InjectedFlip {
            target: window.target,
            bit,
        })
    }

    /// The silent service-time multiplier for `replica` at time `t`:
    /// the product of all gray windows active there, `1.0` when none are.
    pub fn gray_inflation_at(&self, replica: usize, t: f64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if e.replica != replica {
                continue;
            }
            if let ChaosKind::Gray { len_s, inflation } = e.kind {
                if t >= e.at_s && t < e.at_s + len_s {
                    factor *= inflation;
                }
            }
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_sorts_and_sanitizes() {
        let plan = ChaosPlan::scripted([
            ChaosEvent {
                at_s: 5.0,
                replica: 1,
                kind: ChaosKind::Crash {
                    restart_after_s: -2.0,
                },
            },
            ChaosEvent {
                at_s: 1.0,
                replica: 0,
                kind: ChaosKind::Gray {
                    len_s: 2.0,
                    inflation: 0.5,
                },
            },
            ChaosEvent {
                at_s: f64::NAN,
                replica: 0,
                kind: ChaosKind::Partition {
                    len_s: 1.0,
                    lost_messages: 3,
                },
            },
            ChaosEvent {
                at_s: 3.0,
                replica: 2,
                kind: ChaosKind::Partition {
                    len_s: 0.0,
                    lost_messages: 3,
                },
            },
        ]);
        // NaN fire time and zero-length partition are dropped.
        assert_eq!(plan.events().len(), 2);
        // Sorted by time.
        assert_eq!(plan.events()[0].at_s, 1.0);
        // Sub-unity inflation clamps to the identity.
        assert_eq!(
            plan.events()[0].kind,
            ChaosKind::Gray {
                len_s: 2.0,
                inflation: 1.0
            }
        );
        // Negative restart delay clamps to immediate restart.
        assert_eq!(
            plan.events()[1].kind,
            ChaosKind::Crash {
                restart_after_s: 0.0
            }
        );
    }

    #[test]
    fn campaign_is_deterministic_and_in_horizon() {
        let a = ChaosPlan::campaign(42, 100.0, 8, 4, 2, 2);
        let b = ChaosPlan::campaign(42, 100.0, 8, 4, 2, 2);
        assert_eq!(a, b);
        assert_eq!(a.counts(), (4, 2, 2));
        for e in a.events() {
            assert!(e.at_s >= 0.0 && e.at_s <= 100.0);
            assert!(e.replica < 8);
        }
        let c = ChaosPlan::campaign(43, 100.0, 8, 4, 2, 2);
        assert_ne!(a, c, "different seeds must draw different campaigns");
    }

    #[test]
    fn campaign_degenerate_inputs_are_empty() {
        assert!(ChaosPlan::campaign(1, f64::NAN, 8, 4, 2, 2).is_empty());
        assert!(ChaosPlan::campaign(1, -5.0, 8, 4, 2, 2).is_empty());
        assert!(ChaosPlan::campaign(1, 100.0, 0, 4, 2, 2).is_empty());
    }

    #[test]
    fn gray_inflation_composes_and_defaults_to_identity() {
        let plan = ChaosPlan::scripted([
            ChaosEvent {
                at_s: 10.0,
                replica: 3,
                kind: ChaosKind::Gray {
                    len_s: 5.0,
                    inflation: 4.0,
                },
            },
            ChaosEvent {
                at_s: 12.0,
                replica: 3,
                kind: ChaosKind::Gray {
                    len_s: 5.0,
                    inflation: 2.0,
                },
            },
        ]);
        assert_eq!(plan.gray_inflation_at(3, 9.9), 1.0);
        assert_eq!(plan.gray_inflation_at(3, 10.0), 4.0);
        assert_eq!(plan.gray_inflation_at(3, 13.0), 8.0);
        assert_eq!(plan.gray_inflation_at(3, 15.5), 2.0);
        assert_eq!(plan.gray_inflation_at(2, 13.0), 1.0);
        assert_eq!(ChaosPlan::none().gray_inflation_at(0, 1.0), 1.0);
    }

    #[test]
    fn bitflip_windows_sanitize_query_and_draw_deterministically() {
        let plan = ChaosPlan::scripted([
            ChaosEvent {
                at_s: 10.0,
                replica: 2,
                kind: ChaosKind::BitFlip {
                    len_s: 5.0,
                    rate: 7.0, // clamps to 1.0
                    target: FlipTarget::Accumulator,
                    min_bit: 99, // clamps to 31
                },
            },
            ChaosEvent {
                at_s: 1.0,
                replica: 0,
                kind: ChaosKind::BitFlip {
                    len_s: -1.0, // dropped
                    rate: 0.5,
                    target: FlipTarget::WeightPanel,
                    min_bit: 16,
                },
            },
        ]);
        assert_eq!(plan.bitflip_windows(), 1);
        assert_eq!(plan.counts(), (0, 0, 0), "bit flips are counted apart");
        let w = plan.bitflip_at(2, 12.0).unwrap();
        assert_eq!(w.rate, 1.0);
        assert_eq!(w.min_bit, 31);
        assert!(plan.bitflip_at(2, 15.0).is_none(), "window end exclusive");
        assert!(plan.bitflip_at(1, 12.0).is_none(), "other replica clean");

        // Draws are pure in (seed, replica, k): rate 1.0 always flips, the
        // same key always draws the same bit, different keys vary.
        let f1 = ChaosPlan::draw_flip(42, 2, 0, &w).unwrap();
        let f2 = ChaosPlan::draw_flip(42, 2, 0, &w).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(f1.target, FlipTarget::Accumulator);
        assert!(f1.bit >= 31 && f1.bit < 32);
        let lo = BitFlipWindow {
            rate: 1.0,
            target: FlipTarget::ActivationBuffer,
            min_bit: 16,
        };
        let mut seen = std::collections::HashSet::new();
        for k in 0..64 {
            let f = ChaosPlan::draw_flip(42, 2, k, &lo).unwrap();
            assert!((16..32).contains(&f.bit));
            seen.insert(f.bit);
        }
        assert!(seen.len() > 8, "bits spread over the floor..32 range");
        // Rate 0 never flips.
        let off = BitFlipWindow { rate: 0.0, ..lo };
        assert!(ChaosPlan::draw_flip(42, 2, 0, &off).is_none());
    }

    #[test]
    fn bitflip_campaign_is_pure_and_preserves_existing_events() {
        let base = ChaosPlan::campaign(7, 100.0, 8, 2, 1, 1);
        let a = base.clone().with_bitflip_campaign(7, 100.0, 8, 3, 0.2, 12);
        let b = base.clone().with_bitflip_campaign(7, 100.0, 8, 3, 0.2, 12);
        assert_eq!(a, b);
        assert_eq!(a.counts(), base.counts());
        assert_eq!(a.bitflip_windows(), 3);
        for e in a.events() {
            assert!(e.at_s >= 0.0 && e.at_s <= 100.0);
            assert!(e.replica < 8);
        }
        // Degenerate inputs leave the plan untouched.
        let same = base
            .clone()
            .with_bitflip_campaign(7, f64::NAN, 8, 3, 0.2, 12);
        assert_eq!(same, base);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan =
            ChaosPlan::campaign(7, 60.0, 4, 2, 1, 1).with_bitflip_campaign(7, 60.0, 4, 2, 0.3, 16);
        let json = serde_json::to_string(&serde_json::to_value(&plan))
            .unwrap_or_else(|e| panic!("serialize: {e:?}"));
        let back: ChaosPlan =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize: {e:?}"));
        assert_eq!(plan, back);
    }
}
