//! Performance and energy prediction (§3.4, Eqn 3) plus the install-time
//! device models.
//!
//! At development time the tuner uses the hardware-agnostic operation-count
//! cost `Cost(op, knob) = N_m/R_m + N_c/R_c` — it "ranks configurations
//! correctly by their speedup, which suffices for autotuning purposes". At
//! install time the same per-op descriptors are fed through the device
//! timing model (`at-hw`) and the PROMISE model (`at-promise`) to produce
//! simulated *measurements* of time and energy on the target SoC.

use crate::config::Config;
use crate::knobs::KnobRegistry;
use at_hw::{LutMulPoint, PowerModel, TimingModel};
use at_ir::{ApproxChoice, Graph};
use at_promise::PromiseModel;
use at_tensor::cost::{self, OpCounts, ReductionFactors};
use at_tensor::{MulApprox, Precision, Shape, TensorError};

/// Per-program performance/energy estimator.
pub struct PerfModel<'a> {
    graph: &'a Graph,
    registry: &'a KnobRegistry,
    counts: Vec<OpCounts>,
}

/// Decomposes an execution choice into (algorithmic reduction factors,
/// precision, multiplier) for the digital paths.
fn digital_factors(choice: ApproxChoice) -> (ReductionFactors, Precision, MulApprox) {
    match choice {
        ApproxChoice::Digital {
            conv,
            reduce,
            precision,
            mul,
        } => {
            // The op applies at most one algorithmic mechanism; take the
            // stronger reduction of the set (the others are Exact → 1.0).
            // The multiplier knob's hardware-independent effect is the
            // narrower-operand memory saving; its compute-rate advantage is
            // hardware-specific and applied by the device paths below.
            let fc = cost::conv_reduction_factors(conv, Precision::Fp32);
            let fr = cost::reduce_reduction_factors(reduce, Precision::Fp32);
            let fm = cost::mul_reduction_factors(mul);
            (
                ReductionFactors {
                    compute: fc.compute.max(fr.compute).max(fm.compute),
                    memory: fc.memory.max(fr.memory).max(fm.memory),
                },
                precision,
                mul,
            )
        }
        ApproxChoice::Promise(_) => (ReductionFactors::NONE, Precision::Fp32, MulApprox::Exact),
    }
}

/// Folds the hardware mul-cell's compute-rate advantage into the
/// algorithmic factors (identity for the exact multiplier).
fn with_mul_cell(alg: ReductionFactors, mul: MulApprox) -> ReductionFactors {
    match mul {
        MulApprox::Exact => alg,
        MulApprox::Lut { bits } => {
            let speedup = LutMulPoint::for_bits(bits).map_or(1.0, |p| p.compute_speedup);
            ReductionFactors {
                compute: alg.compute * speedup,
                memory: alg.memory,
            }
        }
    }
}

impl<'a> PerfModel<'a> {
    /// Builds the model, computing baseline per-op counts analytically.
    pub fn new(
        graph: &'a Graph,
        registry: &'a KnobRegistry,
        input: Shape,
    ) -> Result<Self, TensorError> {
        Ok(PerfModel {
            graph,
            registry,
            counts: at_ir::exec::node_costs(graph, input)?,
        })
    }

    /// The baseline per-op counts.
    pub fn counts(&self) -> &[OpCounts] {
        &self.counts
    }

    /// Eqn 3: hardware-agnostic predicted cost of a configuration (lower is
    /// better). PROMISE knobs — which should not appear at development
    /// time — are credited with their level's digital-relative speedup.
    pub fn predicted_cost(&self, config: &Config) -> f64 {
        let choices = config.decode(self.registry, self.graph);
        self.counts
            .iter()
            .zip(&choices)
            .map(|(&c, &choice)| match choice {
                ApproxChoice::Promise(level) => (c.memory + c.compute) / level.speedup_vs_digital(),
                _ => {
                    let (alg, precision, _) = digital_factors(choice);
                    let f = ReductionFactors {
                        compute: alg.compute,
                        memory: alg.memory
                            * match precision {
                                Precision::Fp32 => 1.0,
                                Precision::Fp16 => 2.0,
                            },
                    };
                    cost::predicted_cost(c, f)
                }
            })
            .sum()
    }

    /// Predicted speedup of a configuration over the baseline (Eqn 3 cost
    /// ratio).
    pub fn predicted_speedup(&self, config: &Config) -> f64 {
        let base = self.predicted_cost(&Config::baseline(self.graph));
        let c = self.predicted_cost(config);
        if c <= 0.0 {
            1.0
        } else {
            base / c
        }
    }

    /// Simulated execution time (seconds per invocation) on the target
    /// device: digital ops through the roofline timing model, PROMISE ops
    /// through the accelerator model.
    pub fn device_time(
        &self,
        config: &Config,
        timing: &TimingModel,
        promise: &PromiseModel,
    ) -> f64 {
        let choices = config.decode(self.registry, self.graph);
        self.counts
            .iter()
            .zip(&choices)
            .map(|(&c, &choice)| match choice {
                ApproxChoice::Promise(level) => promise.op_time(c, level),
                _ => {
                    let (alg, precision, mul) = digital_factors(choice);
                    timing.op_time(c, with_mul_cell(alg, mul), precision)
                }
            })
            .sum()
    }

    /// Simulated device speedup of a configuration.
    pub fn device_speedup(
        &self,
        config: &Config,
        timing: &TimingModel,
        promise: &PromiseModel,
    ) -> f64 {
        let base = self.device_time(&Config::baseline(self.graph), timing, promise);
        let t = self.device_time(config, timing, promise);
        if t <= 0.0 {
            1.0
        } else {
            base / t
        }
    }

    /// Simulated *compute* energy (joules per invocation): GPU-rail energy
    /// for digital ops (FP16 units draw a small power premium while active)
    /// plus PROMISE energy for offloaded ops, matching the paper's
    /// GPU+PROMISE energy accounting of Figure 4.
    pub fn device_energy(
        &self,
        config: &Config,
        timing: &TimingModel,
        promise: &PromiseModel,
        power: &PowerModel,
    ) -> f64 {
        let choices = config.decode(self.registry, self.graph);
        let gpu_power = power.rails(timing.frequency_mhz(), 1.0).gpu;
        self.counts
            .iter()
            .zip(&choices)
            .map(|(&c, &choice)| match choice {
                ApproxChoice::Promise(level) => {
                    // Energy of the digital-equivalent op scaled by the
                    // level's calibrated advantage.
                    let t_digital = timing.op_time(c, ReductionFactors::NONE, Precision::Fp32);
                    t_digital * gpu_power / promise.energy_advantage(level)
                }
                _ => {
                    let (alg, precision, mul) = digital_factors(choice);
                    let t = timing.op_time(c, with_mul_cell(alg, mul), precision);
                    // Double-rate FP16 units draw more dynamic power while
                    // active, so FP16's energy gain trails its speedup
                    // (paper: 2.14× speedup vs 1.99× energy at 1%).
                    let premium = match precision {
                        Precision::Fp32 => 1.0,
                        Precision::Fp16 => 1.12,
                    };
                    // Approximate-multiplier cells run faster at a fraction
                    // of the exact pipeline's power.
                    let mul_factor = match mul {
                        MulApprox::Exact => 1.0,
                        MulApprox::Lut { bits } => {
                            LutMulPoint::for_bits(bits).map_or(1.0, |p| p.power_factor())
                        }
                    };
                    t * gpu_power * premium * mul_factor
                }
            })
            .sum()
    }

    /// Simulated energy-reduction factor vs the baseline.
    pub fn device_energy_reduction(
        &self,
        config: &Config,
        timing: &TimingModel,
        promise: &PromiseModel,
        power: &PowerModel,
    ) -> f64 {
        let base = self.device_energy(&Config::baseline(self.graph), timing, promise, power);
        let e = self.device_energy(config, timing, promise, power);
        if e <= 0.0 {
            1.0
        } else {
            base / e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{KnobId, KnobSet};
    use at_hw::DeviceSpec;
    use at_ir::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn in_shape() -> Shape {
        Shape::nchw(1, 32, 32, 32)
    }

    fn setup() -> (Graph, KnobRegistry) {
        let mut rng = StdRng::seed_from_u64(1);
        // Large enough that convolutions dominate launch overheads.
        let mut b = GraphBuilder::new("t", in_shape(), &mut rng);
        b.conv(32, 3, (1, 1), (1, 1))
            .relu()
            .conv(32, 3, (1, 1), (1, 1))
            .relu();
        b.flatten().dense(10).softmax();
        (b.finish().unwrap(), KnobRegistry::new())
    }

    fn fp16_sampling_config(g: &Graph, r: &KnobRegistry) -> Config {
        // Find the fp16 50%-sampling knob by label.
        let table = r.table(at_ir::OpClass::Conv);
        let knob = table
            .iter()
            .find(|k| k.label == "samp-50%-o0-fp16")
            .unwrap()
            .id;
        let mut c = Config::baseline(g);
        c.set_knob(1, knob);
        c.set_knob(3, knob);
        c
    }

    #[test]
    fn baseline_speedup_is_one() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let s = m.predicted_speedup(&Config::baseline(&g));
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approximations_predicted_faster() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let c = fp16_sampling_config(&g, &r);
        let s = m.predicted_speedup(&c);
        assert!(s > 1.2, "predicted speedup {s}");
    }

    #[test]
    fn device_speedup_tracks_prediction_rank() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let timing = TimingModel::new(DeviceSpec::tx2_gpu());
        let promise = PromiseModel::paper();
        // Two configs with different aggressiveness must rank the same
        // under the abstract and device models (the paper's ranking claim).
        let mild = {
            let mut c = Config::baseline(&g);
            c.set_knob(1, KnobId(1)); // fp16 on one conv
            c
        };
        let aggressive = fp16_sampling_config(&g, &r);
        let pm = m.predicted_speedup(&mild);
        let pa = m.predicted_speedup(&aggressive);
        let dm = m.device_speedup(&mild, &timing, &promise);
        let da = m.device_speedup(&aggressive, &timing, &promise);
        assert!(pa > pm);
        assert!(da > dm, "device model must preserve ranking: {da} vs {dm}");
    }

    #[test]
    fn promise_offload_saves_energy() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let timing = TimingModel::new(DeviceSpec::tx2_gpu());
        let promise = PromiseModel::paper();
        let power = PowerModel::tx2();
        // Map both convs to PROMISE P1.
        let p1 = r
            .table(at_ir::OpClass::Conv)
            .iter()
            .find(|k| k.label == "promise-P1")
            .unwrap()
            .id;
        let mut c = Config::baseline(&g);
        c.set_knob(1, p1);
        c.set_knob(3, p1);
        let red = m.device_energy_reduction(&c, &timing, &promise, &power);
        assert!(red > 1.5, "energy reduction {red}");
        // And it can't exceed the P1 advantage itself.
        assert!(red <= promise.energy_advantage(at_promise::VoltageLevel::P1) + 1e-9);
    }

    #[test]
    fn energy_reduction_trails_speedup_for_fp16() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let timing = TimingModel::new(DeviceSpec::tx2_gpu());
        let promise = PromiseModel::paper();
        let power = PowerModel::tx2();
        let mut c = Config::baseline(&g);
        for node in [1usize, 3] {
            c.set_knob(node, KnobId(1)); // fp16
        }
        let s = m.device_speedup(&c, &timing, &promise);
        let e = m.device_energy_reduction(&c, &timing, &promise, &power);
        assert!(s > 1.0 && e > 1.0);
        assert!(e < s, "energy reduction {e} should trail speedup {s}");
    }

    #[test]
    fn lut_multiplier_knob_speeds_up_device_and_saves_energy() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let timing = TimingModel::new(DeviceSpec::tx2_gpu());
        let promise = PromiseModel::paper();
        let power = PowerModel::tx2();
        let lut8 = r
            .table(at_ir::OpClass::Conv)
            .iter()
            .find(|k| k.label == "lutmul-8b")
            .unwrap()
            .id;
        let mut c = Config::baseline(&g);
        c.set_knob(1, lut8);
        c.set_knob(3, lut8);
        // Hardware-agnostic model sees the narrower-operand memory saving.
        assert!(m.predicted_cost(&c) < m.predicted_cost(&Config::baseline(&g)));
        let s = m.device_speedup(&c, &timing, &promise);
        assert!(s > 1.0, "device speedup {s}");
        // Mul cells' energy advantage exceeds their rate advantage, so —
        // unlike FP16 — energy reduction leads speedup.
        let e = m.device_energy_reduction(&c, &timing, &promise, &power);
        assert!(e > s, "energy reduction {e} should lead speedup {s}");
    }

    #[test]
    fn more_aggressive_knob_costs_less() {
        let (g, r) = setup();
        let m = PerfModel::new(&g, &r, in_shape()).unwrap();
        let nk = r.node_knobs(&g, KnobSet::HardwareIndependent);
        // All single-knob configs on node 1 must cost <= baseline.
        let base_cost = m.predicted_cost(&Config::baseline(&g));
        for &k in &nk[1] {
            let mut c = Config::baseline(&g);
            c.set_knob(1, k);
            assert!(m.predicted_cost(&c) <= base_cost + 1e-9);
        }
    }
}
