//! Conventional empirical (measurement-based) autotuning — the paper's
//! comparison baseline.
//!
//! "conventional empirical autotuning evaluates a configuration by actually
//! running the program binary (e.g., CNN inference) which can be expensive"
//! (§3). The search engine and fitness shape are identical to the
//! predictive tuner; only the QoS estimate differs: every iteration runs
//! the program on the calibration inputs.

use crate::evaluate::{EmpiricalEvaluator, EvalCache};
use crate::knobs::KnobRegistry;
use crate::pareto::{cap_points, eps_for_budget, pareto_set_eps, TradeoffCurve};
use crate::perf::PerfModel;
use crate::qos::{QosMetric, QosReference};
use crate::search::{Autotuner, SearchSpace};
use crate::tuner::{TunerParams, TuningResult};
use at_ir::Graph;
use at_tensor::{Shape, Tensor, TensorError};

/// The empirical tuner.
pub struct EmpiricalTuner<'a> {
    /// The program under tuning.
    pub graph: &'a Graph,
    /// The knob registry.
    pub registry: &'a KnobRegistry,
    /// Calibration input batches.
    pub inputs: &'a [Tensor],
    /// The QoS metric.
    pub metric: QosMetric,
    /// The metric's reference data.
    pub reference: &'a QosReference,
    /// Per-sample input shape for the performance model.
    pub input_shape: Shape,
    /// PROMISE noise seed for measured runs.
    pub promise_seed: u64,
}

impl<'a> EmpiricalTuner<'a> {
    /// Runs measurement-based tuning with the same parameters as
    /// Algorithm 1 (the `model`/`calibrate` fields are ignored — there is
    /// no predictor).
    pub fn tune(&self, params: &TunerParams) -> Result<TuningResult, TensorError> {
        let started = std::time::Instant::now();
        let perf = PerfModel::new(self.graph, self.registry, self.input_shape)?;
        let space = SearchSpace::new(self.registry.node_knobs(self.graph, params.knob_set));
        let mut tuner = Autotuner::new(
            space,
            params.max_iters,
            params.convergence_window,
            params.seed,
        );
        // Empirical: run the program for the QoS of every distinct
        // configuration. This is where batched evaluation pays — the
        // per-candidate program runs of one round execute concurrently, and
        // the cache spares re-proposed configs entirely.
        let evaluator = EmpiricalEvaluator {
            graph: self.graph,
            registry: self.registry,
            inputs: self.inputs,
            metric: self.metric,
            reference: self.reference,
            perf: &perf,
            promise_seed: self.promise_seed,
        };
        let mut cache = EvalCache::new();
        // Same feasible anchors as the predictive tuner (baseline, all-FP16).
        let seeds = crate::tuner::seed_configs(self.graph, self.registry);
        let outcome =
            crate::tuner::run_supervised(&mut tuner, &evaluator, &mut cache, &seeds, params)?;
        let candidates = outcome.candidates;
        let search_time_s = started.elapsed().as_secs_f64();

        // QoS already measured — only curve selection remains.
        let eps = eps_for_budget(&candidates, params.max_shipped);
        let mut kept = pareto_set_eps(&candidates, eps);
        kept.sort_by(|a, b| a.perf.total_cmp(&b.perf));
        kept.dedup_by(|a, b| a.config == b.config);
        let kept = cap_points(kept, params.max_shipped);
        let curve = TradeoffCurve::from_points_eps(kept, f64::INFINITY);

        Ok(TuningResult {
            curve,
            search_time_s,
            validation_time_s: 0.0,
            iterations: tuner.iterations(),
            candidates: tuner.iterations(),
            alpha: 1.0,
            cache: cache.stats(),
            telemetry: outcome.telemetry,
            faults: outcome.faults,
            halted: outcome.halted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::PredictionModel;
    use crate::tuner::PredictiveTuner;
    use at_ir::{execute, ExecOptions, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Vec<Tensor>, QosReference) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new("t", Shape::nchw(16, 2, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .max_pool(2, 2)
            .flatten()
            .dense(5)
            .softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(6);
        let inputs: Vec<Tensor> = (0..2)
            .map(|_| Tensor::uniform(Shape::nchw(16, 2, 8, 8), -1.0, 1.0, &mut rng2))
            .collect();
        let mut labels = Vec::new();
        for bt in &inputs {
            let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            labels.push(
                (0..rows)
                    .map(|r| {
                        let row = &out.data()[r * c..(r + 1) * c];
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0
                    })
                    .collect(),
            );
        }
        (g, inputs, QosReference::Labels(labels))
    }

    #[test]
    fn empirical_tuning_finds_speedups() {
        let (g, inputs, reference) = setup();
        let registry = KnobRegistry::new();
        let tuner = EmpiricalTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let params = TunerParams {
            qos_min: 85.0,
            max_iters: 120,
            convergence_window: 120,
            max_shipped: 10,
            ..Default::default()
        };
        let r = tuner.tune(&params).unwrap();
        assert!(!r.curve.is_empty());
        let best = r
            .curve
            .points()
            .iter()
            .map(|p| p.perf)
            .fold(1.0f64, f64::max);
        assert!(best > 1.0);
        // All points genuinely satisfy the constraint (measured QoS).
        assert!(r.curve.points().iter().all(|p| p.qos > params.qos_min));
    }

    #[test]
    fn predictive_is_faster_than_empirical_per_iteration() {
        // The core speed claim of the paper, at matched iteration counts:
        // predictive tuning avoids running the program per iteration, so
        // its search loop is much cheaper.
        let (g, inputs, reference) = setup();
        let registry = KnobRegistry::new();
        let iters = 60;
        let params = TunerParams {
            qos_min: 85.0,
            n_calibrate: 0, // isolate the search loop
            calibrate: false,
            max_iters: iters,
            convergence_window: iters,
            model: PredictionModel::Pi2,
            max_validated: 5,
            max_shipped: 5,
            ..Default::default()
        };
        let ptuner = PredictiveTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let profiles = ptuner.collect(&params).unwrap();
        let pr = ptuner.tune(&profiles, &params).unwrap();
        let etuner = EmpiricalTuner {
            graph: &g,
            registry: &registry,
            inputs: &inputs,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: inputs[0].shape(),
            promise_seed: 0,
        };
        let er = etuner.tune(&params).unwrap();
        assert!(
            pr.search_time_s < er.search_time_s,
            "predictive search ({}s) should beat empirical ({}s)",
            pr.search_time_s,
            er.search_time_s
        );
    }
}
