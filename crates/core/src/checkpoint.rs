//! Versioned checkpoints for long tuning campaigns.
//!
//! Development-time tuning runs for hours (§4); a crash near the end of a
//! campaign must not throw the whole run away. Every N rounds the batch
//! driver ([`crate::evaluate::run_batched_search`]) serialises a
//! [`SearchCheckpoint`] capturing *all* advancing state — bandit and RNG
//! state ([`TunerState`]), the evaluation cache, the collected candidates
//! and telemetry, and the supervision bookkeeping (quarantine, per-config
//! attempt cursors) — so a resumed run replays the exact proposal stream
//! and fault draws of an uninterrupted one, bit for bit.
//!
//! The on-disk format is versioned JSON, written atomically (temp file +
//! rename) so a crash mid-write can never leave a truncated checkpoint in
//! place of a good one. Loading is strict: version, structure, and float
//! finiteness are all validated into typed [`CheckpointError`]s.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::evaluate::{BatchTelemetry, CacheSnapshot};
use crate::pareto::TradeoffPoint;
use crate::search::TunerState;
use crate::supervise::SupervisionSnapshot;

/// Current checkpoint schema version; bumped on any layout change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// When and where the batch driver writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Write after every N completed rounds (values < 1 behave as 1).
    pub every_rounds: usize,
    /// Checkpoint file path (overwritten atomically each time).
    pub path: PathBuf,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every `every_rounds` rounds.
    pub fn new(every_rounds: usize, path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            every_rounds,
            path: path.into(),
        }
    }
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (rendered, since `io::Error` is not `Clone`).
    Io(String),
    /// The file is not a structurally valid checkpoint.
    Malformed(String),
    /// The file is a checkpoint of an incompatible schema version.
    VersionMismatch {
        /// The version found in the file.
        found: u32,
    },
    /// The checkpoint is valid but was written by a run with different
    /// parameters than the one trying to resume from it.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version {found} incompatible with supported version {CHECKPOINT_VERSION}"
            ),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint/run mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Everything needed to resume a batched search mid-campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// The QoS constraint of the run.
    pub qos_min: f64,
    /// The batch size of the run.
    pub batch_size: usize,
    /// Completed rounds (seed-anchor round included).
    pub rounds: usize,
    /// Bandit, RNG, and technique state.
    pub tuner: TunerState,
    /// The evaluation cache (sorted entries + counters).
    pub cache: CacheSnapshot,
    /// Constraint-satisfying candidates collected so far.
    pub candidates: Vec<TradeoffPoint>,
    /// Per-round telemetry so far.
    pub telemetry: Vec<BatchTelemetry>,
    /// Supervision state: fault counters, quarantine, attempt cursors.
    pub supervision: SupervisionSnapshot,
}

impl SearchCheckpoint {
    /// Serialises the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint state contains only finite floats")
    }

    /// Parses and validates a checkpoint from JSON.
    pub fn from_json(s: &str) -> Result<SearchCheckpoint, CheckpointError> {
        // Peek at the version first so an old-format file reports a
        // version mismatch, not an opaque structural error.
        if let Ok(v) = serde_json::from_str::<VersionProbe>(s) {
            if v.version != CHECKPOINT_VERSION {
                return Err(CheckpointError::VersionMismatch { found: v.version });
            }
        }
        let cp: SearchCheckpoint =
            serde_json::from_str(s).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: cp.version });
        }
        if !cp.qos_min.is_finite() {
            return Err(CheckpointError::Malformed("non-finite qos_min".into()));
        }
        Ok(cp)
    }

    /// Writes the checkpoint atomically: serialise to `<path>.tmp`, then
    /// rename over `path`, so a crash mid-write never corrupts an existing
    /// good checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = self.to_json();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &json).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Loads and validates a checkpoint from disk.
    pub fn load(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        SearchCheckpoint::from_json(&json)
    }

    /// Checks that this checkpoint belongs to a run with the given
    /// parameters — resuming under different parameters would silently
    /// break bit-identical replay, so it is refused instead.
    pub fn validate_run(&self, qos_min: f64, batch_size: usize) -> Result<(), CheckpointError> {
        if self.qos_min != qos_min {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint qos_min {} vs run qos_min {}",
                self.qos_min, qos_min
            )));
        }
        if self.batch_size != batch_size.max(1) {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint batch_size {} vs run batch_size {}",
                self.batch_size, batch_size
            )));
        }
        Ok(())
    }
}

/// Minimal probe deserialising only the version field (tolerates any
/// trailing fields because the vendored deserializer ignores unknown keys).
#[derive(Deserialize)]
struct VersionProbe {
    version: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::evaluate::{CacheStats, Evaluation};
    use crate::knobs::KnobId;
    use crate::search::{ArmState, TechniqueState};
    use crate::supervise::FaultStats;

    fn sample() -> SearchCheckpoint {
        SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            qos_min: 89.5,
            batch_size: 16,
            rounds: 3,
            tuner: TunerState {
                rng: [1, 2, 3, u64::MAX],
                iterations: 48,
                since_improvement: 7,
                best: Some((Config::from_knobs(vec![KnobId(2), KnobId(0)]), 1.75)),
                arms: vec![ArmState {
                    history: vec![true, false, true],
                    uses: 12,
                }],
                techniques: vec![
                    TechniqueState::Random,
                    TechniqueState::Evolutionary { sites: 3 },
                    TechniqueState::Torczon {
                        center: Some(vec![1, 0]),
                        step: 2,
                    },
                    TechniqueState::NelderMead {
                        simplex: vec![(vec![0, 1], 1.25)],
                        max_vertices: 8,
                    },
                ],
            },
            cache: CacheSnapshot {
                entries: vec![(
                    Config::from_knobs(vec![KnobId(2), KnobId(0)]),
                    Evaluation {
                        qos: 92.125,
                        perf: 1.75,
                    },
                )],
                stats: CacheStats {
                    hits: 30,
                    misses: 17,
                    dedup: 1,
                },
            },
            candidates: vec![TradeoffPoint {
                qos: 92.125,
                perf: 1.75,
                config: Config::from_knobs(vec![KnobId(2), KnobId(0)]),
            }],
            telemetry: vec![BatchTelemetry {
                round: 0,
                proposed: 2,
                cached: 0,
                evaluated: 2,
                failed: 0,
                best_fitness: 1.75,
            }],
            supervision: SupervisionSnapshot {
                stats: FaultStats {
                    attempts: 20,
                    retries: 3,
                    errors_caught: 2,
                    panics_caught: 1,
                    poisoned: 0,
                    exhausted: 1,
                    quarantined: 1,
                    quarantine_hits: 2,
                    skipped: 1,
                },
                quarantine: vec![Config::from_knobs(vec![KnobId(1), KnobId(1)])],
                failures: vec![],
                attempt_base: vec![(Config::from_knobs(vec![KnobId(2), KnobId(0)]), 4)],
            },
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let cp = sample();
        let back = SearchCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn disk_roundtrip_is_exact_and_atomic() {
        let dir = std::env::temp_dir().join("at_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sample();
        cp.save(&path).unwrap();
        // No stray temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(SearchCheckpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut cp = sample();
        cp.version = CHECKPOINT_VERSION + 1;
        let err = SearchCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VersionMismatch {
                found: CHECKPOINT_VERSION + 1
            }
        );
    }

    #[test]
    fn truncated_json_is_malformed_not_a_panic() {
        let json = sample().to_json();
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            let err = SearchCheckpoint::from_json(&json[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Malformed(_) | CheckpointError::VersionMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SearchCheckpoint::load(Path::new("/nonexistent/at/cp.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn run_validation_rejects_parameter_drift() {
        let cp = sample();
        cp.validate_run(89.5, 16).unwrap();
        assert!(matches!(
            cp.validate_run(90.0, 16),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            cp.validate_run(89.5, 8),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
