//! Versioned checkpoints for long tuning campaigns.
//!
//! Development-time tuning runs for hours (§4); a crash near the end of a
//! campaign must not throw the whole run away. Every N rounds the batch
//! driver ([`crate::evaluate::run_batched_search`]) serialises a
//! [`SearchCheckpoint`] capturing *all* advancing state — bandit and RNG
//! state ([`TunerState`]), the evaluation cache, the collected candidates
//! and telemetry, and the supervision bookkeeping (quarantine, per-config
//! attempt cursors) — so a resumed run replays the exact proposal stream
//! and fault draws of an uninterrupted one, bit for bit.
//!
//! The on-disk format is versioned JSON, written atomically (temp file +
//! rename) so a crash mid-write can never leave a truncated checkpoint in
//! place of a good one. Loading is strict: version, structure, and float
//! finiteness are all validated into typed [`CheckpointError`]s.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::evaluate::{BatchTelemetry, CacheSnapshot};
use crate::guard::QosGuard;
use crate::pareto::{TradeoffCurve, TradeoffPoint};
use crate::search::TunerState;
use crate::serve::BreakerState;
use crate::supervise::SupervisionSnapshot;

/// Current checkpoint schema version; bumped on any layout change.
/// Version 2 added the content fingerprint.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Current per-replica checkpoint schema version (independent of the
/// search-checkpoint schema — the two evolve separately). Version 2 added
/// the content fingerprint.
pub const REPLICA_CHECKPOINT_VERSION: u32 = 2;

/// When and where the batch driver writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Write after every N completed rounds (values < 1 behave as 1).
    pub every_rounds: usize,
    /// Checkpoint file path (overwritten atomically each time).
    pub path: PathBuf,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every `every_rounds` rounds.
    pub fn new(every_rounds: usize, path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            every_rounds,
            path: path.into(),
        }
    }
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (rendered, since `io::Error` is not `Clone`).
    Io(String),
    /// The file is not a structurally valid checkpoint.
    Malformed(String),
    /// The file is a checkpoint of an incompatible schema version.
    VersionMismatch {
        /// The version found in the file.
        found: u32,
    },
    /// The checkpoint is valid but was written by a run with different
    /// parameters than the one trying to resume from it.
    Mismatch(String),
    /// The checkpoint's content fingerprint disagrees with its contents:
    /// the file was corrupted (bit rot, partial overwrite, manual edit)
    /// after it was sealed. Resuming from it would silently diverge, so it
    /// is refused instead.
    FingerprintMismatch {
        /// Fingerprint recomputed from the contents.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version {found} incompatible with supported version {CHECKPOINT_VERSION}"
            ),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint/run mismatch: {e}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: contents hash to {expected:#018x} but the file claims {found:#018x} — the checkpoint was corrupted after sealing"
            ),
        }
    }
}

/// FNV-1a over a checkpoint's canonical JSON — the content fingerprint
/// primitive shared by both checkpoint types.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl std::error::Error for CheckpointError {}

/// Everything needed to resume a batched search mid-campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// The QoS constraint of the run.
    pub qos_min: f64,
    /// The batch size of the run.
    pub batch_size: usize,
    /// Completed rounds (seed-anchor round included).
    pub rounds: usize,
    /// Bandit, RNG, and technique state.
    pub tuner: TunerState,
    /// The evaluation cache (sorted entries + counters).
    pub cache: CacheSnapshot,
    /// Constraint-satisfying candidates collected so far.
    pub candidates: Vec<TradeoffPoint>,
    /// Per-round telemetry so far.
    pub telemetry: Vec<BatchTelemetry>,
    /// Supervision state: fault counters, quarantine, attempt cursors.
    pub supervision: SupervisionSnapshot,
    /// Content fingerprint: FNV-1a over the canonical JSON of this
    /// checkpoint with this field zeroed. Stamped by [`Self::seal`] (and by
    /// [`Self::save`]); checked on every load so a corrupted file is
    /// refused with a typed error instead of silently resuming wrong.
    pub fingerprint: u64,
}

impl SearchCheckpoint {
    /// Serialises the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint state contains only finite floats")
    }

    /// Recomputes the content fingerprint from everything but the
    /// fingerprint field itself.
    fn content_fingerprint(&self) -> u64 {
        let mut z = self.clone();
        z.fingerprint = 0;
        fnv1a64(&z.to_json())
    }

    /// Stamps the content fingerprint. A checkpoint must be sealed before
    /// its JSON can pass [`Self::from_json`].
    pub fn seal(&mut self) {
        self.fingerprint = self.content_fingerprint();
    }

    /// Whether the stored fingerprint matches the contents.
    pub fn is_sealed(&self) -> bool {
        self.fingerprint == self.content_fingerprint()
    }

    /// Parses and validates a checkpoint from JSON.
    pub fn from_json(s: &str) -> Result<SearchCheckpoint, CheckpointError> {
        // Peek at the version first so an old-format file reports a
        // version mismatch, not an opaque structural error.
        if let Ok(v) = serde_json::from_str::<VersionProbe>(s) {
            if v.version != CHECKPOINT_VERSION {
                return Err(CheckpointError::VersionMismatch { found: v.version });
            }
        }
        let cp: SearchCheckpoint =
            serde_json::from_str(s).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: cp.version });
        }
        if !cp.qos_min.is_finite() {
            return Err(CheckpointError::Malformed("non-finite qos_min".into()));
        }
        let expected = cp.content_fingerprint();
        if cp.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected,
                found: cp.fingerprint,
            });
        }
        Ok(cp)
    }

    /// Writes the checkpoint atomically: serialise to `<path>.tmp`, then
    /// rename over `path`, so a crash mid-write never corrupts an existing
    /// good checkpoint. The written copy is always sealed.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut cp = self.clone();
        cp.seal();
        atomic_write(path, &cp.to_json())
    }

    /// Loads and validates a checkpoint from disk.
    pub fn load(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        SearchCheckpoint::from_json(&json)
    }

    /// Checks that this checkpoint belongs to a run with the given
    /// parameters — resuming under different parameters would silently
    /// break bit-identical replay, so it is refused instead.
    pub fn validate_run(&self, qos_min: f64, batch_size: usize) -> Result<(), CheckpointError> {
        if self.qos_min != qos_min {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint qos_min {} vs run qos_min {}",
                self.qos_min, qos_min
            )));
        }
        if self.batch_size != batch_size.max(1) {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint batch_size {} vs run batch_size {}",
                self.batch_size, batch_size
            )));
        }
        Ok(())
    }
}

/// Minimal probe deserialising only the version field (tolerates any
/// trailing fields because the vendored deserializer ignores unknown keys).
#[derive(Deserialize)]
struct VersionProbe {
    version: u32,
}

/// Atomic file write shared by every checkpoint writer: serialise to
/// `<path>.tmp`, then rename over `path`, so a crash mid-write never leaves
/// a truncated file where a good checkpoint used to be.
fn atomic_write(path: &Path, json: &str) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
}

// ---------------------------------------------------------------------------
// Per-replica fleet checkpoints
// ---------------------------------------------------------------------------

/// Per-tenant slice of a replica checkpoint: the tenant's shipped curve,
/// the tuner's quarantine mask over it, and the full guard state. Restoring
/// the guard is what keeps convictions across a crash — a restored
/// `Quarantined` point is never re-canaried back through Suspect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantCheckpoint {
    /// The tenant's shipped tradeoff curve as the tuner held it.
    pub curve: TradeoffCurve,
    /// Per-point quarantine mask (`quarantined[i]` ⇔ point `i` masked).
    pub quarantined: Vec<bool>,
    /// The tenant's QoS guard, convictions and canary cursors included.
    pub guard: QosGuard,
}

/// Everything a crashed fleet replica needs for a warm restart: breaker
/// state, degradation-ladder position, and per-tenant tuner + guard state.
/// Written with the same atomic temp-file-then-rename discipline as
/// [`SearchCheckpoint`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaCheckpoint {
    /// Schema version ([`REPLICA_CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// Replica index within its fleet.
    pub replica: usize,
    /// Simulation time at which the replica crashed.
    pub crashed_at_s: f64,
    /// The degradation-ladder requirement last applied (dead-band anchor).
    pub applied_required: f64,
    /// The replica's service-time slowdown EWMA.
    pub slow_ewma: f64,
    /// Circuit-breaker state at crash time.
    pub breaker: BreakerState,
    /// Consecutive-failure counter feeding the breaker.
    pub consecutive_failures: usize,
    /// When an open breaker's cooldown elapses.
    pub open_until: f64,
    /// Per-tenant tuner + guard state, indexed like the fleet's tenants.
    pub tenants: Vec<TenantCheckpoint>,
    /// Content fingerprint: FNV-1a over the canonical JSON with this field
    /// zeroed (see [`SearchCheckpoint::seal`] for the discipline).
    pub fingerprint: u64,
}

impl ReplicaCheckpoint {
    /// Serialises the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("replica checkpoint contains only finite floats")
    }

    /// Recomputes the content fingerprint from everything but the
    /// fingerprint field itself.
    fn content_fingerprint(&self) -> u64 {
        let mut z = self.clone();
        z.fingerprint = 0;
        fnv1a64(&z.to_json())
    }

    /// Stamps the content fingerprint.
    pub fn seal(&mut self) {
        self.fingerprint = self.content_fingerprint();
    }

    /// Whether the stored fingerprint matches the contents. The fleet's
    /// warm-restart path refuses an unsealed or tampered checkpoint and
    /// restarts cold instead.
    pub fn is_sealed(&self) -> bool {
        self.fingerprint == self.content_fingerprint()
    }

    /// Parses and validates a replica checkpoint from JSON.
    pub fn from_json(s: &str) -> Result<ReplicaCheckpoint, CheckpointError> {
        if let Ok(v) = serde_json::from_str::<VersionProbe>(s) {
            if v.version != REPLICA_CHECKPOINT_VERSION {
                return Err(CheckpointError::VersionMismatch { found: v.version });
            }
        }
        let cp: ReplicaCheckpoint =
            serde_json::from_str(s).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if cp.version != REPLICA_CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch { found: cp.version });
        }
        if !cp.crashed_at_s.is_finite() || !cp.applied_required.is_finite() {
            return Err(CheckpointError::Malformed(
                "non-finite replica checkpoint timing".into(),
            ));
        }
        for (t, tc) in cp.tenants.iter().enumerate() {
            if tc.quarantined.len() != tc.curve.len() {
                return Err(CheckpointError::Malformed(format!(
                    "tenant {t}: quarantine mask length {} vs curve length {}",
                    tc.quarantined.len(),
                    tc.curve.len()
                )));
            }
        }
        let expected = cp.content_fingerprint();
        if cp.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected,
                found: cp.fingerprint,
            });
        }
        Ok(cp)
    }

    /// Writes the checkpoint atomically (temp file + rename). The written
    /// copy is always sealed.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut cp = self.clone();
        cp.seal();
        atomic_write(path, &cp.to_json())
    }

    /// Loads and validates a replica checkpoint from disk.
    pub fn load(path: &Path) -> Result<ReplicaCheckpoint, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        ReplicaCheckpoint::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::evaluate::{CacheStats, Evaluation};
    use crate::knobs::KnobId;
    use crate::search::{ArmState, TechniqueState};
    use crate::supervise::FaultStats;

    fn sample() -> SearchCheckpoint {
        let mut cp = SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            qos_min: 89.5,
            batch_size: 16,
            rounds: 3,
            tuner: TunerState {
                rng: [1, 2, 3, u64::MAX],
                iterations: 48,
                since_improvement: 7,
                best: Some((Config::from_knobs(vec![KnobId(2), KnobId(0)]), 1.75)),
                arms: vec![ArmState {
                    history: vec![true, false, true],
                    uses: 12,
                }],
                techniques: vec![
                    TechniqueState::Random,
                    TechniqueState::Evolutionary { sites: 3 },
                    TechniqueState::Torczon {
                        center: Some(vec![1, 0]),
                        step: 2,
                    },
                    TechniqueState::NelderMead {
                        simplex: vec![(vec![0, 1], 1.25)],
                        max_vertices: 8,
                    },
                ],
            },
            cache: CacheSnapshot {
                entries: vec![(
                    Config::from_knobs(vec![KnobId(2), KnobId(0)]),
                    Evaluation {
                        qos: 92.125,
                        perf: 1.75,
                    },
                )],
                stats: CacheStats {
                    hits: 30,
                    misses: 17,
                    dedup: 1,
                },
            },
            candidates: vec![TradeoffPoint {
                qos: 92.125,
                perf: 1.75,
                config: Config::from_knobs(vec![KnobId(2), KnobId(0)]),
            }],
            telemetry: vec![BatchTelemetry {
                round: 0,
                proposed: 2,
                cached: 0,
                evaluated: 2,
                failed: 0,
                best_fitness: 1.75,
            }],
            supervision: SupervisionSnapshot {
                stats: FaultStats {
                    attempts: 20,
                    retries: 3,
                    errors_caught: 2,
                    panics_caught: 1,
                    poisoned: 0,
                    exhausted: 1,
                    quarantined: 1,
                    quarantine_hits: 2,
                    skipped: 1,
                },
                quarantine: vec![Config::from_knobs(vec![KnobId(1), KnobId(1)])],
                failures: vec![],
                attempt_base: vec![(Config::from_knobs(vec![KnobId(2), KnobId(0)]), 4)],
            },
            fingerprint: 0,
        };
        cp.seal();
        cp
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let cp = sample();
        let back = SearchCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn disk_roundtrip_is_exact_and_atomic() {
        let dir = std::env::temp_dir().join("at_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = sample();
        cp.save(&path).unwrap();
        // No stray temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(SearchCheckpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut cp = sample();
        cp.version = CHECKPOINT_VERSION + 1;
        let err = SearchCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VersionMismatch {
                found: CHECKPOINT_VERSION + 1
            }
        );
    }

    #[test]
    fn truncated_json_is_malformed_not_a_panic() {
        let json = sample().to_json();
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            let err = SearchCheckpoint::from_json(&json[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Malformed(_) | CheckpointError::VersionMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SearchCheckpoint::load(Path::new("/nonexistent/at/cp.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    fn replica_sample() -> ReplicaCheckpoint {
        use crate::guard::GuardParams;
        let curve = TradeoffCurve::from_points(vec![
            TradeoffPoint {
                qos: 90.0,
                perf: 1.0,
                config: Config::from_knobs(vec![KnobId(0)]),
            },
            TradeoffPoint {
                qos: 85.0,
                perf: 2.0,
                config: Config::from_knobs(vec![KnobId(1)]),
            },
        ]);
        let guard = QosGuard::new(&GuardParams::default(), &curve);
        let mut cp = ReplicaCheckpoint {
            version: REPLICA_CHECKPOINT_VERSION,
            replica: 3,
            crashed_at_s: 12.5,
            applied_required: 1.25,
            slow_ewma: 1.125,
            breaker: BreakerState::HalfOpen,
            consecutive_failures: 2,
            open_until: 13.0,
            tenants: vec![TenantCheckpoint {
                quarantined: vec![false; curve.len()],
                curve,
                guard,
            }],
            fingerprint: 0,
        };
        cp.seal();
        cp
    }

    #[test]
    fn replica_checkpoint_disk_roundtrip_is_exact_and_atomic() {
        let dir = std::env::temp_dir().join("at_replica_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replica3.json");
        let cp = replica_sample();
        cp.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        // No PartialEq on QosGuard: exactness is compared via canonical JSON.
        let back = ReplicaCheckpoint::load(&path).unwrap();
        assert_eq!(back.to_json(), cp.to_json());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replica_checkpoint_version_mismatch_is_typed() {
        let mut cp = replica_sample();
        cp.version = REPLICA_CHECKPOINT_VERSION + 7;
        let err = ReplicaCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VersionMismatch {
                found: REPLICA_CHECKPOINT_VERSION + 7
            }
        );
    }

    #[test]
    fn replica_checkpoint_rejects_mask_length_drift() {
        let mut cp = replica_sample();
        cp.tenants[0].quarantined.push(true);
        let err = ReplicaCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
    }

    #[test]
    fn tampered_contents_are_a_typed_fingerprint_mismatch() {
        // Structurally valid, version intact, but a field changed after
        // sealing: the fingerprint no longer matches the contents.
        let mut cp = sample();
        cp.qos_min = 90.0;
        assert!(!cp.is_sealed());
        let err = SearchCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "{err}"
        );
        // Re-sealing repairs it.
        cp.seal();
        assert!(SearchCheckpoint::from_json(&cp.to_json()).is_ok());
    }

    #[test]
    fn unsealed_checkpoint_is_rejected() {
        let mut cp = sample();
        cp.fingerprint = 0;
        let err = SearchCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { found: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn replica_checkpoint_tamper_is_a_typed_fingerprint_mismatch() {
        let mut cp = replica_sample();
        cp.slow_ewma += 0.5;
        assert!(!cp.is_sealed());
        let err = ReplicaCheckpoint::from_json(&cp.to_json()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "{err}"
        );
        cp.seal();
        assert!(cp.is_sealed());
        assert!(ReplicaCheckpoint::from_json(&cp.to_json()).is_ok());
    }

    #[test]
    fn run_validation_rejects_parameter_drift() {
        let cp = sample();
        cp.validate_run(89.5, 16).unwrap();
        assert!(matches!(
            cp.validate_run(90.0, 16),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            cp.validate_run(89.5, 8),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
