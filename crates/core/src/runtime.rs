//! Run-time approximation tuning (§5).
//!
//! A system monitor measures the execution time of each *invocation* (one
//! batch) over a sliding window of the `N` most recent invocations. When
//! the window average falls below the performance target, the dynamic
//! tuner picks a new configuration from the shipped tradeoff curve:
//!
//! * **Policy 1 — enforce the required speedup in each invocation**: the
//!   smallest curve point with performance ≥ the target (`O(log |PS|)`
//!   binary search).
//! * **Policy 2 — achieve the average target performance over time**:
//!   probabilistically mixes the two bracketing points with probabilities
//!   `p1·Perf1 + p2·Perf2 = PerfT` (as in Zhu et al. \[67\]).
//!
//! Because every approximation knob is just a numeric parameter of the
//! tensor ops, switching configurations costs nothing beyond changing the
//! parameter values.

use crate::pareto::{TradeoffCurve, TradeoffPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration-selection policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Enforce the required speedup in every invocation (real-time
    /// friendly).
    EnforceEachInvocation,
    /// Achieve the target on average by probabilistic mixing (throughput
    /// friendly).
    AverageOverTime,
}

impl Policy {
    /// Stable display name (used in reports and JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Policy::EnforceEachInvocation => "enforce-each-invocation",
            Policy::AverageOverTime => "average-over-time",
        }
    }
}

/// The dynamic tuner.
pub struct RuntimeTuner {
    curve: TradeoffCurve,
    policy: Policy,
    window: VecDeque<f64>,
    window_size: usize,
    /// Target per-invocation time in seconds.
    target_time_s: f64,
    /// Baseline (no-approximation, nominal-frequency) invocation time.
    baseline_time_s: f64,
    rng: StdRng,
    /// Index of the currently selected curve point (None = baseline).
    current: Option<usize>,
    /// Per-point quarantine mask ([`RuntimeTuner::quarantine`]): masked
    /// points are skipped by selection, as if removed from the curve, while
    /// indices stay stable for event logs and reports.
    quarantined: Vec<bool>,
    /// Count of configuration switches (for overhead accounting).
    pub switches: usize,
}

impl RuntimeTuner {
    /// Creates a tuner over a shipped curve.
    ///
    /// `baseline_time_s` is the invocation time of the unapproximated
    /// program at the highest frequency; the performance target is to keep
    /// invocations at (or under) that time (§6.4).
    pub fn new(
        curve: TradeoffCurve,
        policy: Policy,
        window_size: usize,
        baseline_time_s: f64,
        seed: u64,
    ) -> RuntimeTuner {
        assert!(window_size > 0, "window must hold at least one invocation");
        let n = curve.len();
        RuntimeTuner {
            curve,
            policy,
            window: VecDeque::with_capacity(window_size),
            window_size,
            target_time_s: baseline_time_s,
            baseline_time_s,
            rng: StdRng::seed_from_u64(seed),
            current: None,
            quarantined: vec![false; n],
            switches: 0,
        }
    }

    /// The currently selected tradeoff point (None = baseline config).
    pub fn current_point(&self) -> Option<&TradeoffPoint> {
        self.current.map(|i| &self.curve.points()[i])
    }

    /// Index of the current point on the curve (None = baseline config).
    pub fn current_index(&self) -> Option<usize> {
        self.current
    }

    /// The shipped curve the tuner selects from.
    pub fn curve(&self) -> &TradeoffCurve {
        &self.curve
    }

    /// The highest speedup any curve point delivers (1.0 for an empty
    /// curve): beyond this, the performance target cannot be met and
    /// selection clamps to the fastest point.
    pub fn max_speedup(&self) -> f64 {
        self.curve
            .points()
            .iter()
            .map(|p| p.perf)
            .fold(1.0, f64::max)
    }

    /// Clears the sliding window, e.g. after a sensed frequency change
    /// invalidates samples measured under the old clock.
    pub fn reset_window(&mut self) {
        self.window.clear();
    }

    /// Removes a curve point from the selectable range (the QoS guard's
    /// curve quarantine, [`crate::guard`]). Indices stay stable — the point
    /// remains visible through [`RuntimeTuner::curve`] — but selection
    /// skips it. If the quarantined point is currently selected, the tuner
    /// immediately falls back to the exact baseline (the safe direction)
    /// until the next selection decision. Returns `false` for out-of-range
    /// or already-quarantined indices.
    pub fn quarantine(&mut self, index: usize) -> bool {
        match self.quarantined.get_mut(index) {
            Some(q) if !*q => {
                *q = true;
                if self.current == Some(index) {
                    self.current = None;
                    self.switches += 1;
                }
                true
            }
            _ => false,
        }
    }

    /// Whether a point has been quarantined.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.get(index).copied().unwrap_or(false)
    }

    /// Indices of the points still in the selectable range, in curve
    /// (increasing-performance) order.
    pub fn active_indices(&self) -> Vec<usize> {
        (0..self.curve.len())
            .filter(|&i| !self.quarantined[i])
            .collect()
    }

    /// Number of points still selectable.
    pub fn active_len(&self) -> usize {
        self.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Repairs a curve point's QoS promise in place to an observed
    /// estimate, so every later consumer of [`RuntimeTuner::curve`] (the
    /// degradation ladder, the closed loop, reports, the shipped-artifact
    /// round-trip) plans against honest numbers. Rejects non-finite
    /// estimates (returns `false`).
    pub fn repair_qos(&mut self, index: usize, observed_qos: f64) -> bool {
        self.curve.repair_qos(index, observed_qos)
    }

    /// Feed-forward entry point: re-selects a configuration for an
    /// externally computed required speedup (e.g. from a sensed DVFS
    /// transition, before the next invocation runs) instead of waiting for
    /// the sliding window to observe the slowdown. Policy 2 re-rolls its
    /// probabilistic mix on every call, which is how the average target is
    /// met over time. Returns the new point when the selection changed.
    pub fn adapt_to(&mut self, required_speedup: f64) -> Option<&TradeoffPoint> {
        self.select_for_speedup(required_speedup)
    }

    /// The speedup of the current configuration relative to baseline.
    pub fn current_speedup(&self) -> f64 {
        self.current_point().map_or(1.0, |p| p.perf)
    }

    /// The performance target (seconds per invocation).
    pub fn target_time_s(&self) -> f64 {
        self.target_time_s
    }

    /// Records one invocation's measured time and, if the sliding-window
    /// average misses the target, re-selects a configuration. Returns the
    /// new point when a switch happened.
    pub fn record_invocation(&mut self, time_s: f64) -> Option<&TradeoffPoint> {
        self.window.push_back(time_s);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
        if self.window.len() < self.window_size {
            return None;
        }
        let avg = self.window.iter().sum::<f64>() / self.window.len() as f64;
        // Within 2% of target: leave the configuration alone (hysteresis).
        if avg <= self.target_time_s * 1.02 && avg >= self.target_time_s * 0.7 {
            return None;
        }
        // The measured time reflects the current config's speedup; the
        // *environment slowdown* is what remains. Required total speedup to
        // hit the target:
        let env_slowdown = avg * self.current_speedup() / self.baseline_time_s;
        let required = env_slowdown * self.baseline_time_s / self.target_time_s;
        self.select_for_speedup(required)
    }

    /// Picks a configuration achieving `required` speedup under the policy.
    /// Selection runs over the non-quarantined points only; with every
    /// point quarantined it clamps to the exact baseline (the guard's
    /// exact-fallback safety net) instead of picking a distrusted config.
    fn select_for_speedup(&mut self, required: f64) -> Option<&TradeoffPoint> {
        if required <= 1.0 {
            // Environment recovered: fall back to the exact baseline.
            let switched = self.current.is_some();
            if switched {
                self.current = None;
                self.switches += 1;
            }
            return None;
        }
        let pts = self.curve.points();
        let active: Vec<usize> = (0..pts.len()).filter(|&i| !self.quarantined[i]).collect();
        if active.is_empty() {
            // Empty (or fully quarantined) curve: clamp to exact.
            if self.current.is_some() {
                self.current = None;
                self.switches += 1;
            }
            return None;
        }
        // Position of the first active point meeting the target (active is
        // sorted by performance because the curve is).
        let i = active.partition_point(|&j| pts[j].perf < required);
        let idx = match self.policy {
            Policy::EnforceEachInvocation => Some(active[i.min(active.len() - 1)]),
            Policy::AverageOverTime => {
                if i == 0 {
                    Some(active[0])
                } else if i >= active.len() {
                    Some(active[active.len() - 1])
                } else {
                    // Mix the bracketing points: p1·perf1 + p2·perf2 =
                    // required with p1 + p2 = 1.
                    let (lo, hi) = (&pts[active[i - 1]], &pts[active[i]]);
                    let p1 = if (hi.perf - lo.perf).abs() < 1e-12 {
                        1.0
                    } else {
                        (hi.perf - required) / (hi.perf - lo.perf)
                    };
                    if self.rng.gen_bool(p1.clamp(0.0, 1.0)) {
                        Some(active[i - 1])
                    } else {
                        Some(active[i])
                    }
                }
            }
        };
        if idx != self.current {
            self.current = idx;
            self.switches += 1;
            self.current_point()
        } else {
            None
        }
    }
}

/// Computes Policy 2's mixing probabilities for a target between two
/// performance points: returns `(p_lo, p_hi)` with
/// `p_lo·perf_lo + p_hi·perf_hi = target`.
pub fn policy2_probabilities(perf_lo: f64, perf_hi: f64, target: f64) -> (f64, f64) {
    if (perf_hi - perf_lo).abs() < 1e-12 {
        return (1.0, 0.0);
    }
    let p_lo = ((perf_hi - target) / (perf_hi - perf_lo)).clamp(0.0, 1.0);
    (p_lo, 1.0 - p_lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn curve() -> TradeoffCurve {
        let pt = |qos: f64, perf: f64| TradeoffPoint {
            qos,
            perf,
            config: Config::from_knobs(vec![]),
        };
        TradeoffCurve::from_points(vec![
            pt(90.0, 1.2),
            pt(88.5, 1.5),
            pt(87.0, 1.8),
            pt(85.0, 2.2),
        ])
    }

    #[test]
    fn paper_example_probabilities() {
        // "if PerfT = 1.3x and the closest points provide 1.2x and 1.5x
        // speedup, these two configurations are randomly selected with
        // respective probabilities 2/3 and 1/3".
        let (p_lo, p_hi) = policy2_probabilities(1.2, 1.5, 1.3);
        assert!((p_lo - 2.0 / 3.0).abs() < 1e-9);
        assert!((p_hi - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_switch_while_on_target() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 3, 1.0, 1);
        for _ in 0..10 {
            assert!(t.record_invocation(1.0).is_none());
        }
        assert_eq!(t.switches, 0);
        assert!(t.current_point().is_none());
    }

    #[test]
    fn policy1_picks_sufficient_speedup() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 2, 1.0, 1);
        // Environment slows invocations to 1.6x the target.
        t.record_invocation(1.6);
        let switched = t.record_invocation(1.6);
        assert!(switched.is_some());
        // Required speedup 1.6 → the 1.8x point.
        assert!((t.current_speedup() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn policy1_saturates_at_fastest_point() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        t.record_invocation(10.0);
        assert!((t.current_speedup() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn policy2_mixes_bracketing_points() {
        let mut lo_count = 0;
        let mut hi_count = 0;
        for seed in 0..200 {
            let mut t = RuntimeTuner::new(curve(), Policy::AverageOverTime, 1, 1.0, seed);
            t.record_invocation(1.3); // required speedup 1.3 ∈ (1.2, 1.5)
            let s = t.current_speedup();
            if (s - 1.2).abs() < 1e-9 {
                lo_count += 1;
            } else if (s - 1.5).abs() < 1e-9 {
                hi_count += 1;
            } else {
                panic!("unexpected speedup {s}");
            }
        }
        // Expect roughly 2:1 split (paper example).
        let frac = lo_count as f64 / (lo_count + hi_count) as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.12, "lo fraction {frac}");
    }

    #[test]
    fn recovers_to_baseline_when_environment_recovers() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        t.record_invocation(2.0);
        assert!(t.current_point().is_some());
        // Fast again (approximations make invocations shorter than target):
        // measured time = baseline/current speedup ≈ 0.45 → env recovered.
        t.record_invocation(0.45);
        assert!(t.current_point().is_none(), "should fall back to baseline");
    }

    #[test]
    fn switch_counter_tracks_changes() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        t.record_invocation(1.6);
        let after_first = t.switches;
        // Same conditions → same pick → no extra switch.
        t.record_invocation(1.6 / 1.8);
        assert_eq!(t.switches, after_first);
    }

    #[test]
    fn quarantine_masks_selection_and_skips_to_next_point() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        // Required 1.6 normally selects the 1.8x point (index 2).
        t.adapt_to(1.6);
        assert_eq!(t.current_index(), Some(2));
        // Quarantine it: selection for the same target skips to 2.2x.
        assert!(t.quarantine(2));
        assert_eq!(t.current_index(), None, "quarantine clears the selection");
        t.adapt_to(1.6);
        assert_eq!(t.current_index(), Some(3));
        assert!((t.current_speedup() - 2.2).abs() < 1e-9);
        // Idempotent and bounds-safe.
        assert!(!t.quarantine(2), "double quarantine is a no-op");
        assert!(!t.quarantine(99), "out of range is a no-op");
        assert!(t.is_quarantined(2));
        assert!(!t.is_quarantined(3));
        assert_eq!(t.active_indices(), vec![0, 1, 3]);
        assert_eq!(t.active_len(), 3);
    }

    #[test]
    fn fully_quarantined_curve_clamps_to_exact() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        for i in 0..4 {
            assert!(t.quarantine(i));
        }
        assert_eq!(t.active_len(), 0);
        t.adapt_to(2.0);
        assert_eq!(t.current_index(), None, "exact fallback, never a panic");
        assert!((t.current_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policy2_mixes_over_surviving_points_only() {
        // With index 1 (1.5x) quarantined, a 1.3 target brackets between
        // 1.2x and 1.8x; the tuner must never pick the quarantined point.
        for seed in 0..100 {
            let mut t = RuntimeTuner::new(curve(), Policy::AverageOverTime, 1, 1.0, seed);
            assert!(t.quarantine(1));
            t.record_invocation(1.3);
            assert_ne!(t.current_index(), Some(1), "seed {seed} picked quarantined");
            let s = t.current_speedup();
            assert!(
                (s - 1.2).abs() < 1e-9 || (s - 1.8).abs() < 1e-9,
                "seed {seed}: unexpected speedup {s}"
            );
        }
    }

    #[test]
    fn repair_updates_curve_promise_in_place() {
        let mut t = RuntimeTuner::new(curve(), Policy::EnforceEachInvocation, 1, 1.0, 1);
        assert!(t.repair_qos(1, 83.25));
        assert!((t.curve().points()[1].qos - 83.25).abs() < 1e-12);
        // Perf ordering untouched; non-finite and out-of-range rejected.
        assert!((t.curve().points()[1].perf - 1.5).abs() < 1e-12);
        assert!(!t.repair_qos(1, f64::NAN));
        assert!(!t.repair_qos(99, 80.0));
        assert!((t.curve().points()[1].qos - 83.25).abs() < 1e-12);
    }
}
