//! Shared candidate evaluation for the tuning loops: the [`Evaluator`]
//! abstraction over predictive and measured (QoS, perf) scoring, a
//! config-keyed memoisation cache, and the batch-synchronous parallel
//! search driver used by both the predictive ([`crate::tuner`]) and
//! empirical ([`crate::empirical`]) tuners.
//!
//! # Batch-synchronous search
//!
//! Each round the AUC-bandit ensemble proposes a *batch* of candidates
//! ([`crate::search::Autotuner::propose_batch`]); the batch is scored by an
//! [`Evaluator`] — concurrently for configurations not already in the
//! [`EvalCache`] — and the (fitness, config) results are reported back to
//! the bandit **in proposal order**. All bandit and RNG state advances only
//! on the sequential propose/report path, and every evaluator is a pure
//! function of the configuration, so a seeded run produces bit-identical
//! results regardless of the evaluation thread count.
//!
//! The only semantic difference from the one-at-a-time loop is staleness:
//! all proposals of a round are generated against the incumbent best of the
//! *previous* round, and the convergence window is checked per round rather
//! than per iteration (so a run can overshoot the window by at most one
//! batch).

use crate::checkpoint::{CheckpointPolicy, SearchCheckpoint, CHECKPOINT_VERSION};
use crate::config::Config;
use crate::knobs::KnobRegistry;
use crate::pareto::TradeoffPoint;
use crate::perf::PerfModel;
use crate::predict::Predictor;
use crate::profile::measure_config;
use crate::qos::{QosMetric, QosReference};
use crate::search::Autotuner;
use crate::supervise::{EvalError, FaultStats, SupervisedEvaluator};
use at_ir::Graph;
use at_tensor::{Tensor, TensorError};
use rayon::ParallelSlice;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One candidate's estimated quality and performance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// QoS estimate (same unit as the driving metric).
    pub qos: f64,
    /// Speedup estimate relative to the exact baseline.
    pub perf: f64,
}

/// Anything that can score a configuration with a (QoS, perf) pair.
///
/// Implementations must be pure — the same configuration always yields the
/// same evaluation — because results are memoised by the [`EvalCache`] and
/// unseen configurations are evaluated concurrently (hence the `Sync`
/// bound).
pub trait Evaluator: Sync {
    /// Scores one configuration.
    fn evaluate(&self, config: &Config) -> Result<Evaluation, TensorError>;
}

/// An evaluator that may answer differently per *attempt* — the seam the
/// fault-injection layer ([`crate::fault`]) and the supervision layer
/// ([`crate::supervise`]) meet at. Retrying a failed evaluation passes a
/// fresh attempt index, so an injected transient fault can clear on retry
/// while staying a pure function of `(config, attempt)`.
///
/// Every plain [`Evaluator`] is an `AttemptEvaluator` that ignores the
/// attempt index (real evaluators are pure per config).
pub trait AttemptEvaluator: Sync {
    /// Scores one configuration on the given attempt.
    fn evaluate_attempt(&self, config: &Config, attempt: u32) -> Result<Evaluation, TensorError>;
}

impl<E: Evaluator> AttemptEvaluator for E {
    fn evaluate_attempt(&self, config: &Config, _attempt: u32) -> Result<Evaluation, TensorError> {
        self.evaluate(config)
    }
}

/// The predictive path of Algorithm 1: QoS from the Π1/Π2 error-composition
/// models, performance from the analytical model. Cheap enough that the
/// cache mostly saves bookkeeping; parallelism still helps on Π1, which
/// composes full output tensors.
pub struct PredictiveEvaluator<'a> {
    /// The (calibrated) QoS predictor.
    pub predictor: &'a Predictor<'a>,
    /// The analytical performance model.
    pub perf: &'a PerfModel<'a>,
    /// Reference data of the QoS metric.
    pub reference: &'a QosReference,
}

impl Evaluator for PredictiveEvaluator<'_> {
    fn evaluate(&self, config: &Config) -> Result<Evaluation, TensorError> {
        Ok(Evaluation {
            qos: self.predictor.predict(config, self.reference),
            perf: self.perf.predicted_speedup(config),
        })
    }
}

/// The conventional empirical path: QoS from actually running the program
/// on the calibration inputs (expensive — this is where batching pays),
/// performance from the analytical model.
pub struct EmpiricalEvaluator<'a> {
    /// The program under tuning.
    pub graph: &'a Graph,
    /// The knob registry.
    pub registry: &'a KnobRegistry,
    /// Calibration input batches.
    pub inputs: &'a [Tensor],
    /// The QoS metric.
    pub metric: QosMetric,
    /// The metric's reference data.
    pub reference: &'a QosReference,
    /// The analytical performance model.
    pub perf: &'a PerfModel<'a>,
    /// PROMISE noise seed for measured runs.
    pub promise_seed: u64,
}

impl Evaluator for EmpiricalEvaluator<'_> {
    fn evaluate(&self, config: &Config) -> Result<Evaluation, TensorError> {
        let qos = measure_config(
            self.graph,
            self.registry,
            config,
            self.inputs,
            self.metric,
            self.reference,
            self.promise_seed,
        )?;
        Ok(Evaluation {
            qos,
            perf: self.perf.predicted_speedup(config),
        })
    }
}

/// Counters of the evaluation cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered by a previously stored evaluation.
    pub hits: usize,
    /// Lookups that required an evaluator invocation.
    pub misses: usize,
    /// Duplicate configurations within a single batch, coalesced into one
    /// evaluator invocation (counted separately from `hits` because the
    /// result was not yet stored when the batch was formed).
    pub dedup: usize,
}

impl CacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses + self.dedup
    }

    /// Fraction of lookups that avoided an evaluator invocation.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            (self.hits + self.dedup) as f64 / n as f64
        }
    }
}

/// A config-keyed memoisation cache over an [`Evaluator`].
///
/// The search ensemble frequently re-proposes configurations it has already
/// visited (mutation of an incumbent, hillclimber contraction, random
/// collisions in small spaces); on the empirical path every such repeat
/// would re-run the whole program. An unbounded cache guarantees at most
/// one evaluator invocation per distinct configuration; a capacity-bounded
/// one ([`EvalCache::with_capacity_limit`]) trades re-evaluation of evicted
/// configs for a hard memory ceiling — the right trade for long-running
/// servers over huge knob spaces.
#[derive(Default)]
pub struct EvalCache {
    map: HashMap<Config, Evaluation>,
    /// Insertion order, maintained only for FIFO eviction.
    order: Vec<Config>,
    capacity: Option<usize>,
    evictions: usize,
    stats: CacheStats,
}

impl EvalCache {
    /// An empty, unbounded cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// An empty cache that retains at most `limit` evaluations, evicting
    /// the oldest entry (FIFO) past the bound. Evicted configurations cost
    /// a fresh evaluator invocation if re-proposed; [`EvalCache::evictions`]
    /// counts how often that safety valve fired.
    pub fn with_capacity_limit(limit: usize) -> EvalCache {
        EvalCache {
            capacity: Some(limit),
            ..EvalCache::default()
        }
    }

    /// The hit/miss/dedup counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries evicted by the capacity bound (0 for unbounded caches).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    fn insert(&mut self, config: Config, eval: Evaluation) {
        if self.map.insert(config.clone(), eval).is_none() {
            self.order.push(config);
        }
    }

    /// Evicts oldest-first down to the capacity bound. Called only after a
    /// batch's results have been collected, so in-batch lookups never see a
    /// hole.
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.map.len() > cap && !self.order.is_empty() {
            let victim = self.order.remove(0);
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Number of distinct configurations evaluated.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no configuration has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Scores a batch of configurations, returning evaluations in input
    /// order. Configurations not in the cache are evaluated concurrently
    /// (duplicates within the batch are coalesced first); everything else
    /// is served from memory.
    pub fn evaluate_batch<E: Evaluator>(
        &mut self,
        evaluator: &E,
        configs: &[Config],
    ) -> Result<Vec<Evaluation>, TensorError> {
        let mut fresh: Vec<Config> = Vec::new();
        let mut in_flight: HashMap<&Config, ()> = HashMap::new();
        for c in configs {
            if self.map.contains_key(c) {
                self.stats.hits += 1;
            } else if in_flight.contains_key(c) {
                self.stats.dedup += 1;
            } else {
                in_flight.insert(c, ());
                fresh.push(c.clone());
                self.stats.misses += 1;
            }
        }
        drop(in_flight);
        let results: Result<Vec<Evaluation>, TensorError> =
            fresh.par_iter().map(|c| evaluator.evaluate(c)).collect();
        for (c, e) in fresh.iter().zip(results?) {
            self.insert(c.clone(), e);
        }
        let out = configs.iter().map(|c| self.map[c]).collect();
        self.enforce_capacity();
        Ok(out)
    }

    /// The supervised sibling of [`EvalCache::evaluate_batch`]: scores a
    /// batch through a [`SupervisedEvaluator`], returning a per-config
    /// result in input order. Only successful (finite) evaluations enter
    /// the cache; failures are reported as typed [`EvalError`]s, and
    /// in-batch duplicates of a failed config share its error.
    pub fn evaluate_batch_supervised<E: AttemptEvaluator>(
        &mut self,
        supervisor: &SupervisedEvaluator<'_, E>,
        configs: &[Config],
    ) -> Vec<Result<Evaluation, EvalError>> {
        let mut fresh: Vec<Config> = Vec::new();
        let mut in_flight: HashMap<&Config, ()> = HashMap::new();
        for c in configs {
            if self.map.contains_key(c) {
                self.stats.hits += 1;
            } else if in_flight.contains_key(c) {
                self.stats.dedup += 1;
            } else {
                in_flight.insert(c, ());
                fresh.push(c.clone());
                self.stats.misses += 1;
            }
        }
        drop(in_flight);
        let results: Vec<Result<Evaluation, EvalError>> =
            fresh.par_iter().map(|c| supervisor.evaluate(c)).collect();
        let mut failed: HashMap<&Config, EvalError> = HashMap::new();
        let mut stored: Vec<(Config, Evaluation)> = Vec::new();
        for (c, r) in fresh.iter().zip(results) {
            match r {
                Ok(e) => {
                    stored.push((c.clone(), e));
                }
                Err(err) => {
                    failed.insert(c, err);
                }
            }
        }
        for (c, e) in stored {
            self.insert(c, e);
        }
        let out = configs
            .iter()
            .map(|c| match self.map.get(c) {
                Some(e) => Ok(*e),
                None => Err(failed[c].clone()),
            })
            .collect();
        self.enforce_capacity();
        out
    }

    /// Serialisable snapshot of the cache: entries sorted by knob vector
    /// (so two identical runs snapshot identically) plus the counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries: Vec<(Config, Evaluation)> =
            self.map.iter().map(|(c, e)| (c.clone(), *e)).collect();
        entries.sort_by_key(|(c, _)| c.knobs().to_vec());
        CacheSnapshot {
            entries,
            stats: self.stats,
        }
    }

    /// Rebuilds a cache from a [`EvalCache::snapshot`]. The rebuilt cache
    /// is unbounded (the capacity limit is a process-local policy, not part
    /// of the checkpoint format); callers that want a bound re-apply it via
    /// [`EvalCache::with_capacity_limit`] semantics on their own.
    pub fn from_snapshot(snap: &CacheSnapshot) -> EvalCache {
        EvalCache {
            map: snap.entries.iter().cloned().collect(),
            order: snap.entries.iter().map(|(c, _)| c.clone()).collect(),
            capacity: None,
            evictions: 0,
            stats: snap.stats,
        }
    }
}

/// Serialised form of an [`EvalCache`], stored inside checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// `(config, evaluation)` pairs, sorted by knob vector.
    pub entries: Vec<(Config, Evaluation)>,
    /// The hit/miss/dedup counters at snapshot time.
    pub stats: CacheStats,
}

/// One round of per-batch telemetry from [`run_batched_search`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Round index (0 = the seed-anchor round).
    pub round: usize,
    /// Configurations proposed this round.
    pub proposed: usize,
    /// Lookups served from the cache this round (hits + in-batch dedups).
    pub cached: usize,
    /// Evaluator invocations this round (cache misses).
    pub evaluated: usize,
    /// Candidates that failed supervision this round (skipped).
    pub failed: usize,
    /// Best fitness seen so far (after this round's reports).
    pub best_fitness: f64,
}

/// Everything the batched search loop produced.
pub struct SearchOutcome {
    /// Constraint-satisfying candidates, in report order.
    pub candidates: Vec<TradeoffPoint>,
    /// Per-round telemetry.
    pub telemetry: Vec<BatchTelemetry>,
    /// What supervision absorbed (faults, retries, quarantines, skips).
    pub faults: FaultStats,
    /// `true` if the loop stopped early at `halt_after_rounds` (a
    /// simulated crash) rather than by convergence or budget.
    pub halted: bool,
}

/// The fitness reported to the bandit for a candidate that failed
/// supervision (errors/panics on every attempt, poisoned readings, or
/// quarantine). Strongly negative so no failing technique looks good, yet
/// finite so telemetry and checkpoints serialise exactly.
pub const FAILED_FITNESS: f64 = -1.0e9;

/// Knobs of [`run_batched_search`] beyond the evaluator itself.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// The QoS constraint driving the fitness shape.
    pub qos_min: f64,
    /// Proposals per round (≥ 1).
    pub batch_size: usize,
    /// Write a checkpoint every N rounds, if set.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Stop (with `halted = true`) once this many total rounds have run —
    /// the hook the crash/resume tests use to kill a run mid-campaign.
    pub halt_after_rounds: Option<usize>,
    /// Retain at most this many telemetry rounds (ring buffer, oldest
    /// evicted first). `None` (the default) keeps every round — required
    /// for bit-identical checkpoint/resume; a bound is for long-running
    /// campaigns where telemetry must not grow without limit.
    pub telemetry_limit: Option<usize>,
}

impl SearchOptions {
    /// Plain options: no checkpointing, no simulated crash, unbounded
    /// telemetry.
    pub fn new(qos_min: f64, batch_size: usize) -> SearchOptions {
        SearchOptions {
            qos_min,
            batch_size,
            checkpoint: None,
            halt_after_rounds: None,
            telemetry_limit: None,
        }
    }
}

/// Runs the supervised batch-synchronous search loop shared by the
/// predictive and empirical tuners (step 3 of Algorithm 1).
///
/// `seeds` are evaluated first (through the same cache path) and reported
/// without technique attribution, exactly like the sequential loop's
/// anchors. Then, while [`Autotuner::continue_tuning`], the bandit proposes
/// up to `batch_size` candidates, the supervised cache path scores them,
/// and the fitness `perf if qos ≥ qos_min else qos − qos_min` is reported
/// back in proposal order. Candidates with `qos > qos_min` are collected as
/// tradeoff points.
///
/// Every candidate runs under the supervisor's isolation/retry/quarantine
/// envelope: a candidate that fails for good is *skipped* — it is reported
/// to the bandit as [`FAILED_FITNESS`] (so bandit and RNG state advance
/// identically on every replay) but never enters the cache or the
/// candidate set, and the round continues.
///
/// When `resume` is given, tuner/cache/supervision state is restored from
/// the checkpoint and the loop continues from the following round; a
/// resumed run is bit-identical to one that never stopped. When
/// `opts.checkpoint` is set, a [`SearchCheckpoint`] is written every N
/// completed rounds (checkpoint I/O failures are logged and ignored — an
/// unwritable disk must not kill a tuning campaign).
pub fn run_batched_search<E: AttemptEvaluator>(
    tuner: &mut Autotuner,
    supervisor: &SupervisedEvaluator<'_, E>,
    cache: &mut EvalCache,
    seeds: &[Config],
    opts: &SearchOptions,
    resume: Option<&SearchCheckpoint>,
) -> SearchOutcome {
    let qos_min = opts.qos_min;
    let batch_size = opts.batch_size.max(1);
    let mut candidates: Vec<TradeoffPoint> = Vec::new();
    let mut telemetry: Vec<BatchTelemetry> = Vec::new();
    // Rounds completed so far. Tracked separately from `telemetry.len()`
    // because a `telemetry_limit` may have evicted early rounds.
    let mut rounds: usize = 0;
    let mut halted = false;

    if let Some(cp) = resume {
        tuner.restore(&cp.tuner);
        let capacity = cache.capacity;
        *cache = EvalCache::from_snapshot(&cp.cache);
        cache.capacity = capacity;
        cache.enforce_capacity();
        supervisor.restore(&cp.supervision);
        candidates = cp.candidates.clone();
        telemetry = cp.telemetry.clone();
        rounds = cp.rounds;
    }

    let cap_telemetry = |telemetry: &mut Vec<BatchTelemetry>| {
        if let Some(limit) = opts.telemetry_limit {
            while telemetry.len() > limit {
                telemetry.remove(0);
            }
        }
    };

    let save_checkpoint = |tuner: &Autotuner,
                           cache: &EvalCache,
                           candidates: &[TradeoffPoint],
                           telemetry: &[BatchTelemetry],
                           rounds: usize| {
        if let Some(policy) = &opts.checkpoint {
            let cp = SearchCheckpoint {
                version: CHECKPOINT_VERSION,
                qos_min,
                batch_size,
                rounds,
                tuner: tuner.snapshot(),
                cache: cache.snapshot(),
                candidates: candidates.to_vec(),
                telemetry: telemetry.to_vec(),
                supervision: supervisor.snapshot(),
                // `save` seals the written copy.
                fingerprint: 0,
            };
            if let Err(e) = cp.save(&policy.path) {
                eprintln!(
                    "[at-core] checkpoint write to {} failed (continuing): {e}",
                    policy.path.display()
                );
            }
        }
    };

    if rounds == 0 && !seeds.is_empty() {
        let before = cache.stats();
        let results = cache.evaluate_batch_supervised(supervisor, seeds);
        let mut failed = 0usize;
        for (config, result) in seeds.iter().zip(&results) {
            let fitness = supervised_fitness(config, result, qos_min, &mut candidates, &mut failed);
            tuner.report(config, fitness);
        }
        supervisor.note_skipped(failed as u64);
        telemetry.push(round_entry(
            0,
            seeds.len(),
            failed,
            before,
            cache.stats(),
            tuner,
        ));
        rounds += 1;
        cap_telemetry(&mut telemetry);
        if checkpoint_due(&opts.checkpoint, rounds) {
            save_checkpoint(tuner, cache, &candidates, &telemetry, rounds);
        }
    }

    while tuner.continue_tuning() {
        if opts.halt_after_rounds.is_some_and(|h| rounds >= h) {
            halted = true;
            break;
        }
        let proposals = tuner.propose_batch(batch_size);
        if proposals.is_empty() {
            break;
        }
        let configs: Vec<Config> = proposals.iter().map(|p| p.config.clone()).collect();
        let before = cache.stats();
        let results = cache.evaluate_batch_supervised(supervisor, &configs);
        let mut failed = 0usize;
        for (proposal, result) in proposals.iter().zip(&results) {
            let fitness = supervised_fitness(
                &proposal.config,
                result,
                qos_min,
                &mut candidates,
                &mut failed,
            );
            tuner.report_proposal(proposal, fitness);
        }
        supervisor.note_skipped(failed as u64);
        telemetry.push(round_entry(
            rounds,
            proposals.len(),
            failed,
            before,
            cache.stats(),
            tuner,
        ));
        rounds += 1;
        cap_telemetry(&mut telemetry);
        if checkpoint_due(&opts.checkpoint, rounds) {
            save_checkpoint(tuner, cache, &candidates, &telemetry, rounds);
        }
    }

    if halted {
        // A simulated crash still leaves a checkpoint at the exact halt
        // round so resume tests have a well-defined restart point.
        save_checkpoint(tuner, cache, &candidates, &telemetry, rounds);
    }

    SearchOutcome {
        candidates,
        telemetry,
        faults: supervisor.stats(),
        halted,
    }
}

fn checkpoint_due(policy: &Option<CheckpointPolicy>, rounds: usize) -> bool {
    policy
        .as_ref()
        .is_some_and(|p| rounds.is_multiple_of(p.every_rounds.max(1)))
}

/// The shared fitness shape: maximise speedup subject to the QoS
/// constraint; a violated constraint scores by (negative) violation so the
/// search is pulled back toward feasibility. Feasible candidates are
/// collected as tradeoff points; failed candidates are skipped and score
/// [`FAILED_FITNESS`].
fn supervised_fitness(
    config: &Config,
    result: &Result<Evaluation, EvalError>,
    qos_min: f64,
    candidates: &mut Vec<TradeoffPoint>,
    failed: &mut usize,
) -> f64 {
    match result {
        Ok(eval) => {
            if eval.qos > qos_min {
                candidates.push(TradeoffPoint {
                    qos: eval.qos,
                    perf: eval.perf,
                    config: config.clone(),
                });
            }
            if eval.qos >= qos_min {
                eval.perf
            } else {
                eval.qos - qos_min
            }
        }
        Err(_) => {
            *failed += 1;
            FAILED_FITNESS
        }
    }
}

fn round_entry(
    round: usize,
    proposed: usize,
    failed: usize,
    before: CacheStats,
    after: CacheStats,
    tuner: &Autotuner,
) -> BatchTelemetry {
    BatchTelemetry {
        round,
        proposed,
        cached: (after.hits - before.hits) + (after.dedup - before.dedup),
        evaluated: after.misses - before.misses,
        failed,
        // `f64::MIN`, not −∞: telemetry lives inside checkpoints, and the
        // vendored serde_json maps non-finite floats to `null`.
        best_fitness: tuner.best().map_or(f64::MIN, |(_, f)| *f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobId;
    use crate::search::SearchSpace;
    use crate::supervise::SupervisionPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A pure synthetic evaluator that counts its invocations.
    struct CountingEvaluator {
        calls: AtomicUsize,
    }

    impl Evaluator for CountingEvaluator {
        fn evaluate(&self, config: &Config) -> Result<Evaluation, TensorError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            // A deterministic, position-weighted landscape so distinct
            // knob vectors score distinctly.
            let s: u32 = config
                .knobs()
                .iter()
                .enumerate()
                .map(|(i, k)| (i as u32 + 1) * k.0 as u32)
                .sum();
            Ok(Evaluation {
                qos: 100.0 - s as f64,
                perf: 1.0 + 0.3 * s as f64,
            })
        }
    }

    fn tiny_space() -> SearchSpace {
        // 2 tunable nodes × 3 knobs → at most 9 distinct configurations.
        SearchSpace::new(vec![
            (0..3u16).map(KnobId).collect(),
            (0..3u16).map(KnobId).collect(),
        ])
    }

    #[test]
    fn cache_bounds_evaluator_invocations_by_space_size() {
        let space = tiny_space();
        let mut tuner = Autotuner::new(space, 300, 300, 11);
        let evaluator = CountingEvaluator {
            calls: AtomicUsize::new(0),
        };
        let mut cache = EvalCache::new();
        let sup = SupervisedEvaluator::new(&evaluator, SupervisionPolicy::default());
        let outcome = run_batched_search(
            &mut tuner,
            &sup,
            &mut cache,
            &[],
            &SearchOptions::new(90.0, 16),
            None,
        );
        let calls = evaluator.calls.load(Ordering::SeqCst);
        let stats = cache.stats();
        assert!(calls <= 9, "evaluator ran {calls} times for ≤ 9 configs");
        assert_eq!(calls, stats.misses, "misses must equal real invocations");
        assert_eq!(calls, cache.len());
        assert!(stats.hits > 0, "300 iterations over 9 configs must hit");
        assert_eq!(stats.lookups(), tuner.iterations());
        assert!(!outcome.telemetry.is_empty());
        assert!(stats.hit_rate() > 0.9, "hit rate {}", stats.hit_rate());
    }

    #[test]
    fn batch_evaluations_preserve_input_order_and_dedup() {
        let evaluator = CountingEvaluator {
            calls: AtomicUsize::new(0),
        };
        let mut cache = EvalCache::new();
        let a = Config::from_knobs(vec![KnobId(0), KnobId(2)]);
        let b = Config::from_knobs(vec![KnobId(1), KnobId(1)]);
        let batch = vec![a.clone(), b.clone(), a.clone()];
        let evals = cache.evaluate_batch(&evaluator, &batch).unwrap();
        assert_eq!(evals[0], evals[2], "same config, same evaluation");
        assert_ne!(evals[0], evals[1]);
        assert_eq!(evaluator.calls.load(Ordering::SeqCst), 2);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                dedup: 1
            }
        );
        // A second batch of known configs is served entirely from memory.
        let again = cache.evaluate_batch(&evaluator, &batch).unwrap();
        assert_eq!(again, evals);
        assert_eq!(evaluator.calls.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn batched_evaluation_overlaps_evaluator_latency() {
        // A latency-bound evaluator (the empirical path measuring a real
        // program, a remote device, I/O) must be overlapped by the batch
        // path: 16 distinct configs at 10 ms each take ~160 ms
        // sequentially, so with 8 evaluation threads the wall clock must
        // drop at least 2x. This holds even on a single-core machine
        // because the latency, not the CPU, is the bottleneck.
        struct Sleepy;
        impl Evaluator for Sleepy {
            fn evaluate(&self, config: &Config) -> Result<Evaluation, TensorError> {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(Evaluation {
                    qos: f64::from(config.knobs()[0].0),
                    perf: 1.0,
                })
            }
        }
        let configs: Vec<Config> = (0..16u16)
            .map(|i| Config::from_knobs(vec![KnobId(i)]))
            .collect();
        let timed = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut cache = EvalCache::new();
            let started = std::time::Instant::now();
            pool.install(|| cache.evaluate_batch(&Sleepy, &configs))
                .expect("batch");
            started.elapsed().as_secs_f64()
        };
        let single = timed(1);
        let multi = timed(8);
        assert!(
            multi * 2.0 <= single,
            "expected >=2x batch throughput with 8 threads: single {single:.3}s, multi {multi:.3}s"
        );
    }

    #[test]
    fn capacity_bound_evicts_fifo_and_counts() {
        let evaluator = CountingEvaluator {
            calls: AtomicUsize::new(0),
        };
        let mut cache = EvalCache::with_capacity_limit(2);
        let configs: Vec<Config> = (0..3u16)
            .map(|i| Config::from_knobs(vec![KnobId(i)]))
            .collect();
        let evals = cache.evaluate_batch(&evaluator, &configs).unwrap();
        assert_eq!(evals.len(), 3, "results are complete despite the bound");
        assert_eq!(cache.len(), 2, "cache trimmed to capacity");
        assert_eq!(cache.evictions(), 1);
        // The oldest entry (config 0) was evicted: re-proposing it is a
        // fresh miss; the surviving two are hits.
        let calls_before = evaluator.calls.load(Ordering::SeqCst);
        cache.evaluate_batch(&evaluator, &configs).unwrap();
        assert_eq!(evaluator.calls.load(Ordering::SeqCst), calls_before + 1);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn telemetry_limit_caps_retained_rounds() {
        let evaluator = CountingEvaluator {
            calls: AtomicUsize::new(0),
        };
        let mut tuner = Autotuner::new(tiny_space(), 60, 60, 7);
        let mut cache = EvalCache::new();
        let sup = SupervisedEvaluator::new(&evaluator, SupervisionPolicy::default());
        let mut opts = SearchOptions::new(90.0, 4);
        opts.telemetry_limit = Some(3);
        let outcome = run_batched_search(&mut tuner, &sup, &mut cache, &[], &opts, None);
        assert!(outcome.telemetry.len() <= 3, "telemetry exceeded the cap");
        // Round indices keep counting past the eviction window.
        let last = outcome.telemetry.last().expect("rounds ran");
        assert!(
            last.round + 1 >= tuner.iterations() / 4,
            "round index {} does not reflect evicted rounds",
            last.round
        );
    }

    #[test]
    fn batched_search_matches_sequential_iteration_budget() {
        // batch_size 1 must behave like the classic loop: the iteration
        // count respects max_iterations exactly.
        for batch in [1usize, 7, 16] {
            let evaluator = CountingEvaluator {
                calls: AtomicUsize::new(0),
            };
            let mut tuner = Autotuner::new(tiny_space(), 50, 50, 3);
            let mut cache = EvalCache::new();
            let sup = SupervisedEvaluator::new(&evaluator, SupervisionPolicy::default());
            run_batched_search(
                &mut tuner,
                &sup,
                &mut cache,
                &[],
                &SearchOptions::new(90.0, batch),
                None,
            );
            assert!(
                tuner.iterations() <= 50,
                "batch {batch}: iterations {} exceed the budget",
                tuner.iterations()
            );
        }
    }
}
