//! Supervised candidate evaluation: isolation, retry, quarantine.
//!
//! The batch driver in [`crate::evaluate`] hands every candidate to a
//! [`SupervisedEvaluator`] instead of calling the raw evaluator directly.
//! Supervision provides four guarantees the long-running tuning phases
//! need (ISSUE 3):
//!
//! 1. **Isolation** — a panicking evaluation is caught per candidate
//!    (`catch_unwind`), so one bad measurement cannot abort a round.
//! 2. **Retry with bounded backoff** — transient failures are retried up
//!    to an attempt budget; backoff doubles but is capped so a fault storm
//!    cannot stall the campaign.
//! 3. **Quarantine** — configs that exhaust their budget repeatedly are
//!    quarantined and refused instantly on later proposals, so the bandit
//!    cannot keep burning the budget on a poisoned corner of the space.
//! 4. **Sanitisation** — non-finite QoS/perf readings become typed
//!    [`EvalError::NonFinite`] values; they never enter the
//!    [`crate::evaluate::EvalCache`] or the Pareto front.
//!
//! Determinism: attempt indices are tracked *per config* and persist in
//! checkpoints, so a resumed campaign replays the same
//! `(config, attempt)` fault draws as an uninterrupted one.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::config::Config;
use crate::evaluate::{AttemptEvaluator, Evaluation};
use crate::fault::InjectedPanic;
use at_tensor::TensorError;

/// Why a supervised evaluation failed for good.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The underlying evaluator returned an error on every attempt; this
    /// is the last one.
    Tensor(TensorError),
    /// The evaluation panicked on every attempt; `detail` describes the
    /// last payload.
    Panicked {
        /// Rendered panic payload.
        detail: String,
    },
    /// The evaluator answered, but with non-finite QoS or performance.
    NonFinite {
        /// Reported QoS (possibly NaN/±inf).
        qos: f64,
        /// Reported relative performance (possibly NaN/±inf).
        perf: f64,
    },
    /// The config is quarantined after repeated budget exhaustion; it was
    /// refused without running.
    Quarantined,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Tensor(e) => write!(f, "evaluation failed: {e}"),
            EvalError::Panicked { detail } => write!(f, "evaluation panicked: {detail}"),
            EvalError::NonFinite { qos, perf } => {
                write!(f, "non-finite evaluation (qos={qos}, perf={perf})")
            }
            EvalError::Quarantined => write!(f, "config is quarantined"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Retry/quarantine policy for supervised evaluation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SupervisionPolicy {
    /// Attempts per candidate per round (≥ 1).
    pub max_attempts: u32,
    /// Initial retry backoff, milliseconds (doubles per retry).
    pub backoff_ms: u64,
    /// Backoff cap, milliseconds.
    pub max_backoff_ms: u64,
    /// Rounds of budget exhaustion before a config is quarantined.
    pub quarantine_threshold: u32,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            max_attempts: 4,
            backoff_ms: 1,
            max_backoff_ms: 8,
            quarantine_threshold: 1,
        }
    }
}

/// Counters describing what supervision absorbed during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Evaluation attempts actually executed.
    pub attempts: u64,
    /// Retries (attempts beyond the first for a candidate in a round).
    pub retries: u64,
    /// Typed evaluator errors caught.
    pub errors_caught: u64,
    /// Panics caught and contained.
    pub panics_caught: u64,
    /// Evaluations discarded for non-finite QoS/perf.
    pub poisoned: u64,
    /// Candidates that exhausted their attempt budget in some round.
    pub exhausted: u64,
    /// Configs currently quarantined.
    pub quarantined: u64,
    /// Evaluations refused because the config was already quarantined.
    pub quarantine_hits: u64,
    /// Candidates skipped by the driver (failed for good in a round).
    pub skipped: u64,
}

impl FaultStats {
    /// Total faults absorbed (errors + panics + poisoned readings).
    pub fn faults_absorbed(&self) -> u64 {
        self.errors_caught + self.panics_caught + self.poisoned
    }

    /// Accumulates `other` into `self`, except `quarantined` which is a
    /// level, not a counter (the caller sets it from the quarantine set).
    fn merge(&mut self, other: &FaultStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.errors_caught += other.errors_caught;
        self.panics_caught += other.panics_caught;
        self.poisoned += other.poisoned;
        self.exhausted += other.exhausted;
        self.quarantine_hits += other.quarantine_hits;
        self.skipped += other.skipped;
    }
}

/// Mutable supervision state, serialisable for checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SupervisionSnapshot {
    /// Accumulated counters.
    pub stats: FaultStats,
    /// Quarantined configs, sorted by knob vector for determinism.
    pub quarantine: Vec<Config>,
    /// Budget-exhaustion counts per config (sorted), for configs not yet
    /// over the quarantine threshold.
    pub failures: Vec<(Config, u32)>,
    /// Next attempt index per config (sorted), so resumed runs replay the
    /// same `(config, attempt)` fault draws.
    pub attempt_base: Vec<(Config, u32)>,
}

struct SupState {
    stats: FaultStats,
    quarantine: HashSet<Config>,
    failures: HashMap<Config, u32>,
    attempt_base: HashMap<Config, u32>,
}

/// Wraps an [`AttemptEvaluator`] with isolation, retry, quarantine and
/// sanitisation. Shared across the batch driver's worker threads; the
/// internal mutex guards only bookkeeping, never an in-flight evaluation.
pub struct SupervisedEvaluator<'a, E: AttemptEvaluator> {
    inner: &'a E,
    policy: SupervisionPolicy,
    state: Mutex<SupState>,
}

impl<'a, E: AttemptEvaluator> SupervisedEvaluator<'a, E> {
    /// Supervises `inner` under `policy`.
    pub fn new(inner: &'a E, policy: SupervisionPolicy) -> Self {
        SupervisedEvaluator {
            inner,
            policy,
            state: Mutex::new(SupState {
                stats: FaultStats::default(),
                quarantine: HashSet::new(),
                failures: HashMap::new(),
                attempt_base: HashMap::new(),
            }),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SupervisionPolicy {
        self.policy
    }

    /// Evaluates `config` under supervision: up to `max_attempts` isolated
    /// attempts with bounded backoff, refusing quarantined configs and
    /// rejecting non-finite readings.
    pub fn evaluate(&self, config: &Config) -> Result<Evaluation, EvalError> {
        let base = {
            let mut st = self.state.lock().expect("supervision state poisoned");
            if st.quarantine.contains(config) {
                st.stats.quarantine_hits += 1;
                return Err(EvalError::Quarantined);
            }
            *st.attempt_base.get(config).unwrap_or(&0)
        };

        // Run the attempts without holding the lock; accumulate locally.
        let mut local = FaultStats::default();
        let mut backoff = self.policy.backoff_ms;
        let mut outcome = Err(EvalError::Panicked {
            detail: "no attempts executed".into(),
        });
        let attempts = self.policy.max_attempts.max(1);
        for i in 0..attempts {
            if i > 0 {
                local.retries += 1;
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                backoff = (backoff.saturating_mul(2)).min(self.policy.max_backoff_ms);
            }
            local.attempts += 1;
            let attempt = base + i;
            match catch_unwind(AssertUnwindSafe(|| {
                self.inner.evaluate_attempt(config, attempt)
            })) {
                Ok(Ok(e)) if e.qos.is_finite() && e.perf.is_finite() => {
                    outcome = Ok(e);
                    break;
                }
                Ok(Ok(e)) => {
                    local.poisoned += 1;
                    outcome = Err(EvalError::NonFinite {
                        qos: e.qos,
                        perf: e.perf,
                    });
                }
                Ok(Err(e)) => {
                    local.errors_caught += 1;
                    outcome = Err(EvalError::Tensor(e));
                }
                Err(payload) => {
                    local.panics_caught += 1;
                    outcome = Err(EvalError::Panicked {
                        detail: describe_panic(&payload),
                    });
                }
            }
        }

        let mut st = self.state.lock().expect("supervision state poisoned");
        st.stats.merge(&local);
        // Advance the per-config attempt cursor past everything we drew,
        // so a later round (or a resumed run) sees fresh fault draws.
        let consumed = local.attempts.min(u32::MAX as u64) as u32;
        st.attempt_base.insert(config.clone(), base + consumed);
        if outcome.is_err() {
            st.stats.exhausted += 1;
            let n = st.failures.entry(config.clone()).or_insert(0);
            *n += 1;
            if *n >= self.policy.quarantine_threshold {
                st.quarantine.insert(config.clone());
                st.failures.remove(config);
            }
            st.stats.quarantined = st.quarantine.len() as u64;
        }
        outcome
    }

    /// Accumulated counters (with `quarantined` set to the current level).
    pub fn stats(&self) -> FaultStats {
        let st = self.state.lock().expect("supervision state poisoned");
        let mut s = st.stats;
        s.quarantined = st.quarantine.len() as u64;
        s
    }

    /// Records `n` driver-level skips (candidates dropped from a round).
    pub fn note_skipped(&self, n: u64) {
        self.state
            .lock()
            .expect("supervision state poisoned")
            .stats
            .skipped += n;
    }

    /// Serialisable snapshot of all supervision state (sorted, so two
    /// identical runs snapshot identically despite hash-map internals).
    pub fn snapshot(&self) -> SupervisionSnapshot {
        let st = self.state.lock().expect("supervision state poisoned");
        let sort_key = |c: &Config| c.knobs().to_vec();
        let mut quarantine: Vec<Config> = st.quarantine.iter().cloned().collect();
        quarantine.sort_by_key(sort_key);
        let mut failures: Vec<(Config, u32)> =
            st.failures.iter().map(|(c, n)| (c.clone(), *n)).collect();
        failures.sort_by_key(|(c, _)| sort_key(c));
        let mut attempt_base: Vec<(Config, u32)> = st
            .attempt_base
            .iter()
            .map(|(c, n)| (c.clone(), *n))
            .collect();
        attempt_base.sort_by_key(|(c, _)| sort_key(c));
        let mut stats = st.stats;
        stats.quarantined = st.quarantine.len() as u64;
        SupervisionSnapshot {
            stats,
            quarantine,
            failures,
            attempt_base,
        }
    }

    /// Restores state captured by [`SupervisedEvaluator::snapshot`].
    pub fn restore(&self, snap: &SupervisionSnapshot) {
        let mut st = self.state.lock().expect("supervision state poisoned");
        st.stats = snap.stats;
        st.quarantine = snap.quarantine.iter().cloned().collect();
        st.failures = snap.failures.iter().cloned().collect();
        st.attempt_base = snap.attempt_base.iter().cloned().collect();
    }
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic (attempt {})", p.attempt)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::fault::{FaultMix, FaultPlan, FaultyEvaluator};
    use crate::knobs::KnobId;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Good;
    impl Evaluator for Good {
        fn evaluate(&self, _: &Config) -> Result<Evaluation, TensorError> {
            Ok(Evaluation {
                qos: 95.0,
                perf: 2.0,
            })
        }
    }

    /// Fails the first `fail_first` calls, then succeeds.
    struct FlakyN {
        fail_first: u64,
        calls: AtomicU64,
    }
    impl Evaluator for FlakyN {
        fn evaluate(&self, _: &Config) -> Result<Evaluation, TensorError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(TensorError::Transient {
                    detail: format!("flaky call {n}"),
                })
            } else {
                Ok(Evaluation {
                    qos: 90.0,
                    perf: 1.2,
                })
            }
        }
    }

    struct AlwaysPanics;
    impl Evaluator for AlwaysPanics {
        fn evaluate(&self, _: &Config) -> Result<Evaluation, TensorError> {
            panic!("genuine bug");
        }
    }

    fn cfg(x: u16) -> Config {
        Config::from_knobs(vec![KnobId(x)])
    }

    fn quiet_policy() -> SupervisionPolicy {
        SupervisionPolicy {
            backoff_ms: 0,
            ..SupervisionPolicy::default()
        }
    }

    #[test]
    fn clean_evaluator_passes_through() {
        let sup = SupervisedEvaluator::new(&Good, quiet_policy());
        let e = sup.evaluate(&cfg(1)).unwrap();
        assert_eq!(e.qos, 95.0);
        let s = sup.stats();
        assert_eq!(s.attempts, 1);
        assert_eq!(s.retries, 0);
        assert_eq!(s.faults_absorbed(), 0);
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let flaky = FlakyN {
            fail_first: 2,
            calls: AtomicU64::new(0),
        };
        let sup = SupervisedEvaluator::new(&flaky, quiet_policy());
        let e = sup.evaluate(&cfg(1)).unwrap();
        assert_eq!(e.perf, 1.2);
        let s = sup.stats();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.errors_caught, 2);
        assert_eq!(s.exhausted, 0);
    }

    #[test]
    fn panics_are_contained_and_budget_respected() {
        let sup = SupervisedEvaluator::new(&AlwaysPanics, quiet_policy());
        let err = sup.evaluate(&cfg(1)).unwrap_err();
        assert!(matches!(err, EvalError::Panicked { .. }), "{err}");
        let s = sup.stats();
        assert_eq!(s.attempts, 4);
        assert_eq!(s.panics_caught, 4);
        assert_eq!(s.exhausted, 1);
    }

    #[test]
    fn exhausted_configs_are_quarantined_and_refused() {
        let sup = SupervisedEvaluator::new(&AlwaysPanics, quiet_policy());
        assert!(sup.evaluate(&cfg(7)).is_err());
        // Default threshold quarantines after one exhausted round.
        let err = sup.evaluate(&cfg(7)).unwrap_err();
        assert_eq!(err, EvalError::Quarantined);
        let s = sup.stats();
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.quarantine_hits, 1);
        // The quarantined retry did not run any attempts.
        assert_eq!(s.attempts, 4);
    }

    #[test]
    fn non_finite_evaluations_become_typed_errors() {
        struct Poison;
        impl Evaluator for Poison {
            fn evaluate(&self, _: &Config) -> Result<Evaluation, TensorError> {
                Ok(Evaluation {
                    qos: f64::NAN,
                    perf: 1.0,
                })
            }
        }
        let sup = SupervisedEvaluator::new(&Poison, quiet_policy());
        let err = sup.evaluate(&cfg(1)).unwrap_err();
        assert!(matches!(err, EvalError::NonFinite { .. }), "{err}");
        assert_eq!(sup.stats().poisoned, 4);
    }

    #[test]
    fn injected_faults_recover_within_budget() {
        let plan = FaultPlan {
            rate: 0.4,
            seed: 11,
            mix: FaultMix::errors_only(),
            stall_ms: 0,
        };
        let faulty = FaultyEvaluator::new(&Good, plan);
        let sup = SupervisedEvaluator::new(&faulty, quiet_policy());
        let mut ok = 0;
        for x in 0..100u16 {
            if sup.evaluate(&cfg(x)).is_ok() {
                ok += 1;
            }
        }
        // P(4 consecutive faults) = 0.4^4 ≈ 2.6%; nearly all succeed.
        assert!(ok >= 90, "only {ok}/100 recovered");
        assert!(sup.stats().errors_caught > 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_attempt_cursors() {
        let flaky = FlakyN {
            fail_first: 2,
            calls: AtomicU64::new(0),
        };
        let sup = SupervisedEvaluator::new(&flaky, quiet_policy());
        sup.evaluate(&cfg(1)).unwrap();
        let snap = sup.snapshot();
        assert_eq!(snap.attempt_base, vec![(cfg(1), 3)]);

        let sup2 = SupervisedEvaluator::new(&Good, quiet_policy());
        sup2.restore(&snap);
        assert_eq!(sup2.snapshot(), snap);
        assert_eq!(sup2.stats(), sup.stats());
    }
}
