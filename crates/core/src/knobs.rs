//! The integer knob registry (paper §2.1 / §2.3).
//!
//! "An approximation knob is a discrete-valued parameter of an
//! approximation method (represented using integers in ApproxTuner) … A
//! zero value denotes no approximation."
//!
//! Per-op knob counts match the paper, extended with the LUT-based
//! approximate-multiplier family (AdaPT-style; see `at_tensor::lut`):
//! * **convolution** — FP32 (knob 0), FP16, 9 filter-sampling × {fp32,fp16},
//!   18 perforation × {fp32,fp16}, 7 PROMISE levels, 3 LUT-multiplier
//!   bitwidths: `2 + 18 + 36 + 7 + 3 = 66`;
//! * **reduction** — {exact, 3 sampling ratios} × {fp32, fp16}: `8`;
//! * **other ops** — {fp32, fp16}: `2`;
//! * **dense** — {fp32, fp16} at development time, plus the 7 PROMISE
//!   levels at install time (PROMISE accelerates matrix multiplications)
//!   and the 3 LUT-multiplier bitwidths: `12`.

use at_ir::{ApproxChoice, Graph, NodeId, OpClass};
use at_promise::VoltageLevel;
use at_tensor::{ConvApprox, MulApprox, Precision, ReduceApprox};
use serde::{Deserialize, Serialize};

/// Index of a knob within an op class's knob list. Knob 0 is always the
/// exact FP32 baseline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct KnobId(pub u16);

impl KnobId {
    /// The no-approximation knob.
    pub const BASELINE: KnobId = KnobId(0);
}

/// Which knobs are in play: development-time tuning uses only
/// hardware-independent knobs; install-time tuning adds hardware-specific
/// ones (PROMISE).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum KnobSet {
    /// Hardware-independent knobs only (development time).
    HardwareIndependent,
    /// All knobs, including PROMISE voltage levels (install time).
    WithHardware,
}

/// A single knob: an integer id bound to a decoded approximation mechanism.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Knob {
    /// Integer identifier (0 = baseline).
    pub id: KnobId,
    /// Decoded mechanism applied at execution time.
    pub choice: ApproxChoice,
    /// Short mnemonic (used in Table 3-style reports).
    pub label: String,
    /// Whether this knob requires hardware support not known at
    /// development time (true only for PROMISE levels).
    pub hardware_specific: bool,
}

/// The per-class knob tables.
#[derive(Clone, Debug)]
pub struct KnobRegistry {
    conv: Vec<Knob>,
    dense: Vec<Knob>,
    reduction: Vec<Knob>,
    other: Vec<Knob>,
}

fn knob(id: usize, choice: ApproxChoice, label: String, hw: bool) -> Knob {
    Knob {
        id: KnobId(id as u16),
        choice,
        label,
        hardware_specific: hw,
    }
}

impl Default for KnobRegistry {
    fn default() -> Self {
        KnobRegistry::new()
    }
}

impl KnobRegistry {
    /// Builds the paper's knob tables.
    pub fn new() -> KnobRegistry {
        let mut conv = Vec::with_capacity(66);
        // Knob 0/1: exact FP32 / FP16.
        conv.push(knob(0, ApproxChoice::BASELINE, "fp32".into(), false));
        conv.push(knob(1, ApproxChoice::FP16, "fp16".into(), false));
        // Filter sampling and perforation, each in FP32 and FP16 variants.
        for prec in Precision::ALL {
            let ptag = match prec {
                Precision::Fp32 => "fp32",
                Precision::Fp16 => "fp16",
            };
            for a in ConvApprox::all_filter_sampling() {
                if let ConvApprox::FilterSampling { k, offset } = a {
                    conv.push(knob(
                        conv.len(),
                        ApproxChoice::digital(a, ReduceApprox::Exact, prec),
                        format!("samp-{}%-o{offset}-{ptag}", 100 / k),
                        false,
                    ));
                }
            }
            for a in ConvApprox::all_perforation() {
                if let ConvApprox::Perforation { dim, k, offset } = a {
                    let d = match dim {
                        at_tensor::PerforationDim::Row => "row",
                        at_tensor::PerforationDim::Col => "col",
                    };
                    conv.push(knob(
                        conv.len(),
                        ApproxChoice::digital(a, ReduceApprox::Exact, prec),
                        format!("perf-{}%-{d}-o{offset}-{ptag}", 100 / k),
                        false,
                    ));
                }
            }
        }
        // PROMISE voltage levels.
        for level in VoltageLevel::ALL {
            conv.push(knob(
                conv.len(),
                ApproxChoice::Promise(level),
                format!("promise-P{}", level.index()),
                true,
            ));
        }
        // LUT approximate-multiplier bitwidths. The emulated multiplier has
        // hardware-*independent* semantics (the truth table fixes its
        // numerical effect), so these are development-time knobs; only the
        // speed/energy benefit is hardware-specific, priced by `at-hw`.
        for mul in MulApprox::ALL_LUT {
            if let MulApprox::Lut { bits } = mul {
                conv.push(knob(
                    conv.len(),
                    ApproxChoice::digital_mul(
                        ConvApprox::Exact,
                        ReduceApprox::Exact,
                        Precision::Fp32,
                        mul,
                    ),
                    format!("lutmul-{bits}b"),
                    false,
                ));
            }
        }
        debug_assert_eq!(conv.len(), 66);

        let mut dense = vec![
            knob(0, ApproxChoice::BASELINE, "fp32".into(), false),
            knob(1, ApproxChoice::FP16, "fp16".into(), false),
        ];
        for level in VoltageLevel::ALL {
            dense.push(knob(
                dense.len(),
                ApproxChoice::Promise(level),
                format!("promise-P{}", level.index()),
                true,
            ));
        }
        for mul in MulApprox::ALL_LUT {
            if let MulApprox::Lut { bits } = mul {
                dense.push(knob(
                    dense.len(),
                    ApproxChoice::digital_mul(
                        ConvApprox::Exact,
                        ReduceApprox::Exact,
                        Precision::Fp32,
                        mul,
                    ),
                    format!("lutmul-{bits}b"),
                    false,
                ));
            }
        }
        debug_assert_eq!(dense.len(), 12);

        let mut reduction = Vec::with_capacity(8);
        for prec in Precision::ALL {
            let ptag = match prec {
                Precision::Fp32 => "fp32",
                Precision::Fp16 => "fp16",
            };
            reduction.push(knob(
                reduction.len(),
                ApproxChoice::digital(ConvApprox::Exact, ReduceApprox::Exact, prec),
                format!("red-exact-{ptag}"),
                false,
            ));
            for a in ReduceApprox::ALL_SAMPLING {
                if let ReduceApprox::Sampling { num, den } = a {
                    reduction.push(knob(
                        reduction.len(),
                        ApproxChoice::digital(ConvApprox::Exact, a, prec),
                        format!("red-{}%-{ptag}", 100 * num / den),
                        false,
                    ));
                }
            }
        }
        debug_assert_eq!(reduction.len(), 8);

        let other = vec![
            knob(0, ApproxChoice::BASELINE, "fp32".into(), false),
            knob(1, ApproxChoice::FP16, "fp16".into(), false),
        ];

        KnobRegistry {
            conv,
            dense,
            reduction,
            other,
        }
    }

    /// The knob table for an op class (Input gets the single baseline knob).
    pub fn table(&self, class: OpClass) -> &[Knob] {
        match class {
            OpClass::Conv => &self.conv,
            OpClass::Dense => &self.dense,
            OpClass::Reduction => &self.reduction,
            OpClass::Other => &self.other,
            OpClass::Input => &self.other[..1],
        }
    }

    /// Knobs of a class filtered to a knob set.
    pub fn knobs(&self, class: OpClass, set: KnobSet) -> Vec<&Knob> {
        self.table(class)
            .iter()
            .filter(|k| set == KnobSet::WithHardware || !k.hardware_specific)
            .collect()
    }

    /// Decodes a knob id for an op class into its execution mechanism.
    /// Out-of-range ids decode to the baseline.
    pub fn decode(&self, class: OpClass, id: KnobId) -> ApproxChoice {
        self.table(class)
            .get(id.0 as usize)
            .map(|k| k.choice)
            .unwrap_or(ApproxChoice::BASELINE)
    }

    /// The label of a knob.
    pub fn label(&self, class: OpClass, id: KnobId) -> &str {
        self.table(class)
            .get(id.0 as usize)
            .map(|k| k.label.as_str())
            .unwrap_or("fp32")
    }

    /// Per-node knob lists for a whole graph under a knob set.
    pub fn node_knobs(&self, graph: &Graph, set: KnobSet) -> Vec<Vec<KnobId>> {
        graph
            .nodes()
            .iter()
            .map(|n| self.knobs(n.op.class(), set).iter().map(|k| k.id).collect())
            .collect()
    }

    /// log10 of the configuration search-space size (Table 1's last
    /// column). Computed in log space because e.g. ResNet-50's space is
    /// ~1e91.
    pub fn search_space_log10(&self, graph: &Graph, set: KnobSet) -> f64 {
        graph
            .nodes()
            .iter()
            .map(|n| {
                let cnt = self.knobs(n.op.class(), set).len().max(1);
                (cnt as f64).log10()
            })
            .sum()
    }

    /// Decodes a whole configuration (one knob per node) into per-node
    /// execution choices, coercing illegal ids to the baseline.
    pub fn decode_config(&self, graph: &Graph, knobs: &[KnobId]) -> Vec<ApproxChoice> {
        graph
            .nodes()
            .iter()
            .map(|n| {
                let id = knobs
                    .get(n.id.0 as usize)
                    .copied()
                    .unwrap_or(KnobId::BASELINE);
                self.decode(n.op.class(), id)
            })
            .collect()
    }
}

/// Ids of nodes whose knob table has more than one entry — the tunable
/// dimensions of the search space.
pub fn tunable_dims(registry: &KnobRegistry, graph: &Graph, set: KnobSet) -> Vec<NodeId> {
    graph
        .nodes()
        .iter()
        .filter(|n| registry.knobs(n.op.class(), set).len() > 1)
        .map(|n| n.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_knob_counts() {
        let r = KnobRegistry::new();
        assert_eq!(r.table(OpClass::Conv).len(), 66);
        assert_eq!(r.table(OpClass::Reduction).len(), 8);
        assert_eq!(r.table(OpClass::Other).len(), 2);
        assert_eq!(r.table(OpClass::Dense).len(), 12);
        // Development-time (hardware-independent) conv knobs: 66 - 7 PROMISE.
        assert_eq!(
            r.knobs(OpClass::Conv, KnobSet::HardwareIndependent).len(),
            59
        );
        assert_eq!(r.knobs(OpClass::Conv, KnobSet::WithHardware).len(), 66);
    }

    #[test]
    fn lutmul_knobs_registered_and_graded() {
        let r = KnobRegistry::new();
        for class in [OpClass::Conv, OpClass::Dense] {
            let luts: Vec<_> = r
                .table(class)
                .iter()
                .filter(|k| k.label.starts_with("lutmul-"))
                .collect();
            assert_eq!(luts.len(), 3, "{class:?}");
            assert!(luts.iter().all(|k| !k.hardware_specific));
            let bits: Vec<u8> = luts
                .iter()
                .map(|k| match k.choice {
                    ApproxChoice::Digital {
                        mul: MulApprox::Lut { bits },
                        ..
                    } => bits,
                    other => panic!("lutmul knob decodes to {other:?}"),
                })
                .collect();
            assert_eq!(bits, vec![8, 6, 4]);
        }
    }

    #[test]
    fn knob_zero_is_baseline_everywhere() {
        let r = KnobRegistry::new();
        for class in [
            OpClass::Conv,
            OpClass::Dense,
            OpClass::Reduction,
            OpClass::Other,
            OpClass::Input,
        ] {
            assert_eq!(r.decode(class, KnobId::BASELINE), ApproxChoice::BASELINE);
        }
    }

    #[test]
    fn ids_are_positional() {
        let r = KnobRegistry::new();
        for (i, k) in r.table(OpClass::Conv).iter().enumerate() {
            assert_eq!(k.id.0 as usize, i);
        }
    }

    #[test]
    fn out_of_range_decodes_to_baseline() {
        let r = KnobRegistry::new();
        assert_eq!(r.decode(OpClass::Other, KnobId(99)), ApproxChoice::BASELINE);
    }

    #[test]
    fn labels_distinct_within_class() {
        let r = KnobRegistry::new();
        let labels: std::collections::HashSet<_> =
            r.table(OpClass::Conv).iter().map(|k| &k.label).collect();
        assert_eq!(labels.len(), 66, "labels must be unique");
    }

    #[test]
    fn promise_knobs_marked_hardware_specific() {
        let r = KnobRegistry::new();
        let hw: Vec<_> = r
            .table(OpClass::Conv)
            .iter()
            .filter(|k| k.hardware_specific)
            .collect();
        assert_eq!(hw.len(), 7);
        assert!(hw
            .iter()
            .all(|k| matches!(k.choice, ApproxChoice::Promise(_))));
    }

    #[test]
    fn lenet_search_space_matches_table1_order() {
        // LeNet has 2 convs: dev-time space = 56² · (small factors for the
        // rest) ≈ 3e3 before counting the dense/other knobs; Table 1 says
        // 3e+3. Check the conv-only magnitude.
        let space = 56f64.powi(2);
        assert!((space.log10() - 3e3f64.log10()).abs() < 0.2);
    }
}
