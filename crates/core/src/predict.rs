//! The QoS prediction models Π1 and Π2 (§3.3) with α calibration.
//!
//! Π1 (tensor composition): `QoS(T_base + α·Σ_op ΔT(op, knob), reference)` —
//! sums the per-op raw-output error tensors, adds them to the baseline raw
//! output and applies the QoS function.
//!
//! Π2 (scalar composition): `QoS_base + α·Σ_op ΔQ(op, knob)` — sums the
//! per-op end-to-end QoS losses. Cheaper than Π1 (no tensors) but less
//! precise.
//!
//! Both are linear-regression-style models with a single coefficient `α`
//! refined against a few tens of measured configurations
//! (`Predictor::calibrate`).

use crate::config::Config;
use crate::knobs::KnobId;
use crate::profile::QosProfiles;
use crate::qos::{measure, QosMetric, QosReference};
use at_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which composition model to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PredictionModel {
    /// Π1: tensor-level error composition.
    Pi1,
    /// Π2: scalar QoS-loss composition.
    Pi2,
}

impl PredictionModel {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PredictionModel::Pi1 => "Predictive-Π1",
            PredictionModel::Pi2 => "Predictive-Π2",
        }
    }
}

/// A QoS predictor bound to collected profiles.
pub struct Predictor<'p> {
    profiles: &'p QosProfiles,
    model: PredictionModel,
    metric: QosMetric,
    /// The calibrated coefficient (1.0 until calibrated).
    pub alpha: f64,
}

impl<'p> Predictor<'p> {
    /// Creates a predictor over profiles (α = 1 until calibrated).
    pub fn new(profiles: &'p QosProfiles, model: PredictionModel, metric: QosMetric) -> Self {
        if model == PredictionModel::Pi1 {
            assert!(
                profiles.has_tensor_profiles(),
                "Π1 requires tensor (ΔT) profiles; collect with collect_tensors=true"
            );
        }
        Predictor {
            profiles,
            model,
            metric,
            alpha: 1.0,
        }
    }

    /// Predicted QoS of a configuration at the current α.
    pub fn predict(&self, config: &Config, reference: &QosReference) -> f64 {
        self.predict_at(config, reference, self.alpha)
    }

    /// Predicted QoS at an explicit α (used during calibration).
    pub fn predict_at(&self, config: &Config, reference: &QosReference, alpha: f64) -> f64 {
        match self.model {
            PredictionModel::Pi2 => {
                let sum: f64 = config
                    .knobs()
                    .iter()
                    .enumerate()
                    .map(|(node, &k)| self.profiles.delta_q(node, k))
                    .sum();
                self.profiles.qos_base + alpha * sum
            }
            PredictionModel::Pi1 => {
                // Accumulate Σ ΔT per batch, then measure the QoS of
                // T_base + α·Σ ΔT.
                let n_batches = self.profiles.t_base.len();
                let mut predicted: Vec<Tensor> = self.profiles.t_base.clone();
                for (node, &k) in config.knobs().iter().enumerate() {
                    if k == KnobId::BASELINE {
                        continue;
                    }
                    if let Some(dts) = self.profiles.delta_t(node, k) {
                        for (b, dt) in dts.iter().enumerate().take(n_batches) {
                            // Shapes match by construction of the profiles.
                            let _ = predicted[b].axpy(alpha as f32, dt);
                        }
                    }
                }
                measure(self.metric, &predicted, reference)
            }
        }
    }

    /// Calibrates α against measured (config, real QoS) samples
    /// (Algorithm 1, line 20).
    ///
    /// For Π2 the least-squares solution is closed-form; for Π1 the model
    /// is nonlinear in α, so a golden-section search over `[0, 2]` minimises
    /// the squared prediction error.
    pub fn calibrate(&mut self, samples: &[(Config, f64)], reference: &QosReference) -> f64 {
        if samples.is_empty() {
            return self.alpha;
        }
        match self.model {
            PredictionModel::Pi2 => {
                // real - qos_base ≈ α · Σ ΔQ: α* = Σ x·y / Σ x².
                let mut num = 0.0;
                let mut den = 0.0;
                for (config, real) in samples {
                    let x: f64 = config
                        .knobs()
                        .iter()
                        .enumerate()
                        .map(|(node, &k)| self.profiles.delta_q(node, k))
                        .sum();
                    let y = real - self.profiles.qos_base;
                    num += x * y;
                    den += x * x;
                }
                if den > 1e-12 {
                    // Clamp to a sane band: a negative α would mean errors
                    // *improve* QoS systematically.
                    self.alpha = (num / den).clamp(0.05, 4.0);
                }
            }
            PredictionModel::Pi1 => {
                let sse = |alpha: f64| -> f64 {
                    samples
                        .iter()
                        .map(|(c, real)| {
                            let p = self.predict_at(c, reference, alpha);
                            (p - real).powi(2)
                        })
                        .sum()
                };
                // Golden-section search on [0.05, 2.0].
                let (mut lo, mut hi) = (0.05f64, 2.0f64);
                let phi = 0.618_033_988_75;
                let mut x1 = hi - phi * (hi - lo);
                let mut x2 = lo + phi * (hi - lo);
                let mut f1 = sse(x1);
                let mut f2 = sse(x2);
                for _ in 0..24 {
                    if f1 < f2 {
                        hi = x2;
                        x2 = x1;
                        f2 = f1;
                        x1 = hi - phi * (hi - lo);
                        f1 = sse(x1);
                    } else {
                        lo = x1;
                        x1 = x2;
                        f1 = f2;
                        x2 = lo + phi * (hi - lo);
                        f2 = sse(x2);
                    }
                }
                self.alpha = 0.5 * (lo + hi);
            }
        }
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{KnobRegistry, KnobSet};
    use crate::profile::{collect_profiles, measure_config};
    use at_ir::{execute, ExecOptions, Graph, GraphBuilder};
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Vec<Tensor>, QosReference, KnobRegistry) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new("p", Shape::nchw(16, 2, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .conv(4, 3, (1, 1), (1, 1))
            .relu();
        b.max_pool(2, 2).flatten().dense(5).softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(4);
        let inputs: Vec<Tensor> = (0..2)
            .map(|_| Tensor::uniform(Shape::nchw(16, 2, 8, 8), -1.0, 1.0, &mut rng2))
            .collect();
        let mut labels = Vec::new();
        for bt in &inputs {
            let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            labels.push(
                (0..rows)
                    .map(|r| {
                        let row = &out.data()[r * c..(r + 1) * c];
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0
                    })
                    .collect(),
            );
        }
        (g, inputs, QosReference::Labels(labels), KnobRegistry::new())
    }

    fn profiles(
        g: &Graph,
        r: &KnobRegistry,
        inputs: &[Tensor],
        reference: &QosReference,
    ) -> QosProfiles {
        collect_profiles(
            g,
            r,
            KnobSet::HardwareIndependent,
            inputs,
            QosMetric::Accuracy,
            reference,
            true,
            0,
        )
        .unwrap()
    }

    #[test]
    fn baseline_config_predicts_baseline_qos() {
        let (g, inputs, reference, r) = setup();
        let p = profiles(&g, &r, &inputs, &reference);
        let base = Config::baseline(&g);
        for model in [PredictionModel::Pi1, PredictionModel::Pi2] {
            let pred = Predictor::new(&p, model, QosMetric::Accuracy);
            let q = pred.predict(&base, &reference);
            assert!(
                (q - p.qos_base).abs() < 1e-9,
                "{model:?}: {q} vs base {}",
                p.qos_base
            );
        }
    }

    #[test]
    fn single_knob_prediction_exact_for_pi2_alpha1() {
        // For a single approximated op at α = 1, Π2 is exact by definition.
        let (g, inputs, reference, r) = setup();
        let p = profiles(&g, &r, &inputs, &reference);
        let (node, knob) = p.pairs[7];
        let mut config = Config::baseline(&g);
        config.set_knob(node, knob);
        let pred = Predictor::new(&p, PredictionModel::Pi2, QosMetric::Accuracy);
        let predicted = pred.predict(&config, &reference);
        let real =
            measure_config(&g, &r, &config, &inputs, QosMetric::Accuracy, &reference, 0).unwrap();
        assert!((predicted - real).abs() < 1e-9);
    }

    #[test]
    fn single_knob_prediction_exact_for_pi1_alpha1() {
        // For a single op, T_base + ΔT(op,knob) IS the real output.
        let (g, inputs, reference, r) = setup();
        let p = profiles(&g, &r, &inputs, &reference);
        let (node, knob) = p.pairs[3];
        let mut config = Config::baseline(&g);
        config.set_knob(node, knob);
        let pred = Predictor::new(&p, PredictionModel::Pi1, QosMetric::Accuracy);
        let predicted = pred.predict(&config, &reference);
        let real =
            measure_config(&g, &r, &config, &inputs, QosMetric::Accuracy, &reference, 0).unwrap();
        assert!((predicted - real).abs() < 1e-9);
    }

    #[test]
    fn calibration_improves_pi2_fit() {
        let (g, inputs, reference, r) = setup();
        let p = profiles(&g, &r, &inputs, &reference);
        // Sample multi-knob configs and measure real QoS.
        let nk = r.node_knobs(&g, KnobSet::HardwareIndependent);
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<(Config, f64)> = (0..12)
            .map(|_| {
                let c = Config::random(&nk, &mut rng);
                let q = measure_config(&g, &r, &c, &inputs, QosMetric::Accuracy, &reference, 0)
                    .unwrap();
                (c, q)
            })
            .collect();
        let mut pred = Predictor::new(&p, PredictionModel::Pi2, QosMetric::Accuracy);
        let err = |pr: &Predictor, ss: &[(Config, f64)]| -> f64 {
            ss.iter()
                .map(|(c, real)| (pr.predict(c, &reference) - real).powi(2))
                .sum::<f64>()
        };
        let before = err(&pred, &samples);
        pred.calibrate(&samples, &reference);
        let after = err(&pred, &samples);
        assert!(
            after <= before + 1e-9,
            "calibration worsened fit: {before} → {after}"
        );
        assert!(pred.alpha > 0.0);
    }

    #[test]
    fn pi1_calibration_runs_and_bounds_alpha() {
        let (g, inputs, reference, r) = setup();
        let p = profiles(&g, &r, &inputs, &reference);
        let nk = r.node_knobs(&g, KnobSet::HardwareIndependent);
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<(Config, f64)> = (0..6)
            .map(|_| {
                let c = Config::random(&nk, &mut rng);
                let q = measure_config(&g, &r, &c, &inputs, QosMetric::Accuracy, &reference, 0)
                    .unwrap();
                (c, q)
            })
            .collect();
        let mut pred = Predictor::new(&p, PredictionModel::Pi1, QosMetric::Accuracy);
        let a = pred.calibrate(&samples, &reference);
        assert!((0.05..=2.0).contains(&a));
    }

    #[test]
    #[should_panic(expected = "requires tensor")]
    fn pi1_requires_tensor_profiles() {
        let (g, inputs, reference, r) = setup();
        let p = collect_profiles(
            &g,
            &r,
            KnobSet::HardwareIndependent,
            &inputs,
            QosMetric::Accuracy,
            &reference,
            false,
            0,
        )
        .unwrap();
        let _ = Predictor::new(&p, PredictionModel::Pi1, QosMetric::Accuracy);
    }
}
