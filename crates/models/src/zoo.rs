//! The ten CNN benchmarks of Table 1, built at configurable scale.
//!
//! Architectures follow the published layer structure; channel widths and
//! (for the ImageNet variants) input resolution are reduced so the pure-CPU
//! tensor substrate can evaluate thousands of autotuning configurations in
//! reasonable time. Layer counts — the quantity Table 1 reports and the
//! dimension of the tuner's search space — match the paper.

use at_ir::{Graph, GraphBuilder};
use at_tensor::Shape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifier of a Table 1 benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// AlexNet on CIFAR-10 (6 layers, 79.16%).
    AlexNetCifar10,
    /// AlexNet on ImageNet (8 layers, 55.86%).
    AlexNetImageNet,
    /// AlexNet2 on CIFAR-10 (7 layers, 85.09%).
    AlexNet2,
    /// ResNet-18 on CIFAR-10 (22 layers, 89.44%).
    ResNet18,
    /// ResNet-50 on ImageNet (54 layers, 74.16%).
    ResNet50,
    /// VGG-16 on CIFAR-10 (15 layers, 89.41%).
    Vgg16Cifar10,
    /// VGG-16 on CIFAR-100 (15 layers; baseline accuracy not listed in
    /// Table 1 — we use the HPVM release's 66.2%).
    Vgg16Cifar100,
    /// VGG-16 on ImageNet (15 layers, 72.88%).
    Vgg16ImageNet,
    /// MobileNet on CIFAR-10 (28 layers, 83.69%).
    MobileNet,
    /// LeNet-5 on MNIST (4 layers, 98.70%).
    LeNet,
}

impl BenchmarkId {
    /// All ten benchmarks in the paper's figure order.
    pub const ALL: [BenchmarkId; 10] = [
        BenchmarkId::AlexNetCifar10,
        BenchmarkId::AlexNetImageNet,
        BenchmarkId::AlexNet2,
        BenchmarkId::ResNet18,
        BenchmarkId::ResNet50,
        BenchmarkId::Vgg16Cifar10,
        BenchmarkId::Vgg16Cifar100,
        BenchmarkId::Vgg16ImageNet,
        BenchmarkId::MobileNet,
        BenchmarkId::LeNet,
    ];

    /// Benchmark name as rendered in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::AlexNetCifar10 => "Alexnet",
            BenchmarkId::AlexNetImageNet => "Alexnet_imagenet",
            BenchmarkId::AlexNet2 => "Alexnet2",
            BenchmarkId::ResNet18 => "Resnet18",
            BenchmarkId::ResNet50 => "Resnet50",
            BenchmarkId::Vgg16Cifar10 => "Vgg16_10",
            BenchmarkId::Vgg16Cifar100 => "Vgg16_100",
            BenchmarkId::Vgg16ImageNet => "Vgg16_imagenet",
            BenchmarkId::MobileNet => "Mobilenet",
            BenchmarkId::LeNet => "Lenet",
        }
    }

    /// The dataset name of Table 1.
    pub fn dataset(self) -> &'static str {
        match self {
            BenchmarkId::LeNet => "MNIST",
            BenchmarkId::AlexNetImageNet | BenchmarkId::ResNet50 | BenchmarkId::Vgg16ImageNet => {
                "ImageNet"
            }
            BenchmarkId::Vgg16Cifar100 => "CIFAR-100",
            _ => "CIFAR-10",
        }
    }

    /// The paper's reported FP32 baseline classification accuracy (%),
    /// which the synthetic datasets are calibrated to reproduce.
    pub fn paper_baseline_accuracy(self) -> f64 {
        match self {
            BenchmarkId::AlexNetCifar10 => 79.16,
            BenchmarkId::AlexNetImageNet => 55.86,
            BenchmarkId::AlexNet2 => 85.09,
            BenchmarkId::ResNet18 => 89.44,
            BenchmarkId::ResNet50 => 74.16,
            BenchmarkId::Vgg16Cifar10 => 89.41,
            BenchmarkId::Vgg16Cifar100 => 66.20,
            BenchmarkId::Vgg16ImageNet => 72.88,
            BenchmarkId::MobileNet => 83.69,
            BenchmarkId::LeNet => 98.70,
        }
    }

    /// The paper's reported conv+dense layer count (Table 1).
    pub fn paper_layers(self) -> usize {
        match self {
            BenchmarkId::AlexNetCifar10 => 6,
            BenchmarkId::AlexNetImageNet => 8,
            BenchmarkId::AlexNet2 => 7,
            BenchmarkId::ResNet18 => 22,
            BenchmarkId::ResNet50 => 54,
            BenchmarkId::Vgg16Cifar10 | BenchmarkId::Vgg16Cifar100 | BenchmarkId::Vgg16ImageNet => {
                15
            }
            BenchmarkId::MobileNet => 28,
            BenchmarkId::LeNet => 4,
        }
    }

    /// Nominal exact-configuration service time of one inference request,
    /// seconds, on the reference (undisturbed, full-frequency) device.
    /// A fixed per-request overhead plus a per-layer cost, anchored to the
    /// paper's layer counts (Table 1) — the fleet simulator's per-tenant
    /// cost model, deliberately simple so fleet runs stay a pure function
    /// of zoo metadata.
    pub fn nominal_service_time_s(self) -> f64 {
        0.004 + 0.0015 * self.paper_layers() as f64
    }

    /// The paper's reported auto-tuning search-space size (Table 1).
    pub fn paper_search_space(self) -> f64 {
        match self {
            BenchmarkId::AlexNetCifar10 | BenchmarkId::AlexNetImageNet => 5e8,
            BenchmarkId::AlexNet2 => 2e10,
            BenchmarkId::ResNet18
            | BenchmarkId::Vgg16Cifar10
            | BenchmarkId::Vgg16Cifar100
            | BenchmarkId::Vgg16ImageNet => 3e22,
            BenchmarkId::ResNet50 => 7e91,
            BenchmarkId::MobileNet => 1e26,
            BenchmarkId::LeNet => 3e3,
        }
    }

    /// Number of classes in the (synthetic) dataset.
    pub fn classes(self) -> usize {
        match self {
            BenchmarkId::Vgg16Cifar100 => 100,
            // The paper uses 200 randomly selected ImageNet classes; we use
            // 20 to keep dense layers small at reduced scale.
            BenchmarkId::AlexNetImageNet | BenchmarkId::ResNet50 | BenchmarkId::Vgg16ImageNet => 20,
            _ => 10,
        }
    }
}

/// Channel-width scale of a built model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelScale {
    /// Minimal widths: used by unit/integration tests.
    Tiny,
    /// Default widths for the experiment harness.
    Reduced,
}

impl ModelScale {
    fn mul(self, base: usize) -> usize {
        match self {
            ModelScale::Tiny => (base / 4).max(2),
            ModelScale::Reduced => base,
        }
    }
}

/// A Table 1 benchmark instance: the dataflow graph plus metadata.
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// The compiled dataflow graph.
    pub graph: Graph,
    /// Per-sample input shape `[1, C, H, W]` (batching multiplies N).
    pub input_shape: Shape,
    /// Number of classes.
    pub classes: usize,
}

/// Builds a benchmark's graph at the given scale with a deterministic seed.
pub fn build(id: BenchmarkId, scale: ModelScale) -> Benchmark {
    // One fixed weight seed per benchmark keeps every experiment
    // reproducible.
    let seed = 0xA17u64 ^ (id as u64) << 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = id.classes();
    let (graph, input_shape) = match id {
        BenchmarkId::LeNet => lenet(&mut rng, scale, classes),
        BenchmarkId::AlexNetCifar10 => alexnet_cifar(&mut rng, scale, classes),
        BenchmarkId::AlexNetImageNet => alexnet_imagenet(&mut rng, scale, classes),
        BenchmarkId::AlexNet2 => alexnet2(&mut rng, scale, classes),
        BenchmarkId::Vgg16Cifar10 | BenchmarkId::Vgg16Cifar100 | BenchmarkId::Vgg16ImageNet => {
            vgg16(&mut rng, scale, classes, id.name())
        }
        BenchmarkId::ResNet18 => resnet18(&mut rng, scale, classes),
        BenchmarkId::ResNet50 => resnet50(&mut rng, scale, classes),
        BenchmarkId::MobileNet => mobilenet(&mut rng, scale, classes),
    };
    Benchmark {
        id,
        graph,
        input_shape,
        classes,
    }
}

/// Counts conv + dense layers (the paper's "layers").
pub fn conv_dense_layers(graph: &Graph) -> usize {
    graph
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.op,
                at_ir::OpKind::Conv2d { .. } | at_ir::OpKind::Dense { .. }
            )
        })
        .count()
}

fn lenet(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    let input = Shape::nchw(1, 1, 28, 28);
    let mut b = GraphBuilder::new("Lenet", input, rng);
    b.conv(s.mul(8), 5, (2, 2), (1, 1)).tanh().max_pool(2, 2);
    b.conv(s.mul(16), 5, (2, 2), (1, 1)).tanh().max_pool(2, 2);
    b.flatten().dense(s.mul(84)).tanh().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn alexnet_cifar(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // 5 conv + 1 fc = 6 layers.
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new("Alexnet", input, rng);
    b.conv(s.mul(16), 11, (5, 5), (1, 1)).tanh().max_pool(2, 2);
    b.conv(s.mul(32), 5, (2, 2), (1, 1)).tanh().max_pool(2, 2);
    b.conv(s.mul(48), 3, (1, 1), (1, 1)).tanh();
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).tanh();
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).tanh().max_pool(2, 2);
    b.flatten().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn alexnet2(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // 6 conv + 1 fc = 7 layers.
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new("Alexnet2", input, rng);
    b.conv(s.mul(16), 3, (1, 1), (1, 1)).tanh();
    b.conv(s.mul(16), 3, (1, 1), (1, 1)).tanh().max_pool(2, 2);
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).tanh();
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).tanh().max_pool(2, 2);
    b.conv(s.mul(48), 3, (1, 1), (1, 1)).tanh();
    b.conv(s.mul(48), 3, (1, 1), (1, 1)).tanh().max_pool(2, 2);
    b.flatten().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn alexnet_imagenet(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // 5 conv + 3 fc = 8 layers. ImageNet resolution reduced to 64².
    let input = Shape::nchw(1, 3, 64, 64);
    let mut b = GraphBuilder::new("Alexnet_imagenet", input, rng);
    b.conv(s.mul(16), 11, (2, 2), (4, 4)).relu().max_pool(2, 2);
    b.conv(s.mul(32), 5, (2, 2), (1, 1)).relu().max_pool(2, 2);
    b.conv(s.mul(48), 3, (1, 1), (1, 1)).relu();
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).relu();
    b.conv(s.mul(32), 3, (1, 1), (1, 1)).relu();
    b.flatten().dense(s.mul(128)).relu().dense(s.mul(64)).relu();
    b.dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn vgg16(rng: &mut StdRng, s: ModelScale, classes: usize, name: &str) -> (Graph, Shape) {
    // 13 conv + 2 fc = 15 layers (Table 1).
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new(name, input, rng);
    let widths = [16, 16, 32, 32, 48, 48, 48, 64, 64, 64, 64, 64, 64].map(|w| s.mul(w));
    let pool_after = [1usize, 3, 6, 9, 12]; // indices after which to pool
    for (i, &w) in widths.iter().enumerate() {
        b.conv(w, 3, (1, 1), (1, 1)).relu();
        if pool_after.contains(&i) {
            b.max_pool(2, 2);
        }
    }
    b.flatten().dense(s.mul(64)).relu().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn resnet18(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // CIFAR-style ResNet: conv1 + 3 stages × 3 basic blocks × 2 convs
    // (= 18) + 2 strided 1×1 downsample convs + 1 fc = 21 conv + 1 fc = 22
    // layers, matching Table 1 and the §7.2 mention of 21 conv layers.
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new("Resnet18", input, rng);
    let w1 = s.mul(16);
    b.conv(w1, 3, (1, 1), (1, 1)).relu();
    let widths = [w1, s.mul(32), s.mul(64)];
    for (stage, &w) in widths.iter().enumerate() {
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let skip = b.current();
            b.conv(w, 3, (1, 1), (stride, stride)).relu();
            b.conv(w, 3, (1, 1), (1, 1));
            if stride != 1 {
                // Projection shortcut (1×1, stride 2).
                let main = b.current();
                b.rewind(skip);
                b.conv(w, 1, (0, 0), (2, 2));
                let proj = b.current();
                b.rewind(main);
                b.add_from(proj).relu();
            } else {
                b.add_from(skip).relu();
            }
        }
    }
    b.avg_pool(8, 8).flatten().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn resnet50(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // Bottleneck ResNet at CIFAR resolution: conv1 + 16 bottleneck blocks
    // × 3 convs (= 48) + 4 projection convs + 1 fc = 53 conv + 1 fc = 54
    // layers (Table 1).
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new("Resnet50", input, rng);
    let base = s.mul(8);
    b.conv(base * 2, 3, (1, 1), (1, 1)).relu();
    // (blocks, bottleneck width, output width, first-block stride)
    let stages = [
        (3usize, base, base * 2, 1usize),
        (4, base * 2, base * 4, 2),
        (6, base * 4, base * 8, 2),
        (3, base * 8, base * 16, 2),
    ];
    for &(blocks, wid, out, stride0) in &stages {
        for block in 0..blocks {
            let stride = if block == 0 { stride0 } else { 1 };
            let needs_proj = block == 0; // width or stride changes
            let skip = b.current();
            b.conv(wid, 1, (0, 0), (1, 1)).relu();
            b.conv(wid, 3, (1, 1), (stride, stride)).relu();
            b.conv(out, 1, (0, 0), (1, 1));
            if needs_proj {
                let main = b.current();
                b.rewind(skip);
                b.conv(out, 1, (0, 0), (stride, stride));
                let proj = b.current();
                b.rewind(main);
                b.add_from(proj).relu();
            } else {
                b.add_from(skip).relu();
            }
        }
    }
    b.avg_pool(4, 4).flatten().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

fn mobilenet(rng: &mut StdRng, s: ModelScale, classes: usize) -> (Graph, Shape) {
    // conv1 + 13 × (depthwise + pointwise) = 27 conv + 1 fc = 28 layers.
    let input = Shape::nchw(1, 3, 32, 32);
    let mut b = GraphBuilder::new("Mobilenet", input, rng);
    let w = |x: usize| s.mul(x);
    b.conv(w(16), 3, (1, 1), (1, 1)).batchnorm().relu6();
    // (pointwise output width, depthwise stride)
    let blocks = [
        (w(32), 1),
        (w(64), 2),
        (w(64), 1),
        (w(128), 2),
        (w(128), 1),
        (w(128), 2),
        (w(128), 1),
        (w(128), 1),
        (w(128), 1),
        (w(128), 1),
        (w(128), 1),
        (w(256), 2),
        (w(256), 1),
    ];
    for &(out, stride) in &blocks {
        b.depthwise(3, (1, 1), (stride, stride)).batchnorm().relu6();
        b.conv(out, 1, (0, 0), (1, 1)).batchnorm().relu6();
    }
    b.avg_pool(2, 2).flatten().dense(classes).softmax();
    (b.finish().expect("zoo model definitions are valid"), input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for id in BenchmarkId::ALL {
            let bench = build(id, ModelScale::Tiny);
            bench.graph.validate().unwrap_or_else(|e| {
                panic!("{} failed validation: {e}", id.name());
            });
            assert_eq!(bench.classes, id.classes());
        }
    }

    #[test]
    fn layer_counts_match_table1() {
        for id in BenchmarkId::ALL {
            let bench = build(id, ModelScale::Tiny);
            let layers = conv_dense_layers(&bench.graph);
            assert_eq!(
                layers,
                id.paper_layers(),
                "{}: built {layers} conv+dense layers, Table 1 says {}",
                id.name(),
                id.paper_layers()
            );
        }
    }

    #[test]
    fn deterministic_weights() {
        let a = build(BenchmarkId::LeNet, ModelScale::Tiny);
        let b = build(BenchmarkId::LeNet, ModelScale::Tiny);
        assert_eq!(a.graph.param_count(), b.graph.param_count());
        // Outputs on the same input must be identical.
        let mut rng = StdRng::seed_from_u64(5);
        let x = at_tensor::Tensor::uniform(a.input_shape, 0.0, 1.0, &mut rng);
        let oa = at_ir::execute(&a.graph, &x, &at_ir::ExecOptions::baseline()).unwrap();
        let ob = at_ir::execute(&b.graph, &x, &at_ir::ExecOptions::baseline()).unwrap();
        assert_eq!(oa.data(), ob.data());
    }

    #[test]
    fn forward_pass_shapes() {
        for id in [
            BenchmarkId::LeNet,
            BenchmarkId::ResNet18,
            BenchmarkId::MobileNet,
        ] {
            let bench = build(id, ModelScale::Tiny);
            let mut rng = StdRng::seed_from_u64(6);
            let x = at_tensor::Tensor::uniform(bench.input_shape, 0.0, 1.0, &mut rng);
            let out = at_ir::execute(&bench.graph, &x, &at_ir::ExecOptions::baseline()).unwrap();
            assert_eq!(
                out.shape(),
                Shape::mat(1, bench.classes),
                "{} output shape",
                id.name()
            );
            let sum: f32 = out.data().iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "{} softmax sum {sum}", id.name());
        }
    }
}
