//! Synthetic datasets with teacher-calibrated labels.
//!
//! The paper evaluates on MNIST / CIFAR-10 / ImageNet with 10 K images per
//! benchmark, split 50/50 into a calibration set (for autotuning) and a
//! test set (for evaluation) (§6). Those datasets — and trained weights —
//! are not available here, so we generate class-structured synthetic
//! inputs and *calibrate* the labels against the FP32 baseline network:
//! each sample's ground-truth label equals the baseline prediction with
//! probability `p = paper baseline accuracy`, otherwise a uniformly random
//! different class.
//!
//! Consequences (why the substitution preserves the tuner-relevant
//! behaviour):
//! * the FP32 baseline accuracy equals the paper's Table 1 value in
//!   expectation, by construction;
//! * an approximated network's accuracy is `p · agreement + noise`, where
//!   `agreement` is the fraction of samples whose prediction survives the
//!   output perturbation — low-margin samples flip first, so accuracy
//!   degrades gracefully and monotonically with error magnitude, exactly
//!   the structure accuracy-aware tuning exploits.

use crate::zoo::Benchmark;
use at_ir::{execute, ExecOptions};
use at_tensor::{Shape, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled synthetic dataset, pre-batched for efficient inference.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Input batches, each `[B, C, H, W]`.
    pub batches: Vec<Tensor>,
    /// Ground-truth labels per batch (length = batch rows).
    pub labels: Vec<Vec<usize>>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.labels.iter().map(|l| l.len()).sum()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into (calibration, test) halves, as in §6 ("we divide the 10K
    /// images into calibration set … and test set … with 5K images each").
    pub fn split(self) -> (Dataset, Dataset) {
        let half = self.batches.len() / 2;
        let (cal_b, test_b) = {
            let mut b = self.batches;
            let t = b.split_off(half);
            (b, t)
        };
        let (cal_l, test_l) = {
            let mut l = self.labels;
            let t = l.split_off(half);
            (l, t)
        };
        (
            Dataset {
                batches: cal_b,
                labels: cal_l,
                classes: self.classes,
            },
            Dataset {
                batches: test_b,
                labels: test_l,
                classes: self.classes,
            },
        )
    }

    /// A shard of the batches, for distributed profile collection
    /// (device `i` of `n` gets every `n`-th batch starting at `i`).
    pub fn shard(&self, i: usize, n: usize) -> Dataset {
        assert!(n > 0 && i < n);
        Dataset {
            batches: self
                .batches
                .iter()
                .enumerate()
                .filter(|(j, _)| j % n == i)
                .map(|(_, b)| b.clone())
                .collect(),
            labels: self
                .labels
                .iter()
                .enumerate()
                .filter(|(j, _)| j % n == i)
                .map(|(_, l)| l.clone())
                .collect(),
            classes: self.classes,
        }
    }
}

/// Generates class-structured inputs: each class has a smooth random
/// prototype; a sample is its class prototype plus i.i.d. noise. The
/// class structure gives the (random-weight) networks consistent,
/// margin-varied predictions.
pub fn synthetic_inputs(
    per_sample: Shape,
    classes: usize,
    samples: usize,
    batch: usize,
    seed: u64,
) -> (Vec<Tensor>, Vec<Vec<usize>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = per_sample.dims();
    assert_eq!(dims[0], 1, "per-sample shape must have N=1");
    let sample_vol = per_sample.volume();
    let prototypes: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..sample_vol).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let mut batches = Vec::new();
    let mut intents = Vec::new();
    let mut made = 0usize;
    while made < samples {
        let b = batch.min(samples - made);
        let mut data = Vec::with_capacity(b * sample_vol);
        let mut intent = Vec::with_capacity(b);
        for _ in 0..b {
            let class = rng.gen_range(0..classes);
            intent.push(class);
            for p in &prototypes[class] {
                data.push(p + rng.gen_range(-0.25..0.25));
            }
        }
        let shape = Shape::new(
            &std::iter::once(b)
                .chain(dims[1..].iter().copied())
                .collect::<Vec<_>>(),
        );
        batches.push(Tensor::from_vec(shape, data).expect("sizes agree"));
        intents.push(intent);
        made += b;
    }
    (batches, intents)
}

/// Computes teacher-calibrated labels: runs the FP32 baseline on every
/// batch and sets each label to the baseline prediction with probability
/// `baseline_accuracy` (a fraction in (0, 1]), else a random other class.
pub fn calibrated_labels(
    bench: &Benchmark,
    batches: &[Tensor],
    baseline_accuracy: f64,
    seed: u64,
) -> Result<Vec<Vec<usize>>, TensorError> {
    assert!(
        (0.0..=1.0).contains(&baseline_accuracy),
        "accuracy must be a fraction"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = Vec::with_capacity(batches.len());
    for batch in batches {
        let out = execute(&bench.graph, batch, &ExecOptions::baseline())?;
        let (rows, classes) = out.shape().as_mat()?;
        let mut batch_labels = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &out.data()[r * classes..(r + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let label = if rng.gen_bool(baseline_accuracy) {
                pred
            } else {
                // A different class, uniformly.
                let mut l = rng.gen_range(0..classes - 1);
                if l >= pred {
                    l += 1;
                }
                l
            };
            batch_labels.push(label);
        }
        labels.push(batch_labels);
    }
    Ok(labels)
}

/// Builds the full synthetic dataset for a benchmark: inputs + calibrated
/// labels reproducing the paper's baseline accuracy.
pub fn build_dataset(bench: &Benchmark, samples: usize, batch: usize, seed: u64) -> Dataset {
    let (batches, _) = synthetic_inputs(bench.input_shape, bench.classes, samples, batch, seed);
    let labels = calibrated_labels(
        bench,
        &batches,
        bench.id.paper_baseline_accuracy() / 100.0,
        seed ^ 0x5EED,
    )
    .expect("baseline execution succeeds on generated inputs");
    Dataset {
        batches,
        labels,
        classes: bench.classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, BenchmarkId, ModelScale};

    #[test]
    fn baseline_accuracy_matches_calibration() {
        let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        let ds = build_dataset(&bench, 400, 50, 7);
        // Measure baseline accuracy.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (batch, labels) in ds.batches.iter().zip(&ds.labels) {
            let out = execute(&bench.graph, batch, &ExecOptions::baseline()).unwrap();
            let (rows, c) = out.shape().as_mat().unwrap();
            for (r, label) in labels.iter().enumerate().take(rows) {
                let row = &out.data()[r * c..(r + 1) * c];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                if pred == *label {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = 100.0 * correct as f64 / total as f64;
        let target = BenchmarkId::LeNet.paper_baseline_accuracy();
        assert!(
            (acc - target).abs() < 3.0,
            "measured {acc:.2}% vs calibrated {target:.2}%"
        );
    }

    #[test]
    fn split_halves() {
        let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        let ds = build_dataset(&bench, 100, 10, 7);
        let n = ds.len();
        let (cal, test) = ds.split();
        assert_eq!(cal.len() + test.len(), n);
        assert_eq!(cal.len(), 50);
    }

    #[test]
    fn shards_partition() {
        let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        let ds = build_dataset(&bench, 100, 10, 7);
        let total: usize = (0..4).map(|i| ds.shard(i, 4).len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        let a = build_dataset(&bench, 20, 10, 3);
        let b = build_dataset(&bench, 20, 10, 3);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.batches[0].data(), b.batches[0].data());
    }

    #[test]
    fn class_structure_present() {
        // Samples of the same class are closer to each other than to other
        // classes' samples (sanity of the prototype generator).
        let (batches, intents) = synthetic_inputs(Shape::nchw(1, 1, 8, 8), 4, 40, 40, 11);
        let data = batches[0].data();
        let vol = 64;
        let dist = |i: usize, j: usize| -> f32 {
            (0..vol)
                .map(|k| (data[i * vol + k] - data[j * vol + k]).powi(2))
                .sum()
        };
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for i in 0..40 {
            for j in (i + 1)..40 {
                if intents[0][i] == intents[0][j] {
                    same = (same.0 + dist(i, j), same.1 + 1);
                } else {
                    diff = (diff.0 + dist(i, j), diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1.max(1) as f32;
        let diff_avg = diff.0 / diff.1.max(1) as f32;
        assert!(
            same_avg < diff_avg,
            "same-class distance {same_avg} should be < cross-class {diff_avg}"
        );
    }
}
