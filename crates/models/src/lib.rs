#![warn(missing_docs)]

//! # at-models — the CNN model zoo and synthetic datasets (Table 1)
//!
//! The paper evaluates 10 CNNs trained on MNIST, CIFAR-10 and ImageNet.
//! Trained weights and the original datasets are not available here, so
//! this crate provides the documented substitution (see `DESIGN.md`):
//!
//! * [`zoo`] — the ten architectures of Table 1 built at a reduced scale
//!   with seeded He-normal weights: LeNet-5, AlexNet (CIFAR-10 and
//!   ImageNet variants), AlexNet2, VGG-16 (CIFAR-10 / CIFAR-100 /
//!   ImageNet), ResNet-18, ResNet-50 and MobileNet. Layer counts match the
//!   paper (e.g. ResNet-18 has 22 tunable conv/dense layers, MobileNet 28).
//! * [`data`] — synthetic classification datasets with **teacher-calibrated
//!   labels**: a sample's ground-truth label equals the FP32 baseline
//!   prediction with probability equal to the paper's reported baseline
//!   accuracy. Baseline accuracy therefore matches Table 1 by construction,
//!   and approximation-induced output perturbations flip low-margin
//!   predictions first — reproducing graceful accuracy degradation.
//! * [`prune`] — magnitude-based filter pruning used by the §8
//!   pruning-interaction study.

pub mod data;
pub mod prune;
pub mod zoo;

pub use data::{calibrated_labels, Dataset};
pub use zoo::{build, Benchmark, BenchmarkId, ModelScale};
