//! Magnitude-based filter pruning, for the §8 pruning-interaction study.
//!
//! The paper's preliminary experiment prunes MobileNet, VGG-16 and
//! ResNet-18 (using rewinding-style magnitude pruning \[52\]) and then shows
//! ApproxTuner's perforation still reduces MACs by a further 1.2–1.3× with
//! <1 percentage point accuracy loss. We implement the pruning transform:
//! zeroing the lowest-L1 fraction of each convolution's filters.

use at_ir::{Graph, OpKind};

/// Result of pruning a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PruneReport {
    /// Convolution layers visited.
    pub conv_layers: usize,
    /// Filters zeroed in total.
    pub filters_pruned: usize,
    /// Filters in total.
    pub filters_total: usize,
}

impl PruneReport {
    /// Fraction of filters pruned.
    pub fn fraction(&self) -> f64 {
        if self.filters_total == 0 {
            0.0
        } else {
            self.filters_pruned as f64 / self.filters_total as f64
        }
    }
}

/// Zeroes the `fraction` of filters with the lowest L1 norm in every
/// convolution of the graph (structured magnitude pruning). The first
/// convolution is skipped, as is conventional — early layers are the most
/// sensitive (also observed in §7.2).
pub fn prune_filters(graph: &mut Graph, fraction: f64) -> PruneReport {
    assert!((0.0..1.0).contains(&fraction), "fraction in [0,1)");
    let mut report = PruneReport::default();
    let conv_weights: Vec<_> = graph
        .nodes()
        .iter()
        .filter_map(|n| match n.op {
            OpKind::Conv2d { weight, .. } => Some(weight),
            _ => None,
        })
        .collect();
    for (layer_idx, weight_id) in conv_weights.iter().enumerate() {
        report.conv_layers += 1;
        let w = graph.param_mut(*weight_id);
        let (k, c, r, s) = match w.shape().as_nchw() {
            Ok(v) => v,
            Err(_) => continue,
        };
        report.filters_total += k;
        if layer_idx == 0 {
            continue; // keep the first conv intact
        }
        let filter_vol = c * r * s;
        // L1 per filter.
        let mut norms: Vec<(usize, f64)> = (0..k)
            .map(|f| {
                let l1 = w.data()[f * filter_vol..(f + 1) * filter_vol]
                    .iter()
                    .map(|&x| x.abs() as f64)
                    .sum();
                (f, l1)
            })
            .collect();
        norms.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let to_prune = ((k as f64) * fraction).floor() as usize;
        for &(f, _) in norms.iter().take(to_prune) {
            let data = w.data_mut();
            for v in &mut data[f * filter_vol..(f + 1) * filter_vol] {
                *v = 0.0;
            }
            report.filters_pruned += 1;
        }
    }
    report
}

/// Counts the nonzero multiply–accumulates of every convolution: MACs whose
/// filter weight is exactly zero are skippable by a sparse kernel, which is
/// how pruning reduces MAC counts.
pub fn nonzero_conv_macs(graph: &Graph, input: at_tensor::Shape) -> f64 {
    let shapes = match at_ir::shapes::infer_shapes(graph, input) {
        Ok(s) => s,
        Err(_) => return 0.0,
    };
    let mut macs = 0.0f64;
    for node in graph.nodes() {
        if let OpKind::Conv2d { weight, .. } = node.op {
            let w = graph.param(weight);
            let nz = w.data().iter().filter(|&&x| x != 0.0).count() as f64;
            let total = w.len().max(1) as f64;
            let out_shape = shapes[node.id.0 as usize];
            if let Ok((n, k, ho, wo)) = out_shape.as_nchw() {
                let (_, c, r, s) = w.shape().as_nchw().unwrap_or((0, 0, 0, 0));
                let dense_macs = (n * k * ho * wo * c * r * s) as f64;
                macs += dense_macs * (nz / total);
            }
        }
    }
    macs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, BenchmarkId, ModelScale};

    #[test]
    fn pruning_zeroes_expected_fraction() {
        let mut bench = build(BenchmarkId::Vgg16Cifar10, ModelScale::Tiny);
        let report = prune_filters(&mut bench.graph, 0.5);
        assert_eq!(report.conv_layers, 13);
        assert!(report.fraction() > 0.3 && report.fraction() < 0.5);
    }

    #[test]
    fn pruning_reduces_nonzero_macs() {
        let mut bench = build(BenchmarkId::ResNet18, ModelScale::Tiny);
        let before = nonzero_conv_macs(&bench.graph, bench.input_shape);
        prune_filters(&mut bench.graph, 0.3);
        let after = nonzero_conv_macs(&bench.graph, bench.input_shape);
        assert!(after < before, "{after} !< {before}");
        assert!(after > before * 0.5);
    }

    #[test]
    fn first_layer_untouched() {
        let mut bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        // Record first conv weights.
        let first_weight = bench
            .graph
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                OpKind::Conv2d { weight, .. } => Some(weight),
                _ => None,
            })
            .unwrap();
        let before = bench.graph.param(first_weight).clone();
        prune_filters(&mut bench.graph, 0.75);
        assert_eq!(bench.graph.param(first_weight).data(), before.data());
    }

    #[test]
    fn pruned_model_still_runs() {
        let mut bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
        prune_filters(&mut bench.graph, 0.4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let x = at_tensor::Tensor::uniform(bench.input_shape, 0.0, 1.0, &mut rng);
        let out = at_ir::execute(&bench.graph, &x, &at_ir::ExecOptions::baseline()).unwrap();
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
