#![warn(missing_docs)]

//! # at-promise — simulator for the PROMISE analog in-memory accelerator
//!
//! PROMISE (Srivastava et al., ISCA'18) is a programmable mixed-signal
//! accelerator for machine learning. ApproxTuner maps tensor convolutions
//! and matrix multiplications onto it at install time. Being analog, its
//! voltage swings introduce *statistical, normally-distributed* errors in
//! the output values; the knob values are 7 voltage levels P1–P7 in
//! increasing order of voltage/energy and decreasing error — **no level is
//! exact** (paper §2.3).
//!
//! This crate provides the role the authors' "functional simulator and
//! validated timing and energy model" plays in the paper:
//!
//! * [`VoltageLevel`] — the P1..P7 knob with monotone error/energy tables.
//! * [`functional`] — Gaussian error injection on conv/matmul outputs.
//! * [`model`] — latency and energy estimates per op, calibrated so
//!   PROMISE is 3.4–5.5× more energy-efficient and 1.4–3.4× faster than
//!   the digital baseline, as reported by Srivastava et al.
//! * [`geometry`] — the memory-bank geometry of the paper's Table 2
//!   (256 banks × 16 KB at 1 GHz).

pub mod functional;
pub mod geometry;
pub mod model;
pub mod voltage;

pub use functional::{promise_conv2d, promise_matmul};
pub use geometry::PromiseGeometry;
pub use model::PromiseModel;
pub use voltage::VoltageLevel;
