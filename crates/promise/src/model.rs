//! Timing and energy model for PROMISE, calibrated against the digital
//! baseline so the advantage matches the ranges reported in the paper
//! (§2.3: "PROMISE consumes 3.4–5.5× less energy and has 1.4–3.4× higher
//! throughput compared even to fully-custom non-programmable digital
//! accelerators").

use crate::geometry::PromiseGeometry;
use crate::voltage::VoltageLevel;
use at_tensor::cost::OpCounts;
use serde::{Deserialize, Serialize};

/// Latency and energy estimator for ops offloaded to PROMISE.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PromiseModel {
    /// Hardware geometry.
    pub geometry: PromiseGeometry,
    /// Energy per MAC of the *digital* comparison path, picojoules. The
    /// per-level PROMISE MAC energies in [`VoltageLevel::energy_per_mac_pj`]
    /// are calibrated against this.
    pub digital_mac_pj: f64,
    /// Effective digital MAC throughput (MAC/s) used as the speedup
    /// reference.
    pub digital_macs_per_s: f64,
    /// Fixed per-op offload overhead, seconds (data staging into banks).
    pub offload_overhead_s: f64,
}

impl PromiseModel {
    /// Model used throughout the evaluation: digital reference ≈ the
    /// simulated TX2 GPU running a MAC-dominated kernel.
    pub fn paper() -> PromiseModel {
        PromiseModel {
            geometry: PromiseGeometry::paper(),
            digital_mac_pj: 1.2,
            digital_macs_per_s: 150e9,
            offload_overhead_s: 10e-6,
        }
    }

    /// Number of MACs in an op given its analytical counts (2 flops/MAC).
    fn macs(counts: OpCounts) -> f64 {
        counts.compute / 2.0
    }

    /// Execution time of an op at `level`, seconds.
    pub fn op_time(&self, counts: OpCounts, level: VoltageLevel) -> f64 {
        let macs = Self::macs(counts);
        let digital_t = macs / self.digital_macs_per_s;
        self.offload_overhead_s + digital_t / level.speedup_vs_digital()
    }

    /// Energy of an op at `level`, joules.
    pub fn op_energy(&self, counts: OpCounts, level: VoltageLevel) -> f64 {
        Self::macs(counts) * level.energy_per_mac_pj() * 1e-12
    }

    /// Energy of the same op on the digital reference path, joules.
    pub fn digital_energy(&self, counts: OpCounts) -> f64 {
        Self::macs(counts) * self.digital_mac_pj * 1e-12
    }

    /// Energy advantage (digital / PROMISE) at a level.
    pub fn energy_advantage(&self, level: VoltageLevel) -> f64 {
        self.digital_mac_pj / level.energy_per_mac_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> OpCounts {
        OpCounts {
            compute: 2.0e9, // 1e9 MACs
            memory: 1.0e9,
        }
    }

    #[test]
    fn energy_advantage_in_paper_range() {
        let m = PromiseModel::paper();
        for l in VoltageLevel::ALL {
            let adv = m.energy_advantage(l);
            assert!(
                (2.2..=5.6).contains(&adv),
                "{l:?} energy advantage {adv} outside range"
            );
        }
        // The extremes hit the quoted 3.4–5.5x bracket.
        assert!(m.energy_advantage(VoltageLevel::P1) > 5.0);
        assert!(m.energy_advantage(VoltageLevel::P7) < 3.4 + 0.5);
    }

    #[test]
    fn faster_than_digital_reference() {
        let m = PromiseModel::paper();
        let digital_t = 1.0e9 / m.digital_macs_per_s;
        for l in VoltageLevel::ALL {
            let t = m.op_time(counts(), l);
            assert!(t < digital_t, "{l:?}: {t} >= digital {digital_t}");
        }
    }

    #[test]
    fn lower_levels_cheaper_and_faster() {
        let m = PromiseModel::paper();
        let c = counts();
        for w in VoltageLevel::ALL.windows(2) {
            assert!(m.op_energy(c, w[0]) < m.op_energy(c, w[1]));
            assert!(m.op_time(c, w[0]) <= m.op_time(c, w[1]));
        }
    }

    #[test]
    fn offload_overhead_dominates_tiny_ops() {
        let m = PromiseModel::paper();
        let tiny = OpCounts {
            compute: 2.0,
            memory: 2.0,
        };
        let t = m.op_time(tiny, VoltageLevel::P1);
        assert!(t >= m.offload_overhead_s);
    }
}
