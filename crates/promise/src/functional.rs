//! Functional simulation: exact computation plus calibrated analog noise.
//!
//! The voltage swings of the analog compute path "introduce statistical
//! (normally distributed) errors in the output values" (§2.3). The
//! functional simulator therefore computes the exact result and injects
//! i.i.d. Gaussian noise whose standard deviation is the level's relative
//! error times the RMS magnitude of the exact output — preserving the key
//! property that error scales with signal amplitude in analog compute.

use crate::voltage::VoltageLevel;
use at_tensor::ops::conv::{conv2d, Conv2dParams};
use at_tensor::ops::matmul;
use at_tensor::{Precision, Tensor, TensorError};
use rand::Rng;

/// Adds level-calibrated Gaussian noise to an exact output tensor.
fn inject_noise<R: Rng + ?Sized>(out: &mut Tensor, level: VoltageLevel, rng: &mut R) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let rms = (out
        .data()
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        / n as f64)
        .sqrt();
    let std = (level.error_rel_std() * rms) as f32;
    if std == 0.0 {
        return;
    }
    // Box–Muller pairs.
    let data = out.data_mut();
    let mut i = 0;
    while i < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] += r * theta.cos() * std;
        if i + 1 < n {
            data[i + 1] += r * theta.sin() * std;
        }
        i += 2;
    }
}

/// A convolution executed on PROMISE at the given voltage level.
///
/// PROMISE has no FP16 mode — the analog path has its own precision
/// characteristics — so there is no precision parameter.
pub fn promise_conv2d<R: Rng + ?Sized>(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    pad: (usize, usize),
    stride: (usize, usize),
    level: VoltageLevel,
    rng: &mut R,
) -> Result<Tensor, TensorError> {
    let mut out = conv2d(
        input,
        weight,
        bias,
        Conv2dParams {
            pad,
            stride,
            ..Default::default()
        },
    )?;
    inject_noise(&mut out, level, rng);
    Ok(out)
}

/// A matrix multiplication executed on PROMISE at the given voltage level.
pub fn promise_matmul<R: Rng + ?Sized>(
    a: &Tensor,
    b: &Tensor,
    level: VoltageLevel,
    rng: &mut R,
) -> Result<Tensor, TensorError> {
    let mut out = matmul::matmul(a, b, Precision::Fp32)?;
    inject_noise(&mut out, level, rng);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_scales_with_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::uniform(Shape::mat(32, 32), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(32, 32), -1.0, 1.0, &mut rng);
        let exact = matmul::matmul(&a, &b, Precision::Fp32).unwrap();
        let mse_at = |level: VoltageLevel| {
            // Average over several seeds for a stable estimate.
            let mut total = 0.0;
            for s in 0..8 {
                let mut r = StdRng::seed_from_u64(100 + s);
                let noisy = promise_matmul(&a, &b, level, &mut r).unwrap();
                total += exact.mse(&noisy).unwrap();
            }
            total / 8.0
        };
        let m1 = mse_at(VoltageLevel::P1);
        let m4 = mse_at(VoltageLevel::P4);
        let m7 = mse_at(VoltageLevel::P7);
        assert!(m1 > m4 && m4 > m7, "m1={m1} m4={m4} m7={m7}");
        assert!(m7 > 0.0, "no PROMISE level is exact");
    }

    #[test]
    fn noise_magnitude_matches_calibration() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::uniform(Shape::mat(64, 64), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(64, 64), -1.0, 1.0, &mut rng);
        let exact = matmul::matmul(&a, &b, Precision::Fp32).unwrap();
        let rms = (exact
            .data()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / exact.len() as f64)
            .sqrt();
        let level = VoltageLevel::P3;
        let mut r = StdRng::seed_from_u64(3);
        let noisy = promise_matmul(&a, &b, level, &mut r).unwrap();
        let err_std = exact.mse(&noisy).unwrap().sqrt();
        let expected = level.error_rel_std() * rms;
        let rel = (err_std - expected).abs() / expected;
        assert!(rel < 0.15, "err std {err_std} vs expected {expected}");
    }

    #[test]
    fn conv_path_also_noisy() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::uniform(Shape::nchw(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(2, 2, 3, 3), -1.0, 1.0, &mut rng);
        let exact = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        let noisy =
            promise_conv2d(&x, &w, None, (0, 0), (1, 1), VoltageLevel::P5, &mut rng).unwrap();
        assert_eq!(exact.shape(), noisy.shape());
        assert!(exact.mse(&noisy).unwrap() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::uniform(Shape::mat(8, 8), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(8, 8), -1.0, 1.0, &mut rng);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let o1 = promise_matmul(&a, &b, VoltageLevel::P2, &mut r1).unwrap();
        let o2 = promise_matmul(&a, &b, VoltageLevel::P2, &mut r2).unwrap();
        assert_eq!(o1.data(), o2.data());
    }
}
