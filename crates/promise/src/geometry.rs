//! PROMISE hardware geometry (paper Table 2).

use serde::{Deserialize, Serialize};

/// Physical configuration of the PROMISE chip modelled on the SoC.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PromiseGeometry {
    /// Number of in-memory compute banks.
    pub banks: usize,
    /// Capacity of each bank in bytes.
    pub bank_bytes: usize,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Vector width processed per bank per cycle (elements).
    pub lane_width: usize,
}

impl PromiseGeometry {
    /// The paper's Table 2 configuration: 256 banks × 16 KB at 1 GHz.
    pub fn paper() -> PromiseGeometry {
        PromiseGeometry {
            banks: 256,
            bank_bytes: 16 * 1024,
            frequency_hz: 1.0e9,
            lane_width: 128,
        }
    }

    /// Total on-chip storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.banks * self.bank_bytes
    }

    /// MACs the chip can retire per second when fully utilised.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.banks as f64 * self.lane_width as f64 * self.frequency_hz
    }

    /// Number of tiles a weight matrix of `bytes` occupies (tensors larger
    /// than one bank must be tiled across banks/iterations).
    pub fn tiles_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.bank_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let g = PromiseGeometry::paper();
        assert_eq!(g.total_bytes(), 256 * 16 * 1024);
        assert_eq!(g.tiles_for(1), 1);
        assert_eq!(g.tiles_for(16 * 1024), 1);
        assert_eq!(g.tiles_for(16 * 1024 + 1), 2);
        assert!(g.peak_macs_per_s() > 1e12);
    }
}
