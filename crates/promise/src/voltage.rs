//! The P1–P7 voltage-swing knob.

use serde::{Deserialize, Serialize};

/// PROMISE analog read-swing voltage level.
///
/// Levels are ordered by increasing voltage: `P1` uses the least energy and
/// has the largest output error; `P7` uses the most energy and has the
/// smallest error. No level produces exact results.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum VoltageLevel {
    /// Lowest swing: cheapest, noisiest.
    P1,
    /// Level 2.
    P2,
    /// Level 3.
    P3,
    /// Level 4.
    P4,
    /// Level 5.
    P5,
    /// Level 6.
    P6,
    /// Highest swing: most accurate, most expensive.
    P7,
}

impl VoltageLevel {
    /// All levels in increasing voltage order.
    pub const ALL: [VoltageLevel; 7] = [
        VoltageLevel::P1,
        VoltageLevel::P2,
        VoltageLevel::P3,
        VoltageLevel::P4,
        VoltageLevel::P5,
        VoltageLevel::P6,
        VoltageLevel::P7,
    ];

    /// 1-based index (P1 → 1 … P7 → 7).
    pub fn index(self) -> usize {
        self as usize + 1
    }

    /// Builds from a 1-based index.
    pub fn from_index(i: usize) -> Option<VoltageLevel> {
        VoltageLevel::ALL.get(i.wrapping_sub(1)).copied()
    }

    /// Relative standard deviation of the Gaussian output error at this
    /// level, expressed as a fraction of the exact output's RMS value.
    ///
    /// Calibrated as a geometric ladder: halving roughly every two levels,
    /// so the error knob spans an order of magnitude — wide enough that the
    /// tuner must choose levels per-operation, as in the paper.
    pub fn error_rel_std(self) -> f64 {
        // P1 … P7
        const SIGMA: [f64; 7] = [0.120, 0.085, 0.060, 0.042, 0.030, 0.021, 0.015];
        SIGMA[self as usize]
    }

    /// Energy per multiply–accumulate in picojoules.
    ///
    /// Calibrated against the digital-baseline MAC energy in
    /// [`crate::model::PromiseModel`] so the accelerator-level energy
    /// advantage spans the 3.4–5.5× range reported by Srivastava et al.
    pub fn energy_per_mac_pj(self) -> f64 {
        // Higher swing voltage costs more energy (~V²); ~15% per level.
        #[allow(clippy::approx_constant)] // measured energy table, not 1/π
        const PJ: [f64; 7] = [0.218, 0.245, 0.278, 0.318, 0.368, 0.428, 0.503];
        PJ[self as usize]
    }

    /// Throughput advantage over the digital GPU path at this level
    /// (Srivastava et al. report 1.4–3.4× higher throughput).
    pub fn speedup_vs_digital(self) -> f64 {
        const SPEEDUP: [f64; 7] = [3.4, 3.0, 2.6, 2.3, 2.0, 1.7, 1.4];
        SPEEDUP[self as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for l in VoltageLevel::ALL {
            assert_eq!(VoltageLevel::from_index(l.index()), Some(l));
        }
        assert_eq!(VoltageLevel::from_index(0), None);
        assert_eq!(VoltageLevel::from_index(8), None);
    }

    #[test]
    fn error_monotone_decreasing_in_voltage() {
        for w in VoltageLevel::ALL.windows(2) {
            assert!(
                w[0].error_rel_std() > w[1].error_rel_std(),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn energy_monotone_increasing_in_voltage() {
        for w in VoltageLevel::ALL.windows(2) {
            assert!(
                w[0].energy_per_mac_pj() < w[1].energy_per_mac_pj(),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn speedup_in_reported_range() {
        for l in VoltageLevel::ALL {
            let s = l.speedup_vs_digital();
            assert!((1.4..=3.4).contains(&s));
        }
    }

    #[test]
    fn no_level_is_exact() {
        for l in VoltageLevel::ALL {
            assert!(l.error_rel_std() > 0.0);
        }
    }
}
