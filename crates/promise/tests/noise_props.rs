//! Property tests on the PROMISE simulator.

use at_promise::{promise_matmul, PromiseModel, VoltageLevel};
use at_tensor::cost::OpCounts;
use at_tensor::{Precision, Shape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn noise_is_unbiased(seed in 0u64..500, level_idx in 0usize..7) {
        let level = VoltageLevel::ALL[level_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::uniform(Shape::mat(24, 24), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(24, 24), -1.0, 1.0, &mut rng);
        let exact = at_tensor::ops::matmul(&a, &b, Precision::Fp32).unwrap();
        let mut nrng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let noisy = promise_matmul(&a, &b, level, &mut nrng).unwrap();
        let diff = noisy.sub(&exact).unwrap();
        let mean_err = diff.data().iter().sum::<f32>() / diff.len() as f32;
        // Mean of N(0, σ) over 576 samples: within ~4σ/√n of zero.
        let rms = (exact.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>()
            / exact.len() as f64).sqrt();
        let sigma = level.error_rel_std() * rms;
        let bound = 4.0 * sigma / (diff.len() as f64).sqrt();
        prop_assert!((mean_err as f64).abs() < bound,
            "bias {mean_err} exceeds bound {bound} at {level:?}");
    }

    #[test]
    fn energy_and_time_scale_linearly_with_work(
        macs in 1.0e3f64..1.0e9,
        factor in 2.0f64..10.0,
        level_idx in 0usize..7,
    ) {
        let level = VoltageLevel::ALL[level_idx];
        let m = PromiseModel::paper();
        let small = OpCounts { compute: 2.0 * macs, memory: macs };
        let big = OpCounts { compute: 2.0 * macs * factor, memory: macs * factor };
        let es = m.op_energy(small, level);
        let eb = m.op_energy(big, level);
        prop_assert!((eb / es - factor).abs() < 1e-9, "energy not linear");
        // Time includes a constant offload overhead, so it is affine:
        let ts = m.op_time(small, level) - m.offload_overhead_s;
        let tb = m.op_time(big, level) - m.offload_overhead_s;
        prop_assert!((tb / ts - factor).abs() < 1e-6, "time not affine");
    }

    #[test]
    fn advantage_ordering_is_total(level_a in 0usize..7, level_b in 0usize..7) {
        let m = PromiseModel::paper();
        let a = VoltageLevel::ALL[level_a];
        let b = VoltageLevel::ALL[level_b];
        // Lower level ⇒ at least as large an energy advantage and at least
        // as much error.
        if a <= b {
            prop_assert!(m.energy_advantage(a) >= m.energy_advantage(b));
            prop_assert!(a.error_rel_std() >= b.error_rel_std());
        }
    }
}
