//! Dense row-major tensor of `f32` values.

use crate::error::TensorError;
use crate::f16;
use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` elements.
///
/// All kernels in this crate compute in `f32`; FP16 execution is modelled by
/// quantising operands and results through [`crate::F16`] (see
/// [`Tensor::quantize_f16`]).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{}(", self.shape)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if shape.volume() != data.len() {
            return Err(TensorError::DataLength {
                expected: shape.volume(),
                got: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// A tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: Shape, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..shape.volume()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// A tensor with elements drawn from N(0, std^2) via Box–Muller.
    pub fn randn<R: Rng + ?Sized>(shape: Shape, std: f32, rng: &mut R) -> Self {
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor, TensorError> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::DataLength {
                expected: shape.volume(),
                got: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Element at a 4-D NCHW coordinate.
    #[inline(always)]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.idx4(n, c, h, w)]
    }

    /// Mutable element at a 4-D NCHW coordinate.
    #[inline(always)]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.shape.idx4(n, c, h, w);
        &mut self.data[i]
    }

    /// Quantises every element through IEEE binary16 (round-trip), modelling
    /// FP16 storage semantics.
    pub fn quantize_f16(&mut self) {
        f16::quantize_slice(&mut self.data);
    }

    /// Returns an FP16-quantised copy.
    pub fn to_f16(&self) -> Tensor {
        Tensor {
            shape: self.shape,
            data: f16::quantized(&self.data),
        }
    }

    /// Elementwise sum of absolute values (L1 norm).
    pub fn l1(&self) -> f64 {
        self.data.iter().map(|&x| x.abs() as f64).sum()
    }

    /// Euclidean (L2) norm.
    pub fn l2(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Mean squared error against another tensor of the same shape.
    pub fn mse(&self, other: &Tensor) -> Result<f64, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "mse",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        Ok(sum / self.data.len() as f64)
    }

    /// Elementwise addition producing a new tensor.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape,
            data,
        })
    }

    /// Elementwise difference (`self - other`).
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Ok(Tensor {
            shape: self.shape,
            data,
        })
    }

    /// Scales every element by `s`, in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `other * s` into `self` (axpy). Shapes must match.
    pub fn axpy(&mut self, s: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(Shape::vec(3), vec![1.0, 2.0]).is_err());
        assert!(Tensor::from_vec(Shape::vec(2), vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(Shape::vec(100_000), 2.0, &mut rng);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn mse_and_norms() {
        let a = Tensor::from_vec(Shape::vec(4), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(Shape::vec(4), vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        assert_eq!(a.mse(&b).unwrap(), 1.0);
        assert_eq!(a.l1(), 10.0);
        assert!((a.l2() - 30.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn argmax() {
        let t = Tensor::from_vec(Shape::vec(5), vec![0.1, 0.9, 0.3, 0.9, 0.2]).unwrap();
        assert_eq!(t.argmax(), Some(1)); // first of the tie
        assert_eq!(Tensor::zeros(Shape::new(&[])).argmax(), Some(0));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::full(Shape::vec(3), 1.0);
        let b = Tensor::from_vec(Shape::vec(3), vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn f16_roundtrip_reduces_precision() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(Shape::vec(128), -10.0, 10.0, &mut rng);
        let q = t.to_f16();
        // Quantisation error present but small.
        let mse = t.mse(&q).unwrap();
        assert!(mse > 0.0);
        assert!(mse < 1e-4, "mse {mse}");
    }
}
