//! LUT-based approximate multipliers (the AdaPT/TFApprox emulation trick).
//!
//! Hardware approximate multipliers (e.g. Mitchell's logarithmic
//! multiplier) trade per-product accuracy for area/energy. Emulating them
//! gate-by-gate is far too slow for tuning, so — following AdaPT — we
//! precompute the multiplier's full truth table over `bits`-bit operand
//! magnitudes once and serve every product from the lookup table. Products
//! accumulate in `i64` (exact integer addition, so accumulation order is
//! irrelevant and the kernels are bit-deterministic by construction) and
//! results dequantize with the product of the operand scales.
//!
//! The emulated multiplier is Mitchell's log multiplier: `a·b ≈
//! 2^(k1+k2)·(1+f1+f2)` for `a = 2^k1 (1+f1)`, `b = 2^k2 (1+f2)`, which
//! under-approximates by up to ~11% per product (exact on powers of two).
//! Quantisation to `bits`-bit signed magnitudes adds the per-bitwidth error
//! component, giving the knob family its error/energy gradient.

use rayon::prelude::*;
use std::sync::OnceLock;

/// Smallest supported operand bitwidth.
pub const MIN_BITS: u8 = 2;
/// Largest supported operand bitwidth (keeps every table ≤ 64 KiB).
pub const MAX_BITS: u8 = 8;

/// A precomputed approximate-multiplier truth table over operand
/// *magnitudes* `0..=qmax` (signs are applied outside the table; the
/// emulated multiplier is sign-magnitude symmetric).
pub struct LutTable {
    /// Operand bitwidth.
    pub bits: u8,
    /// Largest representable magnitude, `2^(bits-1) - 1`.
    pub qmax: i32,
    /// Row-major `(qmax+1)²` table of products.
    tab: Vec<i32>,
}

impl LutTable {
    fn build(bits: u8) -> LutTable {
        assert!((MIN_BITS..=MAX_BITS).contains(&bits), "bits {bits}");
        let qmax = (1i32 << (bits - 1)) - 1;
        let n = (qmax + 1) as usize;
        let mut tab = vec![0i32; n * n];
        for a in 0..n {
            for b in 0..n {
                tab[a * n + b] = mitchell_mul(a as u64, b as u64) as i32;
            }
        }
        LutTable { bits, qmax, tab }
    }

    /// Approximate product of two magnitudes (`0..=qmax` each).
    #[inline(always)]
    pub fn mul_mag(&self, a: usize, b: usize) -> i32 {
        self.tab[a * (self.qmax as usize + 1) + b]
    }

    /// One magnitude's row of the table (`row(a)[b] == mul_mag(a, b)`),
    /// letting inner loops hoist the row lookup out of the `b` walk.
    #[inline]
    pub fn row(&self, mag: usize) -> &[i32] {
        let n = self.qmax as usize + 1;
        &self.tab[mag * n..(mag + 1) * n]
    }

    /// Approximate signed product of two quantised operands.
    #[inline(always)]
    pub fn mul(&self, a: i16, b: i16) -> i32 {
        let p = self.mul_mag(a.unsigned_abs() as usize, b.unsigned_abs() as usize);
        if (a < 0) != (b < 0) {
            -p
        } else {
            p
        }
    }
}

/// Integer Mitchell logarithmic multiplier over non-negative magnitudes.
///
/// Fixed-point with 16 fractional bits; exact for `a` or `b` in
/// {0, powers of two}, under-approximates otherwise (worst case
/// `f1+f2 → 1⁻`: relative error `-1/4·ln2 ≈ -11.1%`).
fn mitchell_mul(a: u64, b: u64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    const F: u32 = 16;
    let k1 = 63 - a.leading_zeros() as u64;
    let k2 = 63 - b.leading_zeros() as u64;
    // Fractional parts in F-bit fixed point; exact because k ≤ 62 only via
    // table-size bound (k ≤ 7 for 8-bit operands, so the shifts are exact).
    let f1 = ((a << F) >> k1) - (1u64 << F);
    let f2 = ((b << F) >> k2) - (1u64 << F);
    let sum = f1 + f2;
    let k = k1 + k2;
    if sum < (1u64 << F) {
        ((((1u64 << F) + sum) << k) >> F) as i64
    } else {
        ((sum << (k + 1)) >> F) as i64
    }
}

static LUTS: [OnceLock<LutTable>; (MAX_BITS - MIN_BITS + 1) as usize] =
    [const { OnceLock::new() }; (MAX_BITS - MIN_BITS + 1) as usize];

/// The shared table for a bitwidth (built once per process).
pub fn lut_for(bits: u8) -> &'static LutTable {
    assert!(
        (MIN_BITS..=MAX_BITS).contains(&bits),
        "unsupported LUT multiplier bitwidth {bits}"
    );
    LUTS[(bits - MIN_BITS) as usize].get_or_init(|| LutTable::build(bits))
}

/// A tensor quantised to signed `bits`-bit magnitudes with a per-tensor
/// symmetric scale (`x ≈ q · scale`).
pub struct QuantizedTensor {
    /// Quantised values in `[-qmax, qmax]`.
    pub q: Vec<i16>,
    /// Dequantisation scale.
    pub scale: f32,
}

/// Symmetric per-tensor quantisation: `scale = max|x| / qmax`, round to
/// nearest, clamp. Deterministic and elementwise (rayon-partition
/// independent).
pub fn quantize_symmetric(data: &[f32], bits: u8) -> QuantizedTensor {
    let qmax = (1i32 << (bits - 1)) - 1;
    let maxabs = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if maxabs > 0.0 && maxabs.is_finite() {
        maxabs / qmax as f32
    } else {
        1.0
    };
    let inv = 1.0 / scale;
    let quantize = |x: f32| (x * inv).round().clamp(-(qmax as f32), qmax as f32) as i16;
    let q = if data.len() >= 4096 {
        data.par_iter().map(|&x| quantize(x)).collect()
    } else {
        data.iter().map(|&x| quantize(x)).collect()
    };
    QuantizedTensor { q, scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitchell_exact_on_powers_of_two() {
        for &a in &[1u64, 2, 4, 8, 16, 32, 64] {
            for &b in &[1u64, 2, 4, 8, 16, 32, 64, 127] {
                if a.is_power_of_two() {
                    assert_eq!(mitchell_mul(a, b) as u64, a * b, "{a}*{b}");
                }
            }
        }
        assert_eq!(mitchell_mul(0, 55), 0);
        assert_eq!(mitchell_mul(55, 0), 0);
    }

    #[test]
    fn mitchell_error_bounded() {
        // Mitchell under-approximates by at most ~11.1%.
        for a in 1u64..=127 {
            for b in 1u64..=127 {
                let approx = mitchell_mul(a, b) as f64;
                let exact = (a * b) as f64;
                let rel = (approx - exact) / exact;
                assert!(rel <= 0.0, "{a}*{b}: Mitchell must not over-approximate");
                assert!(rel >= -0.1115, "{a}*{b}: rel error {rel}");
            }
        }
    }

    #[test]
    fn table_matches_direct_formula_and_signs() {
        let t = lut_for(8);
        assert_eq!(t.qmax, 127);
        assert_eq!(t.mul_mag(3, 3), mitchell_mul(3, 3) as i32);
        assert_eq!(t.mul(-3, 3), -t.mul(3, 3));
        assert_eq!(t.mul(-3, -3), t.mul(3, 3));
    }

    #[test]
    fn quantize_roundtrip_small_error() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.013).collect();
        let q = quantize_symmetric(&xs, 8);
        let worst = xs
            .iter()
            .zip(&q.q)
            .map(|(&x, &v)| (x - v as f32 * q.scale).abs())
            .fold(0.0f32, f32::max);
        // Max quantisation error is scale/2.
        assert!(worst <= q.scale * 0.5 + 1e-6, "worst {worst}");
    }

    #[test]
    fn quantize_handles_degenerate_inputs() {
        let q = quantize_symmetric(&[0.0, 0.0], 8);
        assert_eq!(q.q, vec![0, 0]);
        assert!(q.scale > 0.0);
        let q = quantize_symmetric(&[], 6);
        assert!(q.q.is_empty());
    }

    #[test]
    fn fewer_bits_coarser() {
        let xs: Vec<f32> = (0..256).map(|i| (i as f32) * 0.01 - 1.2).collect();
        let err = |bits: u8| {
            let q = quantize_symmetric(&xs, bits);
            xs.iter()
                .zip(&q.q)
                .map(|(&x, &v)| {
                    let d = (x - v as f32 * q.scale) as f64;
                    d * d
                })
                .sum::<f64>()
        };
        assert!(err(4) > err(6));
        assert!(err(6) > err(8));
    }
}
