//! Error type for tensor operations.

use std::fmt;

/// Errors raised by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The shapes involved, rendered for the message.
        detail: String,
    },
    /// The requested approximation knob is invalid for the operation
    /// (e.g. a perforation offset outside `0..k`).
    InvalidKnob {
        /// Operation name.
        op: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// The data length does not match the product of the dimensions.
    DataLength {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// An operation that needs at least one node was given an empty graph.
    EmptyGraph,
    /// A transient evaluation failure (flaky device, simulator hiccup,
    /// injected fault) that may well succeed if the same work is retried.
    Transient {
        /// What failed, for logs.
        detail: String,
    },
    /// A structural graph-level failure (invalid wiring, poisoned builder,
    /// non-finite parameters) bubbled up from `at-ir`'s `GraphError` into
    /// code that works in terms of `TensorError`.
    Graph {
        /// Rendered description of the graph-level failure.
        detail: String,
    },
    /// An ABFT checksum (or content fingerprint) disagreed with the data it
    /// protects: the output is silently corrupt and must not be used.
    /// Unlike [`TensorError::Transient`], retrying the *same* state is not
    /// expected to help — the caller should re-execute on healthy state.
    CorruptionDetected {
        /// Operation (or artifact) whose integrity check failed.
        op: &'static str,
        /// Which check tripped and by how much, for logs.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            TensorError::InvalidKnob { op, detail } => {
                write!(f, "invalid approximation knob for {op}: {detail}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::DataLength { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape volume {expected}"
                )
            }
            TensorError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            TensorError::Transient { detail } => write!(f, "transient failure: {detail}"),
            TensorError::Graph { detail } => write!(f, "graph error: {detail}"),
            TensorError::CorruptionDetected { op, detail } => {
                write!(f, "silent data corruption detected in {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
