//! Software IEEE 754 binary16 ("FP16").
//!
//! The paper treats FP16 as an approximation with *hardware-independent
//! semantics*: its effect on output quality is fixed even though the
//! performance benefit requires hardware support. We therefore implement the
//! exact binary16 quantisation in software (round-to-nearest-even, with
//! subnormal and infinity handling) and use it to model the QoS impact of
//! FP16 execution; the speed/energy benefit is modelled by `at-hw`.

use serde::{Deserialize, Serialize};

/// A 16-bit IEEE 754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct F16(pub u16);

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // NaN or infinity.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow: round to infinity.
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal range. 10-bit mantissa; round to nearest even on the
            // 13 truncated bits.
            let mut m = mant >> 13;
            let rem = mant & 0x1FFF;
            if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
                m += 1;
            }
            let mut he = (e + 15) as u32;
            if m == 0x400 {
                // Mantissa rounding overflowed into the exponent.
                m = 0;
                he += 1;
                if he >= 31 {
                    return F16(sign | 0x7C00);
                }
            }
            return F16(sign | ((he as u16) << 10) | (m as u16));
        }
        if e >= -24 {
            // Subnormal range: shift the implicit leading 1 into the mantissa.
            // e in [-24, -15]; value = full * 2^(e-23); the fp16 subnormal ulp
            // is 2^-24, so the mantissa is full >> (13 + (-14 - e)).
            let full = mant | 0x0080_0000;
            let drop = (13 + (-14 - e)) as u32;
            let mut m = full >> drop;
            let rem = full & ((1u32 << drop) - 1);
            let half = 1u32 << (drop - 1);
            if rem > half || (rem == half && (m & 1) == 1) {
                m += 1;
            }
            if m == 0x400 {
                // Rounded up into the smallest normal.
                return F16(sign | (1 << 10));
            }
            return F16(sign | m as u16);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts this binary16 value to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let h = self.0 as u32;
        let sign = (h & 0x8000) << 16;
        let exp = (h >> 10) & 0x1F;
        let mant = h & 0x3FF;
        let bits = match (exp, mant) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: value = m * 2^-24 = 0.m * 2^-14; normalise by
                // shifting the leading 1 up to bit 10.
                let mut e = -14i32;
                let mut m = m;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }
}

/// Quantises a single `f32` through binary16 and back ("fp16 semantics").
#[inline]
pub fn quantize(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Length at which slice quantisation switches to rayon (elementwise, so
/// partitioning cannot change results).
const PAR_THRESHOLD: usize = 1 << 14;

/// Quantises a slice in place through binary16.
pub fn quantize_slice(xs: &mut [f32]) {
    use rayon::prelude::*;
    if xs.len() >= PAR_THRESHOLD {
        xs.par_chunks_mut(PAR_THRESHOLD).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x = quantize(*x);
            }
        });
    } else {
        for x in xs.iter_mut() {
            *x = quantize(*x);
        }
    }
}

/// Returns a quantised copy of the slice.
pub fn quantized(xs: &[f32]) -> Vec<f32> {
    use rayon::prelude::*;
    if xs.len() >= PAR_THRESHOLD {
        xs.par_iter().map(|&x| quantize(x)).collect()
    } else {
        xs.iter().map(|&x| quantize(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(quantize(x), x, "integer {i} should be exact in fp16");
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(F16::from_f32(1.0).0, 0x3C00);
        assert_eq!(F16::from_f32(-2.0).0, 0xC000);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::from_f32(65504.0).0, 0x7BFF);
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        assert!(F16::INFINITY.to_f32().is_infinite());
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).0, 0x0001);
        assert_eq!(F16(0x0001).to_f32(), tiny);
        // Below half of the smallest subnormal flushes to zero.
        assert_eq!(F16::from_f32(tiny / 4.0).0, 0x0000);
        // Largest subnormal.
        let largest_sub = 2.0_f32.powi(-14) - 2.0_f32.powi(-24);
        assert_eq!(F16::from_f32(largest_sub).0, 0x03FF);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16
        // (1 + 2^-10); round-to-even keeps 1.0.
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(quantize(halfway), 1.0);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-18);
        assert_eq!(quantize(above), 1.0 + 2.0_f32.powi(-10));
    }

    #[test]
    fn quantisation_is_idempotent() {
        let mut xs: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.137).collect();
        quantize_slice(&mut xs);
        let once = xs.clone();
        quantize_slice(&mut xs);
        assert_eq!(once, xs);
    }

    #[test]
    fn relative_error_bound_in_normal_range() {
        // binary16 has 11 bits of significand: rel. error <= 2^-11.
        for i in 1..10_000 {
            let x = i as f32 * 0.01 + 0.003;
            let q = quantize(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 2.0_f32.powi(-11), "x={x} q={q} rel={rel}");
        }
    }
}
