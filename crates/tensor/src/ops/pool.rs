//! Max and average pooling. Average pooling is a *reduction* in the paper's
//! taxonomy and therefore supports reduction sampling.

use crate::error::TensorError;
use crate::knobs::{Precision, ReduceApprox};
use crate::shape::{conv_out_dim, Shape};
use crate::tensor::Tensor;
use rayon::prelude::*;

fn pool_out_shape(
    input: Shape,
    window: (usize, usize),
    pad: (usize, usize),
    stride: (usize, usize),
) -> Result<Shape, TensorError> {
    let (n, c, h, w) = input.as_nchw()?;
    if window.0 == 0 || window.1 == 0 || stride.0 == 0 || stride.1 == 0 {
        return Err(TensorError::InvalidKnob {
            op: "pool2d",
            detail: "window and stride must be positive".into(),
        });
    }
    if window.0 > h + 2 * pad.0 || window.1 > w + 2 * pad.1 {
        return Err(TensorError::ShapeMismatch {
            op: "pool2d",
            detail: format!("window {window:?} larger than padded input {h}x{w}"),
        });
    }
    Ok(Shape::nchw(
        n,
        c,
        conv_out_dim(h, window.0, pad.0, stride.0),
        conv_out_dim(w, window.1, pad.1, stride.1),
    ))
}

fn pool2d_impl(
    input: &Tensor,
    window: (usize, usize),
    pad: (usize, usize),
    stride: (usize, usize),
    precision: Precision,
    f: impl Fn(&mut dyn Iterator<Item = f32>) -> f32 + Sync,
) -> Result<Tensor, TensorError> {
    let out_shape = pool_out_shape(input.shape(), window, pad, stride)?;
    let (_, c, h, w) = input.shape().as_nchw()?;
    let (_, _, ho, wo) = out_shape.as_nchw()?;

    let qin;
    let input = match precision {
        Precision::Fp32 => input,
        Precision::Fp16 => {
            qin = input.to_f16();
            &qin
        }
    };
    let data = input.data();
    let plane_out = ho * wo;
    let mut out = vec![0.0f32; out_shape.volume()];
    out.par_chunks_mut(plane_out)
        .enumerate()
        .for_each(|(idx, op)| {
            let b = idx / c;
            let ch = idx % c;
            let in_base = (b * c + ch) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let iy0 = (oy * stride.0) as isize - pad.0 as isize;
                    let ix0 = (ox * stride.1) as isize - pad.1 as isize;
                    let mut it = (0..window.0)
                        .flat_map(|ky| {
                            let iy = iy0 + ky as isize;
                            (0..window.1).filter_map(move |kx| {
                                let ix = ix0 + kx as isize;
                                if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                    Some((iy as usize, ix as usize))
                                } else {
                                    None
                                }
                            })
                        })
                        .map(|(iy, ix)| data[in_base + iy * w + ix]);
                    op[oy * wo + ox] = f(&mut it);
                }
            }
        });

    let mut t = Tensor::from_vec(out_shape, out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

/// Max pooling over `window` with `stride` and symmetric `pad`.
pub fn max_pool2d(
    input: &Tensor,
    window: (usize, usize),
    pad: (usize, usize),
    stride: (usize, usize),
    precision: Precision,
) -> Result<Tensor, TensorError> {
    pool2d_impl(input, window, pad, stride, precision, |it| {
        it.fold(f32::NEG_INFINITY, f32::max)
    })
}

/// Average pooling with optional reduction sampling.
///
/// Under `ReduceApprox::Sampling { num, den }` only `num` of every `den`
/// window elements are visited and the mean is taken over the visited
/// subset, mirroring the paper's reduction sampling (the result is rescaled
/// implicitly by averaging over fewer elements).
pub fn avg_pool2d(
    input: &Tensor,
    window: (usize, usize),
    pad: (usize, usize),
    stride: (usize, usize),
    approx: ReduceApprox,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    approx.validate()?;
    let denom = (window.0 * window.1) as f32;
    match approx {
        ReduceApprox::Exact => pool2d_impl(input, window, pad, stride, precision, move |it| {
            it.sum::<f32>() / denom
        }),
        ReduceApprox::Sampling { num, den } => {
            pool2d_impl(input, window, pad, stride, precision, move |it| {
                let mut sum = 0.0f32;
                let mut used = 0usize;
                for (i, v) in it.enumerate() {
                    if i % den < num {
                        sum += v;
                        used += 1;
                    }
                }
                if used == 0 {
                    0.0
                } else {
                    sum / used as f32
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            Shape::nchw(n, c, h, w),
            (0..n * c * h * w).map(|i| i as f32).collect(),
        )
        .unwrap()
    }

    #[test]
    fn max_pool_2x2() {
        let input = ramp(1, 1, 4, 4);
        let out = max_pool2d(&input, (2, 2), (0, 0), (2, 2), Precision::Fp32).unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 1, 2, 2));
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let input = ramp(1, 1, 4, 4);
        let out = avg_pool2d(
            &input,
            (2, 2),
            (0, 0),
            (2, 2),
            ReduceApprox::Exact,
            Precision::Fp32,
        )
        .unwrap();
        assert_eq!(out.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_sampling_exact_on_constant() {
        let input = Tensor::full(Shape::nchw(1, 2, 8, 8), 4.2);
        for approx in ReduceApprox::ALL_SAMPLING {
            let out = avg_pool2d(&input, (2, 2), (0, 0), (2, 2), approx, Precision::Fp32).unwrap();
            for &v in out.data() {
                assert!((v - 4.2).abs() < 1e-6, "sampled avg of constant = {v}");
            }
        }
    }

    #[test]
    fn avg_pool_sampling_differs_on_ramp() {
        let input = ramp(1, 1, 8, 8);
        let exact = avg_pool2d(
            &input,
            (4, 4),
            (0, 0),
            (4, 4),
            ReduceApprox::Exact,
            Precision::Fp32,
        )
        .unwrap();
        let approx = avg_pool2d(
            &input,
            (4, 4),
            (0, 0),
            (4, 4),
            ReduceApprox::QUARTER,
            Precision::Fp32,
        )
        .unwrap();
        assert!(exact.mse(&approx).unwrap() > 0.0);
    }

    #[test]
    fn padding_excluded_from_average() {
        // With pad 1, corner windows see fewer valid elements; the mean is
        // over valid elements only.
        let input = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let out = avg_pool2d(
            &input,
            (2, 2),
            (1, 1),
            (2, 2),
            ReduceApprox::Exact,
            Precision::Fp32,
        )
        .unwrap();
        // Mean is computed over the full window denominator, matching
        // count_include_pad=false semantics for the sum but fixed denom:
        // corner window sees one valid element of value 1 → 1/4.
        assert_eq!(out.at4(0, 0, 0, 0), 0.25);
    }

    #[test]
    fn zero_window_rejected() {
        let input = ramp(1, 1, 4, 4);
        assert!(max_pool2d(&input, (0, 2), (0, 0), (1, 1), Precision::Fp32).is_err());
    }
}
