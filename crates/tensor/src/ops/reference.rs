//! Naive reference kernels — the oracle for the differential test harness.
//!
//! These are the original straightforward implementations (triple-loop
//! matmul, direct seven-loop convolution), kept verbatim when the optimised
//! tiled/im2col kernels replaced them on the hot path. The optimised
//! kernels are required to match these **bit-for-bit** for exact-FP32 and
//! LUT-multiplier configurations (see `tests/differential.rs`), which only
//! works because both sides accumulate each output element in the same
//! order; do not "clean up" loop orders here without updating that
//! contract.

use crate::error::TensorError;
use crate::knobs::{ConvApprox, MulApprox, PerforationDim, Precision};
use crate::lut;
use crate::ops::conv::Conv2dParams;
use crate::shape::{conv2d_out_shape, Shape};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Naive `C = A × B` (`A: [M,K]`, `B: [K,N]`): k-outer accumulation over
/// rows of `B`, one f32 accumulator per output, increasing-`k` order.
pub fn matmul_reference(
    a: &Tensor,
    b: &Tensor,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_mat()?;
    let (kb, n) = b.shape().as_mat()?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {ka} vs {kb}"),
        });
    }

    let (qa, qb);
    let (a, b) = match precision {
        Precision::Fp32 => (a, b),
        Precision::Fp16 => {
            qa = a.to_f16();
            qb = b.to_f16();
            (&qa, &qb)
        }
    };

    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(row, orow)| {
        let arow = &ad[row * ka..(row + 1) * ka];
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(bv, *o);
            }
        }
    });

    let mut t = Tensor::from_vec(Shape::mat(m, n), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

/// Naive oracle for the fused dense layer (`matmul_ex`): matmul, optional
/// fp16 quantisation, per-column bias, fp16 again — scalar loops for the
/// LUT-multiplier path.
pub fn matmul_ex_reference(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    precision: Precision,
    mul: MulApprox,
) -> Result<Tensor, TensorError> {
    mul.validate()?;
    let (m, ka) = a.shape().as_mat()?;
    let (kb, n) = b.shape().as_mat()?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {ka} vs {kb}"),
        });
    }
    if let Some(bt) = bias {
        if bt.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "bias_add",
                detail: format!("bias len {} != cols {n}", bt.len()),
            });
        }
    }
    let bits = match mul {
        MulApprox::Exact => {
            let out = matmul_reference(a, b, precision)?;
            return match bias {
                Some(bt) => crate::ops::matmul::bias_add_rows(&out, bt, precision),
                None => Ok(out),
            };
        }
        MulApprox::Lut { bits } => bits,
    };

    let (qa, qb);
    let (a, b) = match precision {
        Precision::Fp32 => (a, b),
        Precision::Fp16 => {
            qa = a.to_f16();
            qb = b.to_f16();
            (&qa, &qb)
        }
    };
    let fp16 = precision == Precision::Fp16;
    let table = lut::lut_for(bits);
    let aq = lut::quantize_symmetric(a.data(), bits);
    let bq = lut::quantize_symmetric(b.data(), bits);
    let dq = aq.scale * bq.scale;
    let bd = bias.map(|t| t.data());

    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0i64;
            for kk in 0..ka {
                s += i64::from(table.mul(aq.q[i * ka + kk], bq.q[kk * n + j]));
            }
            let mut v = s as f32 * dq;
            if fp16 {
                v = crate::f16::quantize(v);
            }
            if let Some(bd) = bd {
                v += bd[j];
                if fp16 {
                    v = crate::f16::quantize(v);
                }
            }
            out[i * n + j] = v;
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

/// Naive direct 2-D convolution supporting every [`Conv2dParams`] setting
/// (groups, filter sampling, perforation, FP16, LUT multipliers).
///
/// This is the original hand-written kernel, parallelised over
/// `(batch, output-channel)` planes; each output accumulates its window in
/// flattened `(channel, ky, kx)` order.
pub fn conv2d_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    params.approx.validate()?;
    params.mul.validate()?;
    let (_, c, _, _) = input.shape().as_nchw()?;
    let (k, wc, _, _) = weight.shape().as_nchw()?;
    let groups = params.groups.max(1);
    if c % groups != 0 || k % groups != 0 || wc != c / groups {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!(
                "groups={groups} incompatible with input channels {c}, weight [{k},{wc},..]"
            ),
        });
    }
    let pseudo_input = {
        let (n, _, h, w) = input.shape().as_nchw()?;
        Shape::nchw(n, wc, h, w)
    };
    let out_shape = conv2d_out_shape(pseudo_input, weight.shape(), params.pad, params.stride)?;
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                detail: format!("bias length {} != output channels {k}", b.len()),
            });
        }
    }

    let (qin, qw, qb);
    let (input, weight, bias) = match params.precision {
        Precision::Fp32 => (input, weight, bias),
        Precision::Fp16 => {
            qin = input.to_f16();
            qw = weight.to_f16();
            qb = bias.map(|b| b.to_f16());
            (&qin, &qw, qb.as_ref())
        }
    };

    // LUT path: whole-tensor symmetric quantisation of both operands.
    let lut_ctx = match params.mul {
        MulApprox::Exact => None,
        MulApprox::Lut { bits } => {
            let qi = lut::quantize_symmetric(input.data(), bits);
            let qw = lut::quantize_symmetric(weight.data(), bits);
            let dq = qi.scale * qw.scale;
            Some((lut::lut_for(bits), qi, qw, dq))
        }
    };

    let mut out = compute_direct(input, weight, bias, params, out_shape, lut_ctx.as_ref())?;
    if params.precision == Precision::Fp16 {
        out.quantize_f16();
    }
    Ok(out)
}

type LutCtx<'a> = (
    &'a lut::LutTable,
    lut::QuantizedTensor,
    lut::QuantizedTensor,
    f32,
);

fn compute_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out_shape: Shape,
    lut_ctx: Option<&LutCtx>,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (k, cpg, r, s) = weight.shape().as_nchw()?; // cpg = channels/group
    let (_, _, ho, wo) = out_shape.as_nchw()?;
    let (ph, pw) = params.pad;
    let (sh, sw) = params.stride;
    let groups = params.groups.max(1);
    let kpg = k / groups; // output channels per group

    // Filter-sampling mask: kept[(c,r,s) flattened] with compensation scale.
    let (mask, scale) = match params.approx {
        ConvApprox::FilterSampling { k: kk, offset } => {
            let total = cpg * r * s;
            let mask: Vec<bool> = (0..total).map(|i| i % kk != offset).collect();
            let kept = mask.iter().filter(|&&m| m).count().max(1);
            (Some(mask), total as f32 / kept as f32)
        }
        _ => (None, 1.0),
    };

    let in_data = input.data();
    let w_data = weight.data();
    let plane = ho * wo;
    let mut out = vec![0.0f32; n * k * plane];

    out.par_chunks_mut(plane).enumerate().for_each(|(idx, op)| {
        let b = idx / k; // batch index
        let oc = idx % k; // output channel
        let g = oc / kpg; // channel group
        let ic_start = g * cpg;
        let w_base = oc * cpg * r * s;
        let bias_v = bias.map_or(0.0, |bt| bt.data()[oc]);

        let skip = |coord: usize| -> bool {
            match params.approx {
                ConvApprox::Perforation {
                    dim: _,
                    k: kk,
                    offset,
                } => coord % kk == offset,
                _ => false,
            }
        };
        let (perf_rows, perf_cols) = match params.approx {
            ConvApprox::Perforation { dim, .. } => {
                (dim == PerforationDim::Row, dim == PerforationDim::Col)
            }
            _ => (false, false),
        };

        for oy in 0..ho {
            if perf_rows && skip(oy) {
                continue; // interpolated later
            }
            for ox in 0..wo {
                if perf_cols && skip(ox) {
                    continue;
                }
                let iy0 = (oy * sh) as isize - ph as isize;
                let ix0 = (ox * sw) as isize - pw as isize;
                // One accumulation walk over the (channel, ky, kx) window,
                // exact f32 or table-served integer depending on `mul`.
                let acc_val: f32 = if let Some((table, qi, qw, dq)) = lut_ctx {
                    let mut acc = 0i64;
                    for icw in 0..cpg {
                        let ic = ic_start + icw;
                        let in_base = (b * c + ic) * h * w;
                        let wk_base = w_base + icw * r * s;
                        for ky in 0..r {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row_base = in_base + iy as usize * w;
                            let wrow = wk_base + ky * s;
                            for kx in 0..s {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                if let Some(m) = &mask {
                                    if !m[icw * r * s + ky * s + kx] {
                                        continue;
                                    }
                                }
                                acc += i64::from(
                                    table.mul(qi.q[row_base + ix as usize], qw.q[wrow + kx]),
                                );
                            }
                        }
                    }
                    acc as f32 * dq
                } else {
                    let mut acc = 0.0f32;
                    for icw in 0..cpg {
                        let ic = ic_start + icw;
                        let in_base = (b * c + ic) * h * w;
                        let wk_base = w_base + icw * r * s;
                        for ky in 0..r {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row_base = in_base + iy as usize * w;
                            let wrow = wk_base + ky * s;
                            for kx in 0..s {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                if let Some(m) = &mask {
                                    // Mask is indexed by the (c,r,s)-flattened
                                    // filter element, shared across all output
                                    // channels.
                                    if !m[icw * r * s + ky * s + kx] {
                                        continue;
                                    }
                                }
                                acc =
                                    in_data[row_base + ix as usize].mul_add(w_data[wrow + kx], acc);
                            }
                        }
                    }
                    acc
                };
                op[oy * wo + ox] = acc_val * scale + bias_v;
            }
        }

        // Interpolation pass for perforated outputs: nearest-neighbour
        // averaging of computed elements (Figurnov et al.).
        if perf_rows {
            for oy in 0..ho {
                if !skip(oy) {
                    continue;
                }
                let above = (0..oy).rev().find(|&y| !skip(y));
                let below = (oy + 1..ho).find(|&y| !skip(y));
                for ox in 0..wo {
                    op[oy * wo + ox] = match (above, below) {
                        (Some(a), Some(bl)) => 0.5 * (op[a * wo + ox] + op[bl * wo + ox]),
                        (Some(a), None) => op[a * wo + ox],
                        (None, Some(bl)) => op[bl * wo + ox],
                        (None, None) => bias_v,
                    };
                }
            }
        } else if perf_cols {
            for ox in 0..wo {
                if !skip(ox) {
                    continue;
                }
                let left = (0..ox).rev().find(|&x| !skip(x));
                let right = (ox + 1..wo).find(|&x| !skip(x));
                for oy in 0..ho {
                    op[oy * wo + ox] = match (left, right) {
                        (Some(l), Some(rr)) => 0.5 * (op[oy * wo + l] + op[oy * wo + rr]),
                        (Some(l), None) => op[oy * wo + l],
                        (None, Some(rr)) => op[oy * wo + rr],
                        (None, None) => bias_v,
                    };
                }
            }
        }
    });

    Tensor::from_vec(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matmul_known_product() {
        let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul_reference(&a, &b, Precision::Fp32).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn reference_conv_identity() {
        let input =
            Tensor::from_vec(Shape::nchw(1, 1, 4, 4), (0..16).map(|i| i as f32).collect()).unwrap();
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = conv2d_reference(&input, &weight, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn reference_lut_close_to_exact_at_8_bits() {
        let input =
            Tensor::from_vec(Shape::nchw(1, 1, 4, 4), (0..16).map(|i| i as f32).collect()).unwrap();
        let weight = Tensor::full(Shape::nchw(1, 1, 3, 3), 0.5);
        let exact = conv2d_reference(&input, &weight, None, Conv2dParams::default()).unwrap();
        let lut = conv2d_reference(
            &input,
            &weight,
            None,
            Conv2dParams {
                mul: MulApprox::Lut { bits: 8 },
                ..Default::default()
            },
        )
        .unwrap();
        // Mitchell at 8 bits: few-percent relative error on positives.
        for (e, l) in exact.data().iter().zip(lut.data()) {
            assert!((e - l).abs() <= 0.12 * e.abs().max(1.0), "{e} vs {l}");
        }
    }
}
