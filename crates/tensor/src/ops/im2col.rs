//! im2col lowering: convolution as patch-matrix GEMM — for the exact
//! kernel **and every approximation**.
//!
//! Each (image, group) pair builds a patch matrix `B[F, P]` whose rows are
//! flattened filter elements and whose columns are output positions, then
//! multiplies it by the group's weight matrix `A[K/g, F]` on the tiled GEMM
//! core ([`super::gemm`]). The approximations *prune the lowering itself*,
//! so skipped work is genuinely never computed:
//!
//! * **Filter sampling** drops the skipped filter elements' *rows* from
//!   both `A` and `B` (the GEMM inner dimension shrinks by `1/k`).
//! * **Perforation** drops the skipped output positions' *columns* from
//!   `B` (the GEMM output shrinks by `1/k`); the missing outputs are
//!   interpolated from computed neighbours after the GEMM, exactly like
//!   the direct kernel.
//! * **LUT multipliers** build the patch matrix over `i16`-quantised
//!   operands and run the integer table-served GEMM.
//!
//! The bias/scale/FP16/ReLU epilogue is fused into the GEMM's output
//! write ([`super::gemm::Epilogue`]), so no unbiased intermediate is
//! materialised. Results are bit-identical to the direct reference kernel
//! ([`super::reference`]) for every configuration: both sides accumulate
//! each output in increasing flattened `(channel, ky, kx)` order, and
//! padding contributes exact zeros.

use crate::error::TensorError;
use crate::f16;
use crate::knobs::{ConvApprox, MulApprox, PerforationDim, Precision};
use crate::lut;
use crate::ops::conv::Conv2dParams;
use crate::ops::gemm::{self, Epilogue};
use crate::shape::{conv2d_out_shape, Shape};
use crate::tensor::Tensor;

/// Element type a patch matrix can be built over (f32 exact path, i16
/// LUT-quantised path). `ZERO` is the padding value.
trait PatchElem: Copy + Send + Sync {
    const ZERO: Self;
}
impl PatchElem for f32 {
    const ZERO: Self = 0.0;
}
impl PatchElem for i16 {
    const ZERO: Self = 0;
}

/// Resolved geometry and pruning decisions for one lowered convolution.
struct LowerPlan<'a> {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    cpg: usize,
    r: usize,
    s: usize,
    ho: usize,
    wo: usize,
    pad: (usize, usize),
    stride: (usize, usize),
    groups: usize,
    kpg: usize,
    /// Kept flattened filter indices, increasing (= accumulation order).
    kept: &'a [usize],
    /// Filter-sampling compensation factor.
    scale: f32,
    /// Computed output rows (all rows unless row-perforated).
    oys: &'a [usize],
    /// Computed output columns (all columns unless column-perforated).
    oxs: &'a [usize],
    /// Perforation `(dim, k, offset)` if active.
    perf: Option<(PerforationDim, usize, usize)>,
    fp16: bool,
    fuse_relu: bool,
}

/// Packs one group's kept weight elements into a dense `[kpg, kept]` GEMM
/// A matrix.
fn pack_weights<T: PatchElem>(
    w_data: &[T],
    g: usize,
    kpg: usize,
    total: usize,
    kept: &[usize],
) -> Vec<T> {
    let mut a = Vec::with_capacity(kpg * kept.len());
    for di in 0..kpg {
        let base = (g * kpg + di) * total;
        for &idx in kept {
            a.push(w_data[base + idx]);
        }
    }
    a
}

/// Builds the row- and column-pruned patch matrix `B[kept, oys×oxs]` for
/// one (image, group): `B[kr, p]` is the input value under filter element
/// `kept[kr]` at output position `p`, or zero where the window pads.
fn pack_patches<T: PatchElem>(plan: &LowerPlan, in_data: &[T], b: usize, g: usize) -> Vec<T> {
    let (h, w) = (plan.h, plan.w);
    let (r, s) = (plan.r, plan.s);
    let (ph, pw) = plan.pad;
    let (sh, sw) = plan.stride;
    let n_pos = plan.oys.len() * plan.oxs.len();
    let ic_start = g * plan.cpg;
    let mut bmat = vec![T::ZERO; plan.kept.len() * n_pos];
    if n_pos == 0 {
        return bmat;
    }
    for (kr, brow) in bmat.chunks_mut(n_pos).enumerate() {
        let idx = plan.kept[kr];
        let icw = idx / (r * s);
        let rem = idx % (r * s);
        let ky = rem / s;
        let kx = rem % s;
        let in_base = (b * plan.c + ic_start + icw) * h * w;
        let mut p = 0;
        for &oy in plan.oys {
            let iy = (oy * sh + ky) as isize - ph as isize;
            if iy < 0 || iy >= h as isize {
                p += plan.oxs.len(); // whole row pads: stays ZERO
                continue;
            }
            let row_base = in_base + iy as usize * w;
            for &ox in plan.oxs {
                let ix = (ox * sw + kx) as isize - pw as isize;
                if ix >= 0 && ix < w as isize {
                    brow[p] = in_data[row_base + ix as usize];
                }
                p += 1;
            }
        }
    }
    bmat
}

/// Interpolation pass for perforated outputs: nearest-neighbour averaging
/// of computed elements (Figurnov et al.) — expression-identical to the
/// direct reference kernel.
fn interpolate(
    op: &mut [f32],
    ho: usize,
    wo: usize,
    dim: PerforationDim,
    kk: usize,
    offset: usize,
    bias_v: f32,
) {
    let skip = |coord: usize| coord % kk == offset;
    match dim {
        PerforationDim::Row => {
            for oy in 0..ho {
                if !skip(oy) {
                    continue;
                }
                let above = (0..oy).rev().find(|&y| !skip(y));
                let below = (oy + 1..ho).find(|&y| !skip(y));
                for ox in 0..wo {
                    op[oy * wo + ox] = match (above, below) {
                        (Some(a), Some(bl)) => 0.5 * (op[a * wo + ox] + op[bl * wo + ox]),
                        (Some(a), None) => op[a * wo + ox],
                        (None, Some(bl)) => op[bl * wo + ox],
                        (None, None) => bias_v,
                    };
                }
            }
        }
        PerforationDim::Col => {
            for ox in 0..wo {
                if !skip(ox) {
                    continue;
                }
                let left = (0..ox).rev().find(|&x| !skip(x));
                let right = (ox + 1..wo).find(|&x| !skip(x));
                for oy in 0..ho {
                    op[oy * wo + ox] = match (left, right) {
                        (Some(l), Some(rr)) => 0.5 * (op[oy * wo + l] + op[oy * wo + rr]),
                        (Some(l), None) => op[oy * wo + l],
                        (None, Some(rr)) => op[oy * wo + rr],
                        (None, None) => bias_v,
                    };
                }
            }
        }
    }
}

/// Drives the pack → GEMM → epilogue/scatter pipeline over all
/// (group, image) pairs. `gemm_call(m, k, n, a, b, dst, epi)` runs the
/// element-type-appropriate GEMM.
#[allow(clippy::type_complexity)]
fn run_lowered<T: PatchElem>(
    plan: &LowerPlan,
    in_data: &[T],
    w_data: &[T],
    bias_data: Option<&[f32]>,
    out: &mut [f32],
    gemm_call: &dyn Fn(usize, usize, usize, &[T], &[T], &mut [f32], &Epilogue),
) {
    let total = plan.cpg * plan.r * plan.s;
    let n_pos = plan.oys.len() * plan.oxs.len();
    let kk2 = plan.kept.len();
    let plane = plan.ho * plan.wo;
    for g in 0..plan.groups {
        let a_pack = pack_weights(w_data, g, plan.kpg, total, plan.kept);
        let bias_slice = bias_data.map(|bd| &bd[g * plan.kpg..(g + 1) * plan.kpg]);
        for bimg in 0..plan.n {
            let b_pack = pack_patches(plan, in_data, bimg, g);
            let out_base = (bimg * plan.k + g * plan.kpg) * plane;
            match plan.perf {
                None => {
                    // Columns cover the full plane in row-major order, so
                    // the GEMM writes the group's output planes directly,
                    // epilogue fused.
                    let epi = Epilogue::Conv {
                        scale: plan.scale,
                        bias: bias_slice,
                        fp16: plan.fp16,
                        relu: plan.fuse_relu,
                    };
                    gemm_call(
                        plan.kpg,
                        kk2,
                        n_pos,
                        &a_pack,
                        &b_pack,
                        &mut out[out_base..out_base + plan.kpg * plane],
                        &epi,
                    );
                }
                Some((dim, pk, poff)) => {
                    // Compute only the kept columns, then scatter and
                    // interpolate. Quantisation/ReLU must run *after*
                    // interpolation (matching the reference kernel), so the
                    // GEMM epilogue applies only scale and bias.
                    let mut cbuf = vec![0.0f32; plan.kpg * n_pos];
                    let epi = Epilogue::Conv {
                        scale: plan.scale,
                        bias: bias_slice,
                        fp16: false,
                        relu: false,
                    };
                    gemm_call(plan.kpg, kk2, n_pos, &a_pack, &b_pack, &mut cbuf, &epi);
                    for di in 0..plan.kpg {
                        let op = &mut out[out_base + di * plane..out_base + (di + 1) * plane];
                        let crow = &cbuf[di * n_pos..(di + 1) * n_pos];
                        let mut p = 0;
                        for &oy in plan.oys {
                            for &ox in plan.oxs {
                                op[oy * plan.wo + ox] = crow[p];
                                p += 1;
                            }
                        }
                        let bias_v = bias_slice.map_or(0.0, |bs| bs[di]);
                        interpolate(op, plan.ho, plan.wo, dim, pk, poff, bias_v);
                        if plan.fp16 {
                            for v in op.iter_mut() {
                                *v = f16::quantize(*v);
                            }
                        }
                        if plan.fuse_relu {
                            for v in op.iter_mut() {
                                *v = v.max(0.0);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Lowers a convolution (any [`Conv2dParams`] setting, optionally with a
/// fused trailing ReLU) through im2col onto the tiled GEMM.
///
/// This is the kernel behind [`super::conv2d`] and
/// [`super::conv::conv2d_fused_relu`]; results are bit-identical to the
/// direct reference kernel for every configuration.
pub fn conv2d_lowered(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    fuse_relu: bool,
) -> Result<Tensor, TensorError> {
    conv2d_lowered_impl(input, weight, bias, params, fuse_relu, false)
}

/// ABFT twin of [`conv2d_lowered`]: every lowered GEMM runs with a raw
/// epilogue, its Huang–Abraham checksums are verified against the packed
/// panels ([`super::abft`]), and only then is the epilogue applied — so
/// clean outputs stay bit-identical while corrupted accumulators surface
/// as [`TensorError::CorruptionDetected`].
pub(crate) fn conv2d_lowered_abft(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    fuse_relu: bool,
) -> Result<Tensor, TensorError> {
    conv2d_lowered_impl(input, weight, bias, params, fuse_relu, true)
}

fn conv2d_lowered_impl(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    fuse_relu: bool,
    verify: bool,
) -> Result<Tensor, TensorError> {
    params.approx.validate()?;
    params.mul.validate()?;
    let (_, c, _, _) = input.shape().as_nchw()?;
    let (k, wc, _, _) = weight.shape().as_nchw()?;
    let groups = params.groups.max(1);
    if c % groups != 0 || k % groups != 0 || wc != c / groups {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!(
                "groups={groups} incompatible with input channels {c}, weight [{k},{wc},..]"
            ),
        });
    }
    // Shape algebra is the same as a dense conv with C/groups input
    // channels per filter.
    let pseudo_input = {
        let (n, _, h, w) = input.shape().as_nchw()?;
        Shape::nchw(n, wc, h, w)
    };
    let out_shape = conv2d_out_shape(pseudo_input, weight.shape(), params.pad, params.stride)?;
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                detail: format!("bias length {} != output channels {k}", b.len()),
            });
        }
    }

    // FP16 semantics: quantise operands, accumulate in f32, quantise result.
    let (qin, qwt, qb);
    let (input, weight, bias) = match params.precision {
        Precision::Fp32 => (input, weight, bias),
        Precision::Fp16 => {
            qin = input.to_f16();
            qwt = weight.to_f16();
            qb = bias.map(|b| b.to_f16());
            (&qin, &qwt, qb.as_ref())
        }
    };

    let (n, _, h, w) = input.shape().as_nchw()?;
    let (_, cpg, r, s) = weight.shape().as_nchw()?;
    let (_, _, ho, wo) = out_shape.as_nchw()?;
    let total = cpg * r * s;

    // Row pruning (filter sampling): kept filter indices + compensation.
    let (kept, scale): (Vec<usize>, f32) = match params.approx {
        ConvApprox::FilterSampling { k: kk, offset } => {
            let kept: Vec<usize> = (0..total).filter(|i| i % kk != offset).collect();
            let cnt = kept.len().max(1);
            (kept, total as f32 / cnt as f32)
        }
        _ => ((0..total).collect(), 1.0),
    };
    // Column pruning (perforation): computed output positions.
    let perf = match params.approx {
        ConvApprox::Perforation { dim, k, offset } => Some((dim, k, offset)),
        _ => None,
    };
    let (oys, oxs): (Vec<usize>, Vec<usize>) = match perf {
        Some((PerforationDim::Row, pk, off)) => (
            (0..ho).filter(|&y| y % pk != off).collect(),
            (0..wo).collect(),
        ),
        Some((PerforationDim::Col, pk, off)) => (
            (0..ho).collect(),
            (0..wo).filter(|&x| x % pk != off).collect(),
        ),
        None => ((0..ho).collect(), (0..wo).collect()),
    };

    let plan = LowerPlan {
        n,
        c,
        h,
        w,
        k,
        cpg,
        r,
        s,
        ho,
        wo,
        pad: params.pad,
        stride: params.stride,
        groups,
        kpg: k / groups,
        kept: &kept,
        scale,
        oys: &oys,
        oxs: &oxs,
        perf,
        fp16: params.precision == Precision::Fp16,
        fuse_relu,
    };

    let mut out = vec![0.0f32; n * k * ho * wo];
    let bias_data = bias.map(|t| t.data());
    // Set by the verifying gemm closures on a failed checksum: the closure
    // signature cannot return an error, so detection is carried out-of-band
    // (and remaining gemms are skipped — the output is discarded anyway).
    let corrupt = std::cell::RefCell::new(None::<String>);
    match params.mul {
        MulApprox::Exact if verify => {
            run_lowered::<f32>(
                &plan,
                input.data(),
                weight.data(),
                bias_data,
                &mut out,
                &|m, kd, nd, a, bm, dst, epi| {
                    if corrupt.borrow().is_some() {
                        return;
                    }
                    let tol = super::abft::AbftTol::exact(m, kd, nd);
                    if let Err(e) = super::abft::gemm_f32_abft(m, kd, nd, a, bm, dst, epi, &tol) {
                        *corrupt.borrow_mut() = Some(e.to_string());
                    }
                },
            );
        }
        MulApprox::Exact => {
            run_lowered::<f32>(
                &plan,
                input.data(),
                weight.data(),
                bias_data,
                &mut out,
                &|m, kd, nd, a, bm, dst, epi| gemm::gemm_f32(m, kd, nd, a, bm, dst, epi),
            );
        }
        MulApprox::Lut { bits } => {
            let table = lut::lut_for(bits);
            let qi = lut::quantize_symmetric(input.data(), bits);
            let qw = lut::quantize_symmetric(weight.data(), bits);
            let dq = qi.scale * qw.scale;
            if verify {
                run_lowered::<i16>(
                    &plan,
                    &qi.q,
                    &qw.q,
                    bias_data,
                    &mut out,
                    &|m, kd, nd, a, bm, dst, epi| {
                        if corrupt.borrow().is_some() {
                            return;
                        }
                        let tol = super::abft::AbftTol::lut(kd, dq);
                        if let Err(e) =
                            super::abft::gemm_lut_abft(m, kd, nd, a, bm, table, dq, dst, epi, &tol)
                        {
                            *corrupt.borrow_mut() = Some(e.to_string());
                        }
                    },
                );
            } else {
                run_lowered::<i16>(
                    &plan,
                    &qi.q,
                    &qw.q,
                    bias_data,
                    &mut out,
                    &move |m, kd, nd, a, bm, dst, epi| {
                        gemm::gemm_lut(m, kd, nd, a, bm, table, dq, dst, epi)
                    },
                );
            }
        }
    }
    if let Some(detail) = corrupt.into_inner() {
        return Err(TensorError::CorruptionDetected {
            op: "conv2d",
            detail,
        });
    }
    Tensor::from_vec(out_shape, out)
}

/// Convenience wrapper: exact, ungrouped im2col convolution (the historical
/// entry point; approximations go through [`conv2d_lowered`] or the
/// [`super::conv2d`] dispatcher).
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    pad: (usize, usize),
    stride: (usize, usize),
    precision: Precision,
) -> Result<Tensor, TensorError> {
    conv2d_lowered(
        input,
        weight,
        bias,
        Conv2dParams {
            pad,
            stride,
            precision,
            ..Default::default()
        },
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference::conv2d_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shapes");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: elem {i}: {x} vs {y}");
        }
    }

    fn fixtures() -> (Tensor, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(77);
        let x = Tensor::uniform(Shape::nchw(2, 3, 9, 11), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(4, 3, 3, 3), -0.5, 0.5, &mut rng);
        let b = Tensor::uniform(Shape::vec(4), -0.2, 0.2, &mut rng);
        (x, w, b)
    }

    fn check(params: Conv2dParams, ctx: &str) {
        let (x, w, b) = fixtures();
        let lowered = conv2d_lowered(&x, &w, Some(&b), params, false).unwrap();
        let direct = conv2d_reference(&x, &w, Some(&b), params).unwrap();
        assert_bits_eq(&lowered, &direct, ctx);
    }

    #[test]
    fn exact_matches_reference_bitwise() {
        check(
            Conv2dParams {
                pad: (1, 1),
                ..Default::default()
            },
            "exact",
        );
        check(
            Conv2dParams {
                pad: (2, 1),
                stride: (2, 3),
                ..Default::default()
            },
            "strided",
        );
    }

    #[test]
    fn every_filter_sampling_matches_reference_bitwise() {
        for approx in ConvApprox::all_filter_sampling() {
            check(
                Conv2dParams {
                    pad: (1, 1),
                    approx,
                    ..Default::default()
                },
                &format!("{approx:?}"),
            );
        }
    }

    #[test]
    fn every_perforation_matches_reference_bitwise() {
        for approx in ConvApprox::all_perforation() {
            check(
                Conv2dParams {
                    pad: (1, 1),
                    approx,
                    ..Default::default()
                },
                &format!("{approx:?}"),
            );
        }
    }

    #[test]
    fn fp16_matches_reference_bitwise() {
        check(
            Conv2dParams {
                pad: (1, 1),
                precision: Precision::Fp16,
                ..Default::default()
            },
            "fp16",
        );
        check(
            Conv2dParams {
                pad: (1, 1),
                precision: Precision::Fp16,
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Row,
                    k: 2,
                    offset: 0,
                },
                ..Default::default()
            },
            "fp16+perf",
        );
    }

    #[test]
    fn every_lut_bitwidth_matches_reference_bitwise() {
        for mul in MulApprox::ALL_LUT {
            check(
                Conv2dParams {
                    pad: (1, 1),
                    mul,
                    ..Default::default()
                },
                &format!("{mul:?}"),
            );
        }
    }

    #[test]
    fn depthwise_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(78);
        let x = Tensor::uniform(Shape::nchw(1, 4, 8, 8), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(4, 1, 3, 3), -1.0, 1.0, &mut rng);
        let params = Conv2dParams {
            pad: (1, 1),
            groups: 4,
            ..Default::default()
        };
        let lowered = conv2d_lowered(&x, &w, None, params, false).unwrap();
        let direct = conv2d_reference(&x, &w, None, params).unwrap();
        assert_bits_eq(&lowered, &direct, "depthwise");
    }

    #[test]
    fn fused_relu_matches_unfused_bitwise() {
        let (x, w, b) = fixtures();
        for approx in [
            ConvApprox::Exact,
            ConvApprox::FilterSampling { k: 2, offset: 1 },
            ConvApprox::Perforation {
                dim: PerforationDim::Col,
                k: 3,
                offset: 2,
            },
        ] {
            let params = Conv2dParams {
                pad: (1, 1),
                approx,
                ..Default::default()
            };
            let fused = conv2d_lowered(&x, &w, Some(&b), params, true).unwrap();
            let unfused = crate::ops::relu(
                &conv2d_lowered(&x, &w, Some(&b), params, false).unwrap(),
                Precision::Fp32,
            )
            .unwrap();
            assert_bits_eq(&fused, &unfused, &format!("fused relu {approx:?}"));
        }
    }

    #[test]
    fn bias_length_mismatch_rejected() {
        let (x, w, _) = fixtures();
        let bad = Tensor::zeros(Shape::vec(3));
        assert!(conv2d_im2col(&x, &w, Some(&bad), (1, 1), (1, 1), Precision::Fp32).is_err());
    }

    #[test]
    fn degenerate_shapes() {
        // 1×1 kernel, W smaller than a GEMM panel, K=1.
        let mut rng = StdRng::seed_from_u64(79);
        let x = Tensor::uniform(Shape::nchw(1, 1, 3, 2), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(1, 1, 1, 1), -1.0, 1.0, &mut rng);
        let params = Conv2dParams::default();
        let lowered = conv2d_lowered(&x, &w, None, params, false).unwrap();
        let direct = conv2d_reference(&x, &w, None, params).unwrap();
        assert_bits_eq(&lowered, &direct, "1x1");
    }
}
