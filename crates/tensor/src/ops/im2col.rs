//! im2col + GEMM convolution: the classical high-throughput formulation
//! (lower the convolution to a matrix multiplication over an unrolled
//! patch matrix). The paper's hand-optimised CUDA kernel is "optimized
//! using cuBLAS" (§6.2) — i.e. exactly this lowering; we provide it as an
//! alternative exact kernel and use the direct kernel as the reference.
//!
//! Only the *exact* path is lowered: filter sampling and perforation index
//! irregularly and are served by the direct kernel in [`super::conv`].

use crate::error::TensorError;
use crate::knobs::Precision;
use crate::shape::conv2d_out_shape;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Unrolls input patches into a `[C·R·S, Ho·Wo]` column matrix for one
/// image of an NCHW batch.
#[allow(clippy::too_many_arguments)]
fn im2col_image(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    r: usize,
    s: usize,
    pad: (usize, usize),
    stride: (usize, usize),
    ho: usize,
    wo: usize,
    out: &mut [f32],
) {
    let cols = ho * wo;
    for ic in 0..c {
        let plane = &data[ic * h * w..(ic + 1) * h * w];
        for ky in 0..r {
            for kx in 0..s {
                let row = (ic * r + ky) * s + kx;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                    for ox in 0..wo {
                        let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                        dst[oy * wo + ox] =
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                plane[iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
}

/// Exact 2-D convolution via im2col + GEMM. Semantically identical to the
/// direct kernel with `ConvApprox::Exact`; bit-equality is not guaranteed
/// (different accumulation order) but agreement is within a few ULPs.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    pad: (usize, usize),
    stride: (usize, usize),
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let out_shape = conv2d_out_shape(input.shape(), weight.shape(), pad, stride)?;
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (k, _, r, s) = weight.shape().as_nchw()?;
    let (_, _, ho, wo) = out_shape.as_nchw()?;
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_im2col",
                detail: format!("bias length {} != output channels {k}", b.len()),
            });
        }
    }

    let (qin, qw);
    let (input, weight) = match precision {
        Precision::Fp32 => (input, weight),
        Precision::Fp16 => {
            qin = input.to_f16();
            qw = weight.to_f16();
            (&qin, &qw)
        }
    };

    let patch = c * r * s;
    let cols = ho * wo;
    let w_data = weight.data();
    let plane_in = c * h * w;
    let mut out = vec![0.0f32; n * k * cols];

    // One im2col buffer + GEMM per image, images in parallel.
    out.par_chunks_mut(k * cols)
        .zip(input.data().par_chunks(plane_in))
        .for_each(|(out_img, in_img)| {
            let mut colbuf = vec![0.0f32; patch * cols];
            im2col_image(in_img, c, h, w, r, s, pad, stride, ho, wo, &mut colbuf);
            // GEMM: [K, patch] × [patch, cols] → [K, cols], k-outer walk.
            for oc in 0..k {
                let wrow = &w_data[oc * patch..(oc + 1) * patch];
                let orow = &mut out_img[oc * cols..(oc + 1) * cols];
                let b0 = bias.map_or(0.0, |bt| bt.data()[oc]);
                orow.fill(b0);
                for (p, &wv) in wrow.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let crow = &colbuf[p * cols..(p + 1) * cols];
                    for (o, &cv) in orow.iter_mut().zip(crow) {
                        *o += wv * cv;
                    }
                }
            }
        });

    let mut t = Tensor::from_vec(out_shape, out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::{conv2d, Conv2dParams};
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn agree(a: &Tensor, b: &Tensor) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn matches_direct_kernel_unit_stride() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Tensor::uniform(Shape::nchw(2, 3, 12, 12), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(5, 3, 3, 3), -0.5, 0.5, &mut rng);
        let bias = Tensor::uniform(Shape::vec(5), -0.1, 0.1, &mut rng);
        let direct = conv2d(
            &x,
            &w,
            Some(&bias),
            Conv2dParams {
                pad: (1, 1),
                ..Default::default()
            },
        )
        .unwrap();
        let lowered = conv2d_im2col(&x, &w, Some(&bias), (1, 1), (1, 1), Precision::Fp32).unwrap();
        assert!(agree(&direct, &lowered), "im2col disagrees with direct");
    }

    #[test]
    fn matches_direct_kernel_strided_no_pad() {
        let mut rng = StdRng::seed_from_u64(32);
        let x = Tensor::uniform(Shape::nchw(1, 4, 11, 9), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(6, 4, 3, 3), -0.5, 0.5, &mut rng);
        let direct = conv2d(
            &x,
            &w,
            None,
            Conv2dParams {
                stride: (2, 2),
                ..Default::default()
            },
        )
        .unwrap();
        let lowered = conv2d_im2col(&x, &w, None, (0, 0), (2, 2), Precision::Fp32).unwrap();
        assert!(agree(&direct, &lowered));
    }

    #[test]
    fn matches_direct_kernel_fp16() {
        let mut rng = StdRng::seed_from_u64(33);
        let x = Tensor::uniform(Shape::nchw(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.5, 0.5, &mut rng);
        let direct = conv2d(
            &x,
            &w,
            None,
            Conv2dParams {
                pad: (1, 1),
                precision: Precision::Fp16,
                ..Default::default()
            },
        )
        .unwrap();
        let lowered = conv2d_im2col(&x, &w, None, (1, 1), (1, 1), Precision::Fp16).unwrap();
        assert!(agree(&direct, &lowered));
    }

    #[test]
    fn kernel_1x1_is_channel_mix() {
        let mut rng = StdRng::seed_from_u64(34);
        let x = Tensor::uniform(Shape::nchw(1, 3, 4, 4), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(2, 3, 1, 1), -1.0, 1.0, &mut rng);
        let direct = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        let lowered = conv2d_im2col(&x, &w, None, (0, 0), (1, 1), Precision::Fp32).unwrap();
        assert!(agree(&direct, &lowered));
    }

    #[test]
    fn bias_length_checked() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let w = Tensor::zeros(Shape::nchw(2, 1, 3, 3));
        let bad = Tensor::zeros(Shape::vec(3));
        assert!(conv2d_im2col(&x, &w, Some(&bad), (1, 1), (1, 1), Precision::Fp32).is_err());
    }
}
