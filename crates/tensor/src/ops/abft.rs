//! Algorithm-based fault tolerance (ABFT) for GEMM-shaped kernels —
//! checksum-verified matmul and convolution paths that detect silent data
//! corruption instead of returning silently wrong outputs.
//!
//! The Huang–Abraham identity: for `C = A × B`, the column sums of `C`
//! must equal `(Σ_i A[i,·]) × B`. Checking it costs `O(M·K + K·N + M·N)` —
//! negligible next to the `O(M·K·N)` multiply — and any corruption of the
//! raw accumulators (a flipped bit in an output, an ALU fault during the
//! multiply, operand memory corrupted after checksum capture) perturbs at
//! least one column sum far outside floating-point noise: an output flip
//! lands in exactly one column, and an operand flip smears `Δ·B[kk,·]`
//! (resp. `Δ·A[·,kk]` folded per column) across the row of sums.
//!
//! We deliberately verify the *column* side only. Classic two-sided ABFT
//! adds row checksums to *localise* (and correct) the faulty element, but
//! this runtime never corrects in place — detection aborts the kernel and
//! the fleet re-executes the request on a healthy replica — so the second
//! side would double the verification cost for localisation information
//! nobody consumes. Single-sided detection keeps measured overhead inside
//! the ≤10% envelope on a 512³ GEMM.
//!
//! **Tolerance is scaled to the active knob's promised error.** The
//! verified product is compared against independently accumulated f32
//! reference checksums (see [`verify_raw`] for why f32 suffices), so the
//! legitimate discrepancy is the knob's own numerical contract:
//!
//! * `MulApprox::Exact` (FP32 and FP16 operands both accumulate in f32):
//!   FMA rounding noise, which random-walks like `√steps · ε₃₂` against an
//!   L2-style magnitude bound ([`AbftTol::exact`]).
//! * `MulApprox::Lut`: the Mitchell logarithmic multiplier's promised
//!   per-product relative error bound against an L1 magnitude bound
//!   ([`AbftTol::lut`]).
//!
//! Comparisons are NaN-safe by construction: every check is of the form
//! `|actual − expected| ≤ limit`, which is *false* whenever corruption
//! produced a NaN or infinity on either side, so non-finite garbage is
//! always reported as [`TensorError::CorruptionDetected`].
//!
//! **Bit-exactness**: the verified paths run the production kernels with a
//! raw epilogue, verify, then apply the epilogue element-wise. Because
//! [`Epilogue::apply`] is a pure per-element function, outputs are
//! bit-identical to the unprotected fused kernels (the golden suite pins
//! this).

use crate::error::TensorError;
use crate::knobs::{MulApprox, Precision};
use crate::lut::{self, LutTable};
use crate::ops::conv::Conv2dParams;
use crate::ops::gemm::{self, Epilogue};
use crate::ops::im2col;
use crate::tensor::Tensor;
use crate::Shape;

/// Checksum comparison tolerance: `|actual − expected| ≤ abs + rel · mag`,
/// where `mag` is an L1 or L2 magnitude bound accumulated alongside the
/// expected checksum.
#[derive(Clone, Copy, Debug)]
pub struct AbftTol {
    /// Relative factor applied to the magnitude bound.
    pub rel: f64,
    /// Absolute floor (covers all-zero panels).
    pub abs: f64,
    /// Use the L1 magnitude `Σ|aᵢ·bⱼ|` (worst-case-correlated error, for
    /// the LUT multiplier) instead of the L2 magnitude `√(Σ(aᵢ·bⱼ)²)`
    /// (random-walk rounding, for exact accumulation).
    pub l1: bool,
}

impl AbftTol {
    /// Tolerance for exact-FMA accumulation (FP32, and FP16 operands —
    /// the checksums are computed over the already-quantised operands, so
    /// the residual noise is still f32 accumulation rounding).
    pub fn exact(m: usize, k: usize, n: usize) -> AbftTol {
        let steps = (k + m + n).max(1) as f64;
        AbftTol {
            rel: 16.0 * steps.sqrt() * f64::from(f32::EPSILON),
            abs: 1e-12,
            l1: false,
        }
    }

    /// Tolerance for the LUT approximate multiplier: Mitchell's logarithmic
    /// multiplier promises ≤ ~11.1% relative error per product (plus table
    /// integer rounding), and per-product errors can correlate, so the
    /// bound is L1 with a slack factor. `dequant` is `scale_A · scale_B`.
    pub fn lut(k: usize, dequant: f32) -> AbftTol {
        AbftTol {
            rel: 0.13,
            abs: f64::from(dequant.abs()) * 8.0 * k.max(1) as f64,
            l1: true,
        }
    }
}

/// Flips bit `bit` (0 = LSB .. 31 = sign) of `data[index]` in place — the
/// SDC injector used by the chaos campaigns and the differential tests.
/// Out-of-range indices/bits are ignored (injection is best-effort).
pub fn flip_bit(data: &mut [f32], index: usize, bit: u32) {
    if bit < 32 {
        if let Some(x) = data.get_mut(index) {
            *x = f32::from_bits(x.to_bits() ^ (1u32 << bit));
        }
    }
}

/// Column-checksum verification core over `f32` views of the operands.
/// `c` holds the *raw* (pre-epilogue) accumulators, with the LUT path's
/// dequantisation already applied (that is how `Epilogue::Raw` stores
/// them).
///
/// Checksums accumulate in `f32`, not `f64`. The comparison limit is
/// sized for the production kernel's own f32 accumulation noise
/// (`rel ∝ √steps · ε₃₂` of the magnitude bound), and the reference sums
/// random-walk with the same step count, so f32 references add error of
/// the exact order the limit already absorbs — while halving accumulator
/// memory traffic and keeping every loop in 16-lane single-precision
/// vectors with no widening converts. That is what holds verification
/// inside the ≤10% overhead envelope. Only the final comparisons widen
/// to f64 (they are O(N) and the subtraction must not round away).
#[allow(clippy::too_many_arguments)]
fn verify_raw<TA: Copy, TB: Copy>(
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    a: &[TA],
    fa: impl Fn(TA) -> f32,
    b: &[TB],
    fb: impl Fn(TB) -> f32,
    c: &[f32],
    tol: &AbftTol,
) -> Result<(), TensorError> {
    // Monomorphise on the magnitude norm: a runtime `tol.l1` branch inside
    // the hot loops defeats the autovectoriser.
    if tol.l1 {
        verify_raw_impl::<_, _, _, _, true>(op, m, k, n, a, fa, b, fb, c, tol)
    } else {
        verify_raw_impl::<_, _, _, _, false>(op, m, k, n, a, fa, b, fb, c, tol)
    }
}

#[allow(clippy::too_many_arguments)]
fn verify_raw_impl<TA: Copy, TB: Copy, FA, FB, const L1: bool>(
    op: &'static str,
    m: usize,
    k: usize,
    n: usize,
    a: &[TA],
    fa: FA,
    b: &[TB],
    fb: FB,
    c: &[f32],
    tol: &AbftTol,
) -> Result<(), TensorError>
where
    FA: Fn(TA) -> f32,
    FB: Fn(TB) -> f32,
{
    if m == 0 || n == 0 {
        return Ok(());
    }
    let mag = |v: f32| if L1 { v.abs() } else { v * v };
    let fin = |v: f64| if L1 { v } else { v.sqrt() };

    // Performance shape: the checksum math is O(mk + kn + mn) against the
    // GEMM's O(mkn), but a careless loop nest still costs >50% of the 512³
    // multiply. Every pass below streams operand rows contiguously (the
    // prefetch-friendly direction), pairs that share a load share a loop,
    // and accumulation is vector-indexed — element `j` lands in slot `j`
    // with rows folded in ascending order — so results are deterministic
    // at any vector width.

    // Pass over A: per-column sums and magnitudes, rows ascending.
    let mut colsum_a = vec![0.0f32; k];
    let mut colmag_a = vec![0.0f32; k];
    for i in 0..m {
        for ((s, g), &v) in colsum_a
            .iter_mut()
            .zip(colmag_a.iter_mut())
            .zip(&a[i * k..(i + 1) * k])
        {
            let v = fa(v);
            *s += v;
            *g += mag(v);
        }
    }
    // Pass over B: expected column checksums (Σ_i A[i,·]) × B[·,j] and the
    // matching magnitude bound, in one stream.
    let mut expected_col = vec![0.0f32; n];
    let mut magnitude_col = vec![0.0f32; n];
    for kk in 0..k {
        let sa = colsum_a[kk];
        // L2 magnitude weight: `sa²` bounds the f32 *checksum* random walk
        // (its summands are `sa·b`, which dwarfs `Σᵢa²·b²` when A's column
        // entries correlate in sign), `Σᵢa²` bounds the GEMM's own
        // accumulation noise folded per column. Their sum dominates both
        // error sources, so one limit covers the whole comparison.
        let ma = if L1 {
            colmag_a[kk]
        } else {
            sa * sa + colmag_a[kk]
        };
        let brow = &b[kk * n..(kk + 1) * n];
        for ((e, g), &v) in expected_col
            .iter_mut()
            .zip(magnitude_col.iter_mut())
            .zip(brow)
        {
            let v = fb(v);
            *e += sa * v;
            *g += ma * mag(v);
        }
    }
    // Pass over C: actual column checksums.
    let mut actual_col = vec![0.0f32; n];
    for i in 0..m {
        for (s, &v) in actual_col.iter_mut().zip(&c[i * n..(i + 1) * n]) {
            *s += v;
        }
    }
    // Column checks: Σ_i C[i,j] vs (Σ_i A[i,·]) × B[·,j].
    for j in 0..n {
        let expected = f64::from(expected_col[j]);
        let actual = f64::from(actual_col[j]);
        let limit = tol.abs + tol.rel * fin(f64::from(magnitude_col[j]));
        // `!(x <= y)` instead of `x > y`: NaN on either side must trip.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !((actual - expected).abs() <= limit) {
            return Err(TensorError::CorruptionDetected {
                op,
                detail: format!(
                    "column {j} checksum off by {:.3e} (limit {:.3e})",
                    actual - expected,
                    limit
                ),
            });
        }
    }
    Ok(())
}

/// Verifies raw f32 GEMM accumulators `c` against checksums of `a`/`b`.
///
/// Exposed so injection campaigns can verify against *golden* operands
/// after corrupting a working copy — modelling checksums captured at
/// panel-pack time with the flip landing afterwards.
pub fn verify_gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    tol: &AbftTol,
) -> Result<(), TensorError> {
    verify_raw("gemm", m, k, n, a, |x| x, b, |x| x, c, tol)
}

/// Verifies raw LUT-GEMM output (already dequantised by `Epilogue::Raw`)
/// against checksums of the quantised operands.
#[allow(clippy::too_many_arguments)]
pub fn verify_gemm_lut(
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    b: &[i16],
    dequant: f32,
    c: &[f32],
    tol: &AbftTol,
) -> Result<(), TensorError> {
    verify_raw(
        "gemm_lut",
        m,
        k,
        n,
        a,
        f32::from,
        b,
        move |x| f32::from(x) * dequant,
        c,
        tol,
    )
}

/// Applies an epilogue element-wise to a raw `[M,N]` accumulator buffer —
/// bit-identical to the fused kernels because [`Epilogue::apply`] is a pure
/// per-element function.
fn apply_epilogue(out: &mut [f32], n: usize, epi: &Epilogue) {
    if matches!(epi, Epilogue::Raw) {
        return;
    }
    for (i, orow) in out.chunks_mut(n).enumerate() {
        for (j, o) in orow.iter_mut().enumerate() {
            *o = epi.apply(*o, i, j);
        }
    }
}

/// ABFT-protected tiled f32 GEMM: multiply with a raw epilogue, verify the
/// Huang–Abraham checksums, then apply `epi`. On detection the (corrupt)
/// buffer contents are unspecified and must be discarded.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_abft(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    epi: &Epilogue,
    tol: &AbftTol,
) -> Result<(), TensorError> {
    gemm::gemm_f32(m, k, n, a, b, out, &Epilogue::Raw);
    verify_gemm_f32(m, k, n, a, b, out, tol)?;
    apply_epilogue(out, n, epi);
    Ok(())
}

/// ABFT-protected LUT GEMM — integer twin of [`gemm_f32_abft`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_lut_abft(
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    b: &[i16],
    table: &LutTable,
    dequant: f32,
    out: &mut [f32],
    epi: &Epilogue,
    tol: &AbftTol,
) -> Result<(), TensorError> {
    gemm::gemm_lut(m, k, n, a, b, table, dequant, out, &Epilogue::Raw);
    verify_gemm_lut(m, k, n, a, b, dequant, out, tol)?;
    apply_epilogue(out, n, epi);
    Ok(())
}

/// ABFT-protected dense layer: [`crate::ops::matmul_ex`] semantics
/// (bit-identical output) with checksum verification of the product.
pub fn matmul_abft(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    precision: Precision,
    mul: MulApprox,
) -> Result<Tensor, TensorError> {
    mul.validate()?;
    let (m, ka) = a.shape().as_mat()?;
    let (kb, n) = b.shape().as_mat()?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {ka} vs {kb}"),
        });
    }
    if let Some(bt) = bias {
        if bt.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "bias_add",
                detail: format!("bias len {} != cols {n}", bt.len()),
            });
        }
    }
    let (qa, qb);
    let (a, b) = match precision {
        Precision::Fp32 => (a, b),
        Precision::Fp16 => {
            qa = a.to_f16();
            qb = b.to_f16();
            (&qa, &qb)
        }
    };
    let epi = Epilogue::Dense {
        bias: bias.map(|t| t.data()),
        fp16: precision == Precision::Fp16,
    };
    let mut out = vec![0.0f32; m * n];
    match mul {
        MulApprox::Exact => {
            let tol = AbftTol::exact(m, ka, n);
            gemm_f32_abft(m, ka, n, a.data(), b.data(), &mut out, &epi, &tol)?;
        }
        MulApprox::Lut { bits } => {
            let table = lut::lut_for(bits);
            let aq = lut::quantize_symmetric(a.data(), bits);
            let bq = lut::quantize_symmetric(b.data(), bits);
            let dq = aq.scale * bq.scale;
            let tol = AbftTol::lut(ka, dq);
            gemm_lut_abft(m, ka, n, &aq.q, &bq.q, table, dq, &mut out, &epi, &tol)?;
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

/// ABFT-protected convolution: [`crate::ops::conv2d`] semantics
/// (bit-identical output, any knob setting) with every lowered GEMM's
/// checksums verified before its epilogue is applied.
pub fn conv2d_abft(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    im2col::conv2d_lowered_abft(input, weight, bias, params, false)
}

/// ABFT-protected fused conv+ReLU — twin of
/// [`crate::ops::conv2d_fused_relu`].
pub fn conv2d_fused_relu_abft(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    im2col::conv2d_lowered_abft(input, weight, bias, params, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{conv2d, matmul_ex};
    use crate::{ConvApprox, PerforationDim};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mats(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::uniform(Shape::mat(m, k), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(k, n), -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(Shape::vec(n), -0.5, 0.5, &mut rng);
        (a, b, bias)
    }

    fn assert_bits_eq(x: &Tensor, y: &Tensor, ctx: &str) {
        assert_eq!(x.shape(), y.shape(), "{ctx}: shapes");
        for (i, (p, q)) in x.data().iter().zip(y.data()).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{ctx}: elem {i}: {p} vs {q}");
        }
    }

    #[test]
    fn clean_matmul_passes_and_is_bit_identical_every_knob() {
        let (a, b, bias) = mats(13, 37, 21, 9);
        let muls = [
            MulApprox::Exact,
            MulApprox::Lut { bits: 8 },
            MulApprox::Lut { bits: 6 },
            MulApprox::Lut { bits: 4 },
        ];
        for precision in Precision::ALL {
            for mul in muls {
                if precision == Precision::Fp16 && !mul.is_exact() {
                    continue;
                }
                let plain = matmul_ex(&a, &b, Some(&bias), precision, mul).unwrap();
                let abft = matmul_abft(&a, &b, Some(&bias), precision, mul)
                    .unwrap_or_else(|e| panic!("clean {precision:?}/{mul:?} flagged: {e}"));
                assert_bits_eq(&plain, &abft, &format!("{precision:?}/{mul:?}"));
            }
        }
    }

    #[test]
    fn clean_conv_passes_and_is_bit_identical_across_approximations() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::uniform(Shape::nchw(2, 3, 9, 11), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(4, 3, 3, 3), -0.5, 0.5, &mut rng);
        let b = Tensor::uniform(Shape::vec(4), -0.2, 0.2, &mut rng);
        for (name, params) in [
            (
                "exact",
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            ),
            (
                "fp16",
                Conv2dParams {
                    pad: (1, 1),
                    precision: Precision::Fp16,
                    ..Default::default()
                },
            ),
            (
                "sampling",
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::FilterSampling { k: 2, offset: 1 },
                    ..Default::default()
                },
            ),
            (
                "perforated",
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::Perforation {
                        dim: PerforationDim::Col,
                        k: 3,
                        offset: 0,
                    },
                    ..Default::default()
                },
            ),
            (
                "lut",
                Conv2dParams {
                    pad: (1, 1),
                    mul: MulApprox::Lut { bits: 6 },
                    ..Default::default()
                },
            ),
        ] {
            let plain = conv2d(&x, &w, Some(&b), params).unwrap();
            let abft = conv2d_abft(&x, &w, Some(&b), params)
                .unwrap_or_else(|e| panic!("clean {name} flagged: {e}"));
            assert_bits_eq(&plain, &abft, name);
        }
    }

    #[test]
    fn operand_corruption_after_checksum_capture_is_detected() {
        let (a, b, _) = mats(24, 48, 32, 11);
        let (m, k, n) = (24, 48, 32);
        let tol = AbftTol::exact(m, k, n);
        // Flip a high-mantissa bit in a working copy of A; the raw product
        // of the corrupted copy must fail verification against the golden
        // operands' checksums.
        let mut bad_a = a.data().to_vec();
        flip_bit(&mut bad_a, 7 * k + 3, 22);
        let mut c = vec![0.0f32; m * n];
        gemm::gemm_f32(m, k, n, &bad_a, b.data(), &mut c, &Epilogue::Raw);
        assert!(matches!(
            verify_gemm_f32(m, k, n, a.data(), b.data(), &c, &tol),
            Err(TensorError::CorruptionDetected { .. })
        ));
        // Same for the activation operand B.
        let mut bad_b = b.data().to_vec();
        flip_bit(&mut bad_b, 5 * n + 17, 30);
        let mut c2 = vec![0.0f32; m * n];
        gemm::gemm_f32(m, k, n, a.data(), &bad_b, &mut c2, &Epilogue::Raw);
        assert!(matches!(
            verify_gemm_f32(m, k, n, a.data(), b.data(), &c2, &tol),
            Err(TensorError::CorruptionDetected { .. })
        ));
    }

    #[test]
    fn accumulator_corruption_is_detected_including_nan() {
        let (a, b, _) = mats(16, 40, 24, 12);
        let (m, k, n) = (16, 40, 24);
        let tol = AbftTol::exact(m, k, n);
        let mut c = vec![0.0f32; m * n];
        gemm::gemm_f32(m, k, n, a.data(), b.data(), &mut c, &Epilogue::Raw);
        verify_gemm_f32(m, k, n, a.data(), b.data(), &c, &tol).unwrap();

        // A flipped sign bit in one output element.
        let mut bad = c.clone();
        flip_bit(&mut bad, 3 * n + 4, 31);
        assert!(verify_gemm_f32(m, k, n, a.data(), b.data(), &bad, &tol).is_err());

        // An exponent flip that lands on NaN-adjacent garbage: the NaN-safe
        // comparison must still trip (NaN fails every `<=`).
        let mut nan = c;
        nan[5 * n + 5] = f32::NAN;
        assert!(verify_gemm_f32(m, k, n, a.data(), b.data(), &nan, &tol).is_err());
    }

    #[test]
    fn flip_bit_is_bounds_safe_and_involutive() {
        let mut v = vec![1.5f32, -2.25];
        let orig = v.clone();
        flip_bit(&mut v, 0, 22);
        assert_ne!(v[0].to_bits(), orig[0].to_bits());
        flip_bit(&mut v, 0, 22);
        assert_eq!(v[0].to_bits(), orig[0].to_bits());
        // Out-of-range index and bit are ignored.
        flip_bit(&mut v, 99, 3);
        flip_bit(&mut v, 0, 32);
        assert_eq!(v[0].to_bits(), orig[0].to_bits());
    }

    #[test]
    fn empty_dims_verify_trivially() {
        let tol = AbftTol::exact(0, 4, 0);
        verify_gemm_f32(0, 4, 0, &[], &[], &[], &tol).unwrap();
    }
}
