//! 2-D convolution: exact, filter-sampled and perforated variants, each in
//! FP32 or FP16 semantics.
//!
//! This is the hand-written kernel the paper describes in §6.2 (the authors
//! could not use cuDNN for convolutions because perforation and sampling
//! require a custom algorithm). The kernel is parallelised with rayon over
//! `(batch, output-channel)` pairs; each task writes a disjoint `Ho×Wo`
//! output plane, so the parallelism is data-race free by construction.

use crate::error::TensorError;
use crate::knobs::{ConvApprox, PerforationDim, Precision};
use crate::shape::{conv2d_out_shape, Shape};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Configuration of a convolution call.
#[derive(Clone, Copy, Debug)]
pub struct Conv2dParams {
    /// Symmetric padding (height, width).
    pub pad: (usize, usize),
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Channel groups (1 = dense convolution; `C` = depthwise, as in
    /// MobileNet). The weight tensor is `[K, C/groups, R, S]`.
    pub groups: usize,
    /// Algorithmic approximation.
    pub approx: ConvApprox,
    /// Numeric precision.
    pub precision: Precision,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            pad: (0, 0),
            stride: (1, 1),
            groups: 1,
            approx: ConvApprox::Exact,
            precision: Precision::Fp32,
        }
    }
}

/// 2-D convolution over NCHW input `[N,C,H,W]` with weights `[K,C,R,S]` and
/// optional per-output-channel bias `[K]`.
///
/// The `approx` mechanism selects between the exact kernel, filter sampling
/// (skip 1-out-of-k filter elements, rescale by `k/(k-1)`) and output
/// perforation (skip 1-out-of-k output rows/columns, interpolate from
/// computed neighbours). `Precision::Fp16` quantises operands and the result
/// through IEEE binary16.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    params.approx.validate()?;
    let (_, c, _, _) = input.shape().as_nchw()?;
    let (k, wc, _, _) = weight.shape().as_nchw()?;
    let groups = params.groups.max(1);
    if c % groups != 0 || k % groups != 0 || wc != c / groups {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!(
                "groups={groups} incompatible with input channels {c}, weight [{k},{wc},..]"
            ),
        });
    }
    // Shape algebra is the same as a dense conv with C/groups input
    // channels per filter.
    let pseudo_input = {
        let (n, _, h, w) = input.shape().as_nchw()?;
        Shape::nchw(n, wc, h, w)
    };
    let out_shape = conv2d_out_shape(pseudo_input, weight.shape(), params.pad, params.stride)?;
    if let Some(b) = bias {
        if b.len() != k {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                detail: format!("bias length {} != output channels {k}", b.len()),
            });
        }
    }

    // FP16 semantics: quantise operands, accumulate in f32, quantise result.
    let (qin, qw, qb);
    let (input, weight, bias) = match params.precision {
        Precision::Fp32 => (input, weight, bias),
        Precision::Fp16 => {
            qin = input.to_f16();
            qw = weight.to_f16();
            qb = bias.map(|b| b.to_f16());
            (&qin, &qw, qb.as_ref())
        }
    };

    let mut out = compute_conv(input, weight, bias, params, out_shape)?;
    if params.precision == Precision::Fp16 {
        out.quantize_f16();
    }
    Ok(out)
}

fn compute_conv(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    out_shape: Shape,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (k, cpg, r, s) = weight.shape().as_nchw()?; // cpg = channels/group
    let (_, _, ho, wo) = out_shape.as_nchw()?;
    let (ph, pw) = params.pad;
    let (sh, sw) = params.stride;
    let groups = params.groups.max(1);
    let kpg = k / groups; // output channels per group

    // Filter-sampling mask: kept[(c,r,s) flattened] with compensation scale.
    let (mask, scale) = match params.approx {
        ConvApprox::FilterSampling { k: kk, offset } => {
            let total = cpg * r * s;
            let mask: Vec<bool> = (0..total).map(|i| i % kk != offset).collect();
            // Rescale by the *actual* kept fraction so the approximation is
            // unbiased even when the filter size is not a multiple of k
            // (k/(k-1) is the asymptotic value the paper quotes).
            let kept = mask.iter().filter(|&&m| m).count().max(1);
            (Some(mask), total as f32 / kept as f32)
        }
        _ => (None, 1.0),
    };

    let in_data = input.data();
    let w_data = weight.data();
    let plane = ho * wo;
    let mut out = vec![0.0f32; n * k * plane];

    // Parallelise over (batch, output channel): each task owns one output
    // plane.
    out.par_chunks_mut(plane).enumerate().for_each(|(idx, op)| {
        let b = idx / k; // batch index
        let oc = idx % k; // output channel
        let g = oc / kpg; // channel group
        let ic_start = g * cpg;
        let w_base = oc * cpg * r * s;
        let bias_v = bias.map_or(0.0, |bt| bt.data()[oc]);

        // Which output rows/cols to actually compute under perforation.
        let skip = |coord: usize| -> bool {
            match params.approx {
                ConvApprox::Perforation {
                    dim: _,
                    k: kk,
                    offset,
                } => coord % kk == offset,
                _ => false,
            }
        };
        let (perf_rows, perf_cols) = match params.approx {
            ConvApprox::Perforation { dim, .. } => {
                (dim == PerforationDim::Row, dim == PerforationDim::Col)
            }
            _ => (false, false),
        };

        for oy in 0..ho {
            if perf_rows && skip(oy) {
                continue; // interpolated later
            }
            for ox in 0..wo {
                if perf_cols && skip(ox) {
                    continue;
                }
                let mut acc = 0.0f32;
                let iy0 = (oy * sh) as isize - ph as isize;
                let ix0 = (ox * sw) as isize - pw as isize;
                for icw in 0..cpg {
                    let ic = ic_start + icw;
                    let in_base = (b * c + ic) * h * w;
                    let wk_base = w_base + icw * r * s;
                    for ky in 0..r {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let row_base = in_base + iy as usize * w;
                        let wrow = wk_base + ky * s;
                        for kx in 0..s {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            if let Some(m) = &mask {
                                // Mask is indexed by the (c,r,s)-flattened
                                // filter element, shared across all output
                                // channels (paper: "prunes an equal fraction
                                // of filter elements across all feature
                                // maps").
                                if !m[icw * r * s + ky * s + kx] {
                                    continue;
                                }
                            }
                            acc += in_data[row_base + ix as usize] * w_data[wrow + kx];
                        }
                    }
                }
                op[oy * wo + ox] = acc * scale + bias_v;
            }
        }

        // Interpolation pass for perforated outputs: nearest-neighbour
        // averaging of computed elements (Figurnov et al.).
        if perf_rows {
            for oy in 0..ho {
                if !skip(oy) {
                    continue;
                }
                // Nearest computed rows above and below.
                let above = (0..oy).rev().find(|&y| !skip(y));
                let below = (oy + 1..ho).find(|&y| !skip(y));
                for ox in 0..wo {
                    op[oy * wo + ox] = match (above, below) {
                        (Some(a), Some(bl)) => 0.5 * (op[a * wo + ox] + op[bl * wo + ox]),
                        (Some(a), None) => op[a * wo + ox],
                        (None, Some(bl)) => op[bl * wo + ox],
                        (None, None) => bias_v,
                    };
                }
            }
        } else if perf_cols {
            for ox in 0..wo {
                if !skip(ox) {
                    continue;
                }
                let left = (0..ox).rev().find(|&x| !skip(x));
                let right = (ox + 1..wo).find(|&x| !skip(x));
                for oy in 0..ho {
                    op[oy * wo + ox] = match (left, right) {
                        (Some(l), Some(rr)) => 0.5 * (op[oy * wo + l] + op[oy * wo + rr]),
                        (Some(l), None) => op[oy * wo + l],
                        (None, Some(rr)) => op[oy * wo + rr],
                        (None, None) => bias_v,
                    };
                }
            }
        }
    });

    Tensor::from_vec(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_input() -> Tensor {
        // 1x1x4x4 ramp.
        Tensor::from_vec(Shape::nchw(1, 1, 4, 4), (0..16).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn identity_kernel() {
        let input = simple_input();
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn box_filter_matches_manual() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 1, 4, 4));
        // Centre element (1,1): sum of 3x3 window of the ramp = 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(out.at4(0, 0, 1, 1), 45.0);
        // Corner (0,0): 0+1+4+5 = 10.
        assert_eq!(out.at4(0, 0, 0, 0), 10.0);
    }

    #[test]
    fn bias_applied_per_channel() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(2, 1, 1, 1), 1.0);
        let bias = Tensor::from_vec(Shape::vec(2), vec![10.0, 20.0]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), Conv2dParams::default()).unwrap();
        assert_eq!(out.at4(0, 0, 0, 0), 10.0);
        assert_eq!(out.at4(0, 1, 0, 0), 20.0);
    }

    #[test]
    fn stride_and_padding() {
        let input = simple_input();
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0; 4]).unwrap();
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                stride: (2, 2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 1, 2, 2));
        // Window at (0,0): 0+1+4+5 = 10; at (0,1): 2+3+6+7 = 18.
        assert_eq!(out.data(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn filter_sampling_unbiased_on_constant_filter() {
        // With a constant filter and constant input, skipping 1-of-k filter
        // elements and rescaling by k/(k-1) is exact.
        let input = Tensor::full(Shape::nchw(1, 2, 6, 6), 3.0);
        let weight = Tensor::full(Shape::nchw(1, 2, 3, 3), 0.5);
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        for k in 2..=4 {
            for offset in 0..k {
                let approx = conv2d(
                    &input,
                    &weight,
                    None,
                    Conv2dParams {
                        approx: ConvApprox::FilterSampling { k, offset },
                        ..Default::default()
                    },
                )
                .unwrap();
                let mse = exact.mse(&approx).unwrap();
                assert!(mse < 1e-8, "k={k} offset={offset} mse={mse}");
            }
        }
    }

    #[test]
    fn perforation_exact_on_rowwise_constant_input() {
        // An input constant along W makes column perforation exact: every
        // interpolated column equals its neighbours.
        let mut input = Tensor::zeros(Shape::nchw(1, 1, 6, 8));
        for y in 0..6 {
            for x in 0..8 {
                *input.at4_mut(0, 0, y, x) = y as f32;
            }
        }
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![2.0]).unwrap();
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let perf = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Col,
                    k: 2,
                    offset: 1,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exact.mse(&perf).unwrap() < 1e-10);
    }

    #[test]
    fn perforation_error_grows_with_rate_on_random_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let input = Tensor::uniform(Shape::nchw(1, 3, 16, 16), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(4, 3, 3, 3), -0.5, 0.5, &mut rng);
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let mse_at = |k: usize| {
            let out = conv2d(
                &input,
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::Perforation {
                        dim: PerforationDim::Row,
                        k,
                        offset: 0,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let exact_p = conv2d(
                &input,
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            )
            .unwrap();
            exact_p.mse(&out).unwrap()
        };
        let _ = exact;
        // Skipping every 2nd row (k=2) must hurt at least as much as every
        // 4th (k=4).
        assert!(
            mse_at(2) > mse_at(4),
            "mse k=2 {} k=4 {}",
            mse_at(2),
            mse_at(4)
        );
        assert!(mse_at(4) > 0.0);
    }

    #[test]
    fn fp16_close_to_fp32() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor::uniform(Shape::nchw(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.3, 0.3, &mut rng);
        let f32_out = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let f16_out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                precision: Precision::Fp16,
                ..Default::default()
            },
        )
        .unwrap();
        let mse = f32_out.mse(&f16_out).unwrap();
        assert!(mse > 0.0, "fp16 must differ from fp32");
        assert!(mse < 1e-5, "fp16 error should be small, got {mse}");
    }

    #[test]
    fn offsets_change_the_result() {
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor::uniform(Shape::nchw(1, 2, 10, 10), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(2, 2, 3, 3), -0.5, 0.5, &mut rng);
        let o0 = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::FilterSampling { k: 2, offset: 0 },
                ..Default::default()
            },
        )
        .unwrap();
        let o1 = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::FilterSampling { k: 2, offset: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(o0.mse(&o1).unwrap() > 0.0, "different offsets must differ");
    }

    #[test]
    fn invalid_knob_rejected() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let err = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Row,
                    k: 7,
                    offset: 0,
                },
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::InvalidKnob { .. }));
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn depthwise_equals_per_channel_dense() {
        // A depthwise conv (groups = C) must equal running a 1-channel dense
        // conv on each channel independently.
        let mut rng = StdRng::seed_from_u64(21);
        let c = 3;
        let input = Tensor::uniform(Shape::nchw(1, c, 6, 6), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(c, 1, 3, 3), -1.0, 1.0, &mut rng);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: c,
                ..Default::default()
            },
        )
        .unwrap();
        for ch in 0..c {
            let xin = Tensor::from_vec(
                Shape::nchw(1, 1, 6, 6),
                input.data()[ch * 36..(ch + 1) * 36].to_vec(),
            )
            .unwrap();
            let wch = Tensor::from_vec(
                Shape::nchw(1, 1, 3, 3),
                weight.data()[ch * 9..(ch + 1) * 9].to_vec(),
            )
            .unwrap();
            let dense = conv2d(
                &xin,
                &wch,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            )
            .unwrap();
            for i in 0..36 {
                let a = out.data()[ch * 36 + i];
                let b = dense.data()[i];
                assert!((a - b).abs() < 1e-6, "ch {ch} idx {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn grouped_conv_shape_checks() {
        let input = Tensor::zeros(Shape::nchw(1, 4, 4, 4));
        // groups=2 needs weight [K, 2, R, S].
        let bad = Tensor::zeros(Shape::nchw(4, 4, 3, 3));
        assert!(conv2d(
            &input,
            &bad,
            None,
            Conv2dParams {
                groups: 2,
                ..Default::default()
            }
        )
        .is_err());
        let good = Tensor::zeros(Shape::nchw(4, 2, 3, 3));
        assert!(conv2d(
            &input,
            &good,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: 2,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn depthwise_with_perforation_runs() {
        let mut rng = StdRng::seed_from_u64(22);
        let input = Tensor::uniform(Shape::nchw(1, 4, 8, 8), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(4, 1, 3, 3), -1.0, 1.0, &mut rng);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: 4,
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Row,
                    k: 2,
                    offset: 0,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 4, 8, 8));
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
