//! 2-D convolution: exact, filter-sampled, perforated and LUT-multiplied
//! variants, each in FP32 or FP16 semantics.
//!
//! Since the kernel-optimisation pass, every configuration executes through
//! the im2col + tiled-GEMM lowering in [`super::im2col`] (the paper's §6.2
//! cuBLAS formulation); the original direct seven-loop kernel survives as
//! the oracle in [`super::reference`] and the differential suite pins the
//! two bit-for-bit. This module owns the parameter struct and the public
//! entry points.

use crate::error::TensorError;
use crate::knobs::{ConvApprox, MulApprox, Precision};
use crate::tensor::Tensor;

/// Configuration of a convolution call.
#[derive(Clone, Copy, Debug)]
pub struct Conv2dParams {
    /// Symmetric padding (height, width).
    pub pad: (usize, usize),
    /// Stride (height, width).
    pub stride: (usize, usize),
    /// Channel groups (1 = dense convolution; `C` = depthwise, as in
    /// MobileNet). The weight tensor is `[K, C/groups, R, S]`.
    pub groups: usize,
    /// Algorithmic approximation.
    pub approx: ConvApprox,
    /// Numeric precision.
    pub precision: Precision,
    /// Multiplier-level approximation (LUT approximate multipliers).
    pub mul: MulApprox,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            pad: (0, 0),
            stride: (1, 1),
            groups: 1,
            approx: ConvApprox::Exact,
            precision: Precision::Fp32,
            mul: MulApprox::Exact,
        }
    }
}

/// 2-D convolution over NCHW input `[N,C,H,W]` with weights `[K,C,R,S]` and
/// optional per-output-channel bias `[K]`.
///
/// The `approx` mechanism selects between the exact kernel, filter sampling
/// (skip 1-out-of-k filter elements, rescale by `k/(k-1)`) and output
/// perforation (skip 1-out-of-k output rows/columns, interpolate from
/// computed neighbours); `mul` optionally routes every product through a
/// LUT approximate multiplier. `Precision::Fp16` quantises operands and the
/// result through IEEE binary16.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    super::im2col::conv2d_lowered(input, weight, bias, params, false)
}

/// [`conv2d`] with the subsequent ReLU fused into the kernel's epilogue, so
/// the executor skips one full intermediate-tensor materialisation.
///
/// Bit-identical to `relu(conv2d(..))` at FP32 for every `params` setting
/// (the epilogue applies the same `max(v, 0)` expression after the same
/// quantisation points).
pub fn conv2d_fused_relu(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    super::im2col::conv2d_lowered(input, weight, bias, params, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::PerforationDim;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_input() -> Tensor {
        // 1x1x4x4 ramp.
        Tensor::from_vec(Shape::nchw(1, 1, 4, 4), (0..16).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn identity_kernel() {
        let input = simple_input();
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn box_filter_matches_manual() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 1, 4, 4));
        // Centre element (1,1): sum of 3x3 window of the ramp = 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(out.at4(0, 0, 1, 1), 45.0);
        // Corner (0,0): 0+1+4+5 = 10.
        assert_eq!(out.at4(0, 0, 0, 0), 10.0);
    }

    #[test]
    fn bias_applied_per_channel() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(2, 1, 1, 1), 1.0);
        let bias = Tensor::from_vec(Shape::vec(2), vec![10.0, 20.0]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), Conv2dParams::default()).unwrap();
        assert_eq!(out.at4(0, 0, 0, 0), 10.0);
        assert_eq!(out.at4(0, 1, 0, 0), 20.0);
    }

    #[test]
    fn stride_and_padding() {
        let input = simple_input();
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0; 4]).unwrap();
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                stride: (2, 2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 1, 2, 2));
        // Window at (0,0): 0+1+4+5 = 10; at (0,1): 2+3+6+7 = 18.
        assert_eq!(out.data(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn filter_sampling_unbiased_on_constant_filter() {
        // With a constant filter and constant input, skipping 1-of-k filter
        // elements and rescaling by k/(k-1) is exact.
        let input = Tensor::full(Shape::nchw(1, 2, 6, 6), 3.0);
        let weight = Tensor::full(Shape::nchw(1, 2, 3, 3), 0.5);
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        for k in 2..=4 {
            for offset in 0..k {
                let approx = conv2d(
                    &input,
                    &weight,
                    None,
                    Conv2dParams {
                        approx: ConvApprox::FilterSampling { k, offset },
                        ..Default::default()
                    },
                )
                .unwrap();
                let mse = exact.mse(&approx).unwrap();
                assert!(mse < 1e-8, "k={k} offset={offset} mse={mse}");
            }
        }
    }

    #[test]
    fn perforation_exact_on_rowwise_constant_input() {
        // An input constant along W makes column perforation exact: every
        // interpolated column equals its neighbours.
        let mut input = Tensor::zeros(Shape::nchw(1, 1, 6, 8));
        for y in 0..6 {
            for x in 0..8 {
                *input.at4_mut(0, 0, y, x) = y as f32;
            }
        }
        let weight = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![2.0]).unwrap();
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let perf = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Col,
                    k: 2,
                    offset: 1,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(exact.mse(&perf).unwrap() < 1e-10);
    }

    #[test]
    fn perforation_error_grows_with_rate_on_random_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let input = Tensor::uniform(Shape::nchw(1, 3, 16, 16), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(4, 3, 3, 3), -0.5, 0.5, &mut rng);
        let mse_at = |k: usize| {
            let out = conv2d(
                &input,
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::Perforation {
                        dim: PerforationDim::Row,
                        k,
                        offset: 0,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let exact_p = conv2d(
                &input,
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            )
            .unwrap();
            exact_p.mse(&out).unwrap()
        };
        // Skipping every 2nd row (k=2) must hurt at least as much as every
        // 4th (k=4).
        assert!(
            mse_at(2) > mse_at(4),
            "mse k=2 {} k=4 {}",
            mse_at(2),
            mse_at(4)
        );
        assert!(mse_at(4) > 0.0);
    }

    #[test]
    fn fp16_close_to_fp32() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor::uniform(Shape::nchw(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.3, 0.3, &mut rng);
        let f32_out = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let f16_out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                precision: Precision::Fp16,
                ..Default::default()
            },
        )
        .unwrap();
        let mse = f32_out.mse(&f16_out).unwrap();
        assert!(mse > 0.0, "fp16 must differ from fp32");
        assert!(mse < 1e-5, "fp16 error should be small, got {mse}");
    }

    #[test]
    fn offsets_change_the_result() {
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor::uniform(Shape::nchw(1, 2, 10, 10), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(2, 2, 3, 3), -0.5, 0.5, &mut rng);
        let o0 = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::FilterSampling { k: 2, offset: 0 },
                ..Default::default()
            },
        )
        .unwrap();
        let o1 = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::FilterSampling { k: 2, offset: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(o0.mse(&o1).unwrap() > 0.0, "different offsets must differ");
    }

    #[test]
    fn invalid_knob_rejected() {
        let input = simple_input();
        let weight = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let err = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Row,
                    k: 7,
                    offset: 0,
                },
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::InvalidKnob { .. }));
    }

    #[test]
    fn lut_multiplier_approximates() {
        let mut rng = StdRng::seed_from_u64(13);
        let input = Tensor::uniform(Shape::nchw(1, 2, 8, 8), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(3, 2, 3, 3), -0.5, 0.5, &mut rng);
        let exact = conv2d(&input, &weight, None, Conv2dParams::default()).unwrap();
        let mse_at = |bits: u8| {
            let out = conv2d(
                &input,
                &weight,
                None,
                Conv2dParams {
                    mul: MulApprox::Lut { bits },
                    ..Default::default()
                },
            )
            .unwrap();
            exact.mse(&out).unwrap()
        };
        let (m8, m4) = (mse_at(8), mse_at(4));
        assert!(m8 > 0.0, "LUT must differ from exact");
        assert!(m4 > m8, "4-bit must be coarser than 8-bit: {m4} vs {m8}");
        assert!(m8 < 0.05, "8-bit LUT should stay close: {m8}");
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use crate::knobs::PerforationDim;
    use crate::shape::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn depthwise_equals_per_channel_dense() {
        // A depthwise conv (groups = C) must equal running a 1-channel dense
        // conv on each channel independently.
        let mut rng = StdRng::seed_from_u64(21);
        let c = 3;
        let input = Tensor::uniform(Shape::nchw(1, c, 6, 6), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(c, 1, 3, 3), -1.0, 1.0, &mut rng);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: c,
                ..Default::default()
            },
        )
        .unwrap();
        for ch in 0..c {
            let xin = Tensor::from_vec(
                Shape::nchw(1, 1, 6, 6),
                input.data()[ch * 36..(ch + 1) * 36].to_vec(),
            )
            .unwrap();
            let wch = Tensor::from_vec(
                Shape::nchw(1, 1, 3, 3),
                weight.data()[ch * 9..(ch + 1) * 9].to_vec(),
            )
            .unwrap();
            let dense = conv2d(
                &xin,
                &wch,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            )
            .unwrap();
            for i in 0..36 {
                let a = out.data()[ch * 36 + i];
                let b = dense.data()[i];
                assert!((a - b).abs() < 1e-6, "ch {ch} idx {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn grouped_conv_shape_checks() {
        let input = Tensor::zeros(Shape::nchw(1, 4, 4, 4));
        // groups=2 needs weight [K, 2, R, S].
        let bad = Tensor::zeros(Shape::nchw(4, 4, 3, 3));
        assert!(conv2d(
            &input,
            &bad,
            None,
            Conv2dParams {
                groups: 2,
                ..Default::default()
            }
        )
        .is_err());
        let good = Tensor::zeros(Shape::nchw(4, 2, 3, 3));
        assert!(conv2d(
            &input,
            &good,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: 2,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn depthwise_with_perforation_runs() {
        let mut rng = StdRng::seed_from_u64(22);
        let input = Tensor::uniform(Shape::nchw(1, 4, 8, 8), -1.0, 1.0, &mut rng);
        let weight = Tensor::uniform(Shape::nchw(4, 1, 3, 3), -1.0, 1.0, &mut rng);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                pad: (1, 1),
                groups: 4,
                approx: ConvApprox::Perforation {
                    dim: PerforationDim::Row,
                    k: 2,
                    offset: 0,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.shape(), Shape::nchw(1, 4, 8, 8));
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
