//! Row-wise softmax (the final operation of every CNN in the paper; its raw
//! output is the `T_out` tensor consumed by the Π1 prediction model).

use crate::error::TensorError;
use crate::knobs::Precision;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Numerically-stable softmax over the last dimension of a `[M, N]` tensor.
pub fn softmax_rows(input: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    let (_, n) = input.shape().as_mat()?;
    let qin;
    let input_t = match precision {
        Precision::Fp32 => input,
        Precision::Fp16 => {
            qin = input.to_f16();
            &qin
        }
    };
    let mut out = input_t.data().to_vec();
    out.par_chunks_mut(n).for_each(|row| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    });
    let mut t = Tensor::from_vec(input.shape(), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_vec(Shape::mat(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let y = softmax_rows(&x, Precision::Fp32).unwrap();
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn preserves_argmax() {
        let x = Tensor::from_vec(Shape::mat(1, 4), vec![0.1, 5.0, -2.0, 3.0]).unwrap();
        let y = softmax_rows(&x, Precision::Fp32).unwrap();
        assert_eq!(y.argmax(), Some(1));
    }

    #[test]
    fn stable_for_large_logits() {
        let x = Tensor::from_vec(Shape::mat(1, 2), vec![1000.0, 999.0]).unwrap();
        let y = softmax_rows(&x, Precision::Fp32).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(y.data()[0] > y.data()[1]);
    }
}
