//! Generic reductions with reduction sampling (Zhu et al. \[67\]).
//!
//! Reductions collapse one axis of a tensor. Under sampling, only a strided
//! subset of the inputs along the reduced axis is visited; scale-sensitive
//! kinds (sum, mean, product) are rescaled by an appropriate constant, as in
//! the paper ("for reductions like average, sum, or multiply, we scale the
//! result by an appropriate constant").

use crate::error::TensorError;
use crate::knobs::{Precision, ReduceApprox};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// The reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Product of elements.
    Product,
}

/// Reduces `input` along `axis` with the given kind, sampling mechanism and
/// precision. The output shape drops `axis`.
pub fn reduce(
    input: &Tensor,
    axis: usize,
    kind: ReduceKind,
    approx: ReduceApprox,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    approx.validate()?;
    let rank = input.shape().rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    let shape = input.shape();
    let dims = shape.dims();
    let len = dims[axis];
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();

    let qin;
    let input_t = match precision {
        Precision::Fp32 => input,
        Precision::Fp16 => {
            qin = input.to_f16();
            &qin
        }
    };
    let data = input_t.data();

    // Which positions along the axis are visited, and the rescale constant.
    let (visit, rescale): (Vec<usize>, f64) = match approx {
        ReduceApprox::Exact => ((0..len).collect(), 1.0),
        ReduceApprox::Sampling { num, den } => {
            let idx: Vec<usize> = (0..len).filter(|i| i % den < num).collect();
            let kept = idx.len().max(1) as f64;
            (idx, len as f64 / kept)
        }
    };
    if visit.is_empty() {
        return Err(TensorError::InvalidKnob {
            op: "reduce",
            detail: format!("sampling left no elements along axis of length {len}"),
        });
    }

    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for i in 0..inner {
            let at = |j: usize| data[(o * len + j) * inner + i];
            let v = match kind {
                ReduceKind::Sum => {
                    let s: f64 = visit.iter().map(|&j| at(j) as f64).sum();
                    (s * rescale) as f32
                }
                ReduceKind::Mean => {
                    let s: f64 = visit.iter().map(|&j| at(j) as f64).sum();
                    (s / visit.len() as f64) as f32
                }
                ReduceKind::Max => visit
                    .iter()
                    .map(|&j| at(j))
                    .fold(f32::NEG_INFINITY, f32::max),
                ReduceKind::Min => visit.iter().map(|&j| at(j)).fold(f32::INFINITY, f32::min),
                ReduceKind::Product => {
                    // Rescale in the exponent: p^(len/kept) approximates the
                    // full product for positive inputs; for general inputs we
                    // return the partial product (documented best effort).
                    let p: f64 = visit.iter().map(|&j| at(j) as f64).product();
                    if p > 0.0 && approx != ReduceApprox::Exact {
                        p.powf(rescale) as f32
                    } else {
                        p as f32
                    }
                }
            };
            out[o * inner + i] = v;
        }
    }

    let out_dims: Vec<usize> = dims
        .iter()
        .enumerate()
        .filter_map(|(i, &d)| if i == axis { None } else { Some(d) })
        .collect();
    let shape = if out_dims.is_empty() {
        Shape::new(&[1])
    } else {
        Shape::new(&out_dims)
    };
    let mut t = Tensor::from_vec(shape, out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_over_axis() {
        let x = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let s0 = reduce(&x, 0, ReduceKind::Sum, ReduceApprox::Exact, Precision::Fp32).unwrap();
        assert_eq!(s0.data(), &[5., 7., 9.]);
        let s1 = reduce(&x, 1, ReduceKind::Sum, ReduceApprox::Exact, Precision::Fp32).unwrap();
        assert_eq!(s1.data(), &[6., 15.]);
    }

    #[test]
    fn mean_max_min() {
        let x = Tensor::from_vec(Shape::vec(4), vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(
            reduce(
                &x,
                0,
                ReduceKind::Mean,
                ReduceApprox::Exact,
                Precision::Fp32
            )
            .unwrap()
            .data(),
            &[2.5]
        );
        assert_eq!(
            reduce(&x, 0, ReduceKind::Max, ReduceApprox::Exact, Precision::Fp32)
                .unwrap()
                .data(),
            &[4.0]
        );
        assert_eq!(
            reduce(&x, 0, ReduceKind::Min, ReduceApprox::Exact, Precision::Fp32)
                .unwrap()
                .data(),
            &[1.0]
        );
    }

    #[test]
    fn sampled_sum_rescaled_exact_on_constant() {
        let x = Tensor::full(Shape::vec(20), 2.0);
        for approx in ReduceApprox::ALL_SAMPLING {
            let s = reduce(&x, 0, ReduceKind::Sum, approx, Precision::Fp32).unwrap();
            assert!(
                (s.data()[0] - 40.0).abs() < 1e-4,
                "{approx:?} gave {}",
                s.data()[0]
            );
        }
    }

    #[test]
    fn sampled_sum_approximate_on_ramp() {
        let x = Tensor::from_vec(Shape::vec(100), (0..100).map(|i| i as f32).collect()).unwrap();
        let exact = reduce(&x, 0, ReduceKind::Sum, ReduceApprox::Exact, Precision::Fp32).unwrap();
        let s = reduce(&x, 0, ReduceKind::Sum, ReduceApprox::HALF, Precision::Fp32).unwrap();
        let rel = (s.data()[0] - exact.data()[0]).abs() / exact.data()[0];
        assert!(rel < 0.05, "relative error {rel}");
        assert!(s.data()[0] != exact.data()[0]);
    }

    #[test]
    fn axis_out_of_range() {
        let x = Tensor::zeros(Shape::vec(4));
        assert!(reduce(&x, 1, ReduceKind::Sum, ReduceApprox::Exact, Precision::Fp32).is_err());
    }
}
