//! Tensor operations: the unit of scheduling and approximation.
//!
//! Each kernel takes the *mechanism* parameters from [`crate::knobs`]
//! directly; the tuner (in `at-core`) maps its integer knob ids onto these.

pub mod abft;
pub mod activation;
pub mod conv;
pub mod gemm;
pub mod im2col;
pub mod matmul;
pub mod norm;
pub mod pool;
pub mod reduce;
pub mod reference;
pub mod softmax;

pub use abft::{
    conv2d_abft, conv2d_fused_relu_abft, flip_bit, gemm_f32_abft, gemm_lut_abft, matmul_abft,
    verify_gemm_f32, verify_gemm_lut, AbftTol,
};
pub use activation::{clipped_relu, map_unary, relu, tanh_op, UnaryOp};
pub use conv::{conv2d, conv2d_fused_relu};
pub use im2col::{conv2d_im2col, conv2d_lowered};
pub use matmul::{bias_add_rows, matmul, matmul_ex};
pub use norm::batchnorm2d;
pub use pool::{avg_pool2d, max_pool2d};
pub use reduce::{reduce, ReduceKind};
pub use softmax::softmax_rows;
