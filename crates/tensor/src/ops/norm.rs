//! Inference-mode batch normalisation.

use crate::error::TensorError;
use crate::knobs::Precision;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Inference batch normalisation over NCHW input with per-channel
/// `gamma`, `beta`, running `mean` and `var` (each of length `C`).
pub fn batchnorm2d(
    input: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let (_, c, h, w) = input.shape().as_nchw()?;
    for (name, t) in [
        ("gamma", gamma),
        ("beta", beta),
        ("mean", mean),
        ("var", var),
    ] {
        if t.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm2d",
                detail: format!("{name} length {} != channels {c}", t.len()),
            });
        }
    }

    let qin;
    let input_t = match precision {
        Precision::Fp32 => input,
        Precision::Fp16 => {
            qin = input.to_f16();
            &qin
        }
    };

    // Precompute per-channel affine: y = x * a + b.
    let a: Vec<f32> = (0..c)
        .map(|i| gamma.data()[i] / (var.data()[i] + eps).sqrt())
        .collect();
    let b: Vec<f32> = (0..c)
        .map(|i| beta.data()[i] - mean.data()[i] * a[i])
        .collect();

    let plane = h * w;
    let data = input_t.data();
    let mut out = vec![0.0f32; data.len()];
    out.par_chunks_mut(plane).enumerate().for_each(|(idx, op)| {
        let ch = idx % c;
        let base = idx * plane;
        for (o, &x) in op.iter_mut().zip(&data[base..base + plane]) {
            *o = x * a[ch] + b[ch];
        }
    });

    let mut t = Tensor::from_vec(input.shape(), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalises_to_unit_stats() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn(Shape::nchw(4, 2, 8, 8), 3.0, &mut rng);
        // Compute per-channel stats of x and feed them as running stats.
        let (n, c, h, w) = x.shape().as_nchw().unwrap();
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        let cnt = (n * h * w) as f32;
        for b in 0..n {
            for (ch, m) in mean.iter_mut().enumerate() {
                for y in 0..h {
                    for xx in 0..w {
                        *m += x.at4(b, ch, y, xx);
                    }
                }
            }
        }
        for m in &mut mean {
            *m /= cnt;
        }
        for b in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        let d = x.at4(b, ch, y, xx) - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
        }
        for v in &mut var {
            *v /= cnt;
        }
        let gamma = Tensor::full(Shape::vec(c), 1.0);
        let beta = Tensor::zeros(Shape::vec(c));
        let mean_t = Tensor::from_vec(Shape::vec(c), mean).unwrap();
        let var_t = Tensor::from_vec(Shape::vec(c), var).unwrap();
        let y = batchnorm2d(&x, &gamma, &beta, &mean_t, &var_t, 1e-5, Precision::Fp32).unwrap();
        // Normalised output has ~zero mean, ~unit variance per channel.
        let m_out = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!(m_out.abs() < 1e-4, "mean {m_out}");
        let v_out = y.data().iter().map(|&v| v * v).sum::<f32>() / y.len() as f32;
        assert!((v_out - 1.0).abs() < 1e-2, "var {v_out}");
    }

    #[test]
    fn affine_applied() {
        let x = Tensor::full(Shape::nchw(1, 1, 2, 2), 5.0);
        let gamma = Tensor::full(Shape::vec(1), 2.0);
        let beta = Tensor::full(Shape::vec(1), 1.0);
        let mean = Tensor::full(Shape::vec(1), 5.0);
        let var = Tensor::full(Shape::vec(1), 1.0);
        let y = batchnorm2d(&x, &gamma, &beta, &mean, &var, 0.0, Precision::Fp32).unwrap();
        // (5-5)/1*2+1 = 1.
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn wrong_param_length() {
        let x = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        let p1 = Tensor::zeros(Shape::vec(3));
        let bad = Tensor::zeros(Shape::vec(2));
        assert!(batchnorm2d(&x, &bad, &p1, &p1, &p1, 1e-5, Precision::Fp32).is_err());
    }
}
