//! Tiled, register-blocked GEMM microkernels — the shared compute core of
//! the optimised matmul and the im2col-lowered convolutions.
//!
//! Layout: `C[M,N] = A[M,K] × B[K,N]`, all row-major. The inner microkernel
//! computes a [`MICRO_ROWS`]×(2·[`LANES`]) output tile (8×32) held entirely
//! in registers: per `k` step it loads two 16-float groups of a packed B
//! panel once, broadcasts one `A[i,k]` per tile row and issues 16
//! independent fused-multiply–add chains, hiding FMA latency without
//! reassociating any single output's sum. Sharing each B load across 8 rows
//! and packing B's panels contiguously ([`pack_b_panels`]) is what makes
//! the kernel compute-bound instead of L2/TLB-bound. Build with
//! `target-cpu=native` (see `.cargo/config.toml`) so each 16-lane group
//! maps onto one 512-bit register (or a ymm pair on AVX2 parts).
//!
//! **Bit-exactness contract**: every output element `C[i,j]` accumulates
//! its `K` products in strictly increasing `k` order into a single `f32`
//! accumulator via [`f32::mul_add`] (fused multiply–add, one rounding per
//! product), exactly like the naive reference kernel — so exact-FP32
//! results are bit-for-bit identical to [`super::reference`], for any tile
//! boundary and any rayon thread count (parallel tasks own disjoint row
//! blocks and never split a `k` loop). FMA is part of the contract: both
//! sides must use it, and `mul_add` lowers to the same single-rounding
//! operation whether the target has an FMA unit or falls back to libm.
//!
//! [`gemm_lut`] is the integer twin for the LUT approximate-multiplier
//! path: `i16`-quantised operands, table-served products, `i64`
//! accumulation (associative, hence trivially order-independent).

use crate::f16;
use crate::instrument;
use crate::lut::LutTable;
use rayon::prelude::*;

/// SIMD lane count the microkernel is unrolled for (f32x16 ≙ AVX-512 zmm;
/// lowers to a ymm pair on AVX2-only parts).
pub const LANES: usize = 16;
/// Accumulator vectors per panel: 64-column panels, 8 chains in flight.
const PANEL_VECS: usize = 8;
/// Output rows per rayon task (fixed, so partitioning is deterministic).
const ROW_BLOCK: usize = 8;

/// What happens to each accumulated output element before it is stored.
///
/// The variants replicate — expression for expression — the epilogues of
/// the reference kernels, so fused execution stays bit-identical to the
/// unfused op sequence.
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw accumulator.
    Raw,
    /// Convolution epilogue: `v = acc·scale + bias[row]`, then optional
    /// fp16 quantisation, then optional fused ReLU (in that order — the
    /// same order the unfused conv → relu node sequence applies them).
    Conv {
        /// Filter-sampling compensation factor (1.0 when exact).
        scale: f32,
        /// Per-output-channel bias, indexed by GEMM row; `None` adds 0.0
        /// (the reference kernel also always adds its `bias_v`).
        bias: Option<&'a [f32]>,
        /// Quantise through binary16 after bias.
        fp16: bool,
        /// Apply `max(v, 0)` last (fused ReLU).
        relu: bool,
    },
    /// Dense-layer epilogue: optional fp16 quantisation of the product,
    /// then per-*column* bias, then fp16 again — matching the unfused
    /// `matmul` → `bias_add_rows` pair exactly.
    Dense {
        /// Per-column bias.
        bias: Option<&'a [f32]>,
        /// Quantise through binary16 (before and after the bias add).
        fp16: bool,
    },
}

impl Epilogue<'_> {
    /// Applies the epilogue to one accumulated element.
    #[inline(always)]
    pub fn apply(&self, acc: f32, row: usize, col: usize) -> f32 {
        match *self {
            Epilogue::Raw => acc,
            Epilogue::Conv {
                scale,
                bias,
                fp16,
                relu,
            } => {
                let mut v = acc * scale + bias.map_or(0.0, |b| b[row]);
                if fp16 {
                    v = f16::quantize(v);
                }
                if relu {
                    v = v.max(0.0);
                }
                v
            }
            Epilogue::Dense { bias, fp16 } => {
                let mut v = acc;
                if fp16 {
                    v = f16::quantize(v);
                }
                if let Some(b) = bias {
                    v += b[col];
                    if fp16 {
                        v = f16::quantize(v);
                    }
                }
                v
            }
        }
    }
}

/// Rows per multi-row microkernel call. Each `B[k, panel]` vector load is
/// shared across this many output rows' accumulator chains, which divides
/// the kernel's B-panel cache traffic by the same factor — the classic
/// register-blocking trade: more independent FMA chains in flight per byte
/// loaded. 8 rows × 2 vectors = 16 accumulator vectors + 2 B vectors + 1
/// broadcast, within the 32 SIMD registers of AVX-512.
const MICRO_ROWS: usize = 8;

/// `R` output rows over a `V·LANES`-column panel, sharing each B vector
/// load across all `R` rows. `b` starts at the panel's first element and
/// `bstride` is the distance between consecutive `k` rows of the panel —
/// `n` for an unpacked row-major B, `V·LANES` for a packed panel (see
/// [`pack_b_panels`]), in which case the `k` loop walks memory purely
/// sequentially and the hardware prefetcher keeps it fed.
///
/// Every output element still accumulates its `K` products in strictly
/// increasing `k` order into its own single `f32`, so the result is
/// bit-identical to the single-row kernel and the naive reference.
// The `0..k` counter loop with `arows[r][kk]` indexing is deliberate: it is
// the shape LLVM turns into the spill-free broadcast+FMA loop; the iterator
// rewrite clippy suggests pessimises register allocation here.
#[allow(clippy::needless_range_loop)]
#[inline]
fn panel_rows<const R: usize, const V: usize>(
    a: &[f32],
    k: usize,
    i0: usize,
    b: &[f32],
    bstride: usize,
) -> [[[f32; LANES]; V]; R] {
    let mut acc = [[[0.0f32; LANES]; V]; R];
    // Whole-row slices of length k: the `arows[r][kk]` access below is then
    // provably in bounds for every `kk` in `0..k`, so no checks survive in
    // the hot loop.
    let arows: [&[f32]; R] = core::array::from_fn(|r| &a[(i0 + r) * k..(i0 + r + 1) * k]);
    for kk in 0..k {
        let base = kk * bstride;
        let brow = &b[base..base + V * LANES];
        let mut bv = [[0.0f32; LANES]; V];
        for (c, bvc) in bv.iter_mut().enumerate() {
            *bvc = match brow[c * LANES..(c + 1) * LANES].try_into() {
                Ok(v) => v,
                // The slice is exactly LANES long by construction; keep the
                // zero-cost reinterpret without an unwrap in the hot loop.
                Err(_) => unreachable!("panel slice is exactly LANES wide"),
            };
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arows[r][kk];
            for (c, accv) in accr.iter_mut().enumerate() {
                for (l, s) in accv.iter_mut().enumerate() {
                    *s = av.mul_add(bv[c][l], *s);
                }
            }
        }
    }
    acc
}

/// Reorders B's full-width column panels into contiguous `K×(2·LANES)`
/// slabs, panel-major. Row-major B is read with stride `n` inside the
/// microkernel's `k` loop — at GEMM sizes that is a fresh cache line (and
/// every other step a fresh page) per iteration, which stalls on L2/TLB
/// because stride prefetchers give up at page boundaries. Packing costs one
/// `O(K·N)` pass and turns the `O(M·K·N)` hot loop into sequential reads.
/// Pure data movement: the arithmetic, and therefore every output bit, is
/// unchanged.
fn pack_b_panels(k: usize, n: usize, b: &[f32]) -> Vec<f32> {
    let wide = 2 * LANES;
    let npanels = n / wide;
    let mut packed = vec![0.0f32; npanels * k * wide];
    for kk in 0..k {
        let brow = &b[kk * n..kk * n + npanels * wide];
        for (p, chunk) in brow.chunks_exact(wide).enumerate() {
            packed[(p * k + kk) * wide..(p * k + kk + 1) * wide].copy_from_slice(chunk);
        }
    }
    packed
}

/// One output row over a `V·LANES`-column panel starting at column `j0`.
/// `dst` receives the raw accumulators (epilogue applied later).
#[inline]
fn panel_row<const V: usize>(arow: &[f32], b: &[f32], n: usize, j0: usize, dst: &mut [f32]) {
    let mut acc = [[0.0f32; LANES]; V];
    for (kk, &av) in arow.iter().enumerate() {
        let base = kk * n + j0;
        let brow = &b[base..base + V * LANES];
        for (c, accv) in acc.iter_mut().enumerate() {
            let bb: &[f32; LANES] = match brow[c * LANES..(c + 1) * LANES].try_into() {
                Ok(v) => v,
                Err(_) => unreachable!("panel slice is exactly LANES wide"),
            };
            for (l, s) in accv.iter_mut().enumerate() {
                *s = av.mul_add(bb[l], *s);
            }
        }
    }
    for (c, accv) in acc.iter().enumerate() {
        dst[c * LANES..(c + 1) * LANES].copy_from_slice(accv);
    }
}

/// Scalar column tail (fewer than [`LANES`] columns remain).
fn panel_row_tail(arow: &[f32], b: &[f32], n: usize, j0: usize, dst: &mut [f32]) {
    for (dj, d) in dst.iter_mut().enumerate() {
        let j = j0 + dj;
        let mut acc = 0.0f32;
        for (kk, &av) in arow.iter().enumerate() {
            acc = av.mul_add(b[kk * n + j], acc);
        }
        *d = acc;
    }
}

/// Tiled f32 GEMM with fused epilogue: `out[M,N] = epi(A[M,K] × B[K,N])`.
///
/// Parallelised over fixed [`ROW_BLOCK`]-row chunks; inside a chunk the
/// column-panel loop is outermost so each `K×64` B panel is reused across
/// the chunk's rows while it is cache-resident.
pub fn gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    epi: &Epilogue,
) {
    assert_eq!(a.len(), m * k, "gemm A size");
    assert_eq!(b.len(), k * n, "gemm B size");
    assert_eq!(out.len(), m * n, "gemm C size");
    if m == 0 || n == 0 {
        return;
    }
    instrument::add_muls((m * k * n) as u64);
    let wide = PANEL_VECS * LANES;
    let wide2 = 2 * LANES;
    // Shared read-only packed copy of B's 16-column panels (empty when no
    // row group can use it).
    let packed = if m >= MICRO_ROWS && n >= wide2 {
        pack_b_panels(k, n, b)
    } else {
        Vec::new()
    };
    let npanels = if packed.is_empty() { 0 } else { n / wide2 };
    out.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, ob)| {
            let i0 = blk * ROW_BLOCK;
            let rows = ob.len() / n;
            // Register-blocked groups of MICRO_ROWS rows: the B panel is
            // loaded once per group instead of once per row.
            let mut di = 0;
            while di + MICRO_ROWS <= rows {
                let mut j = 0;
                for p in 0..npanels {
                    let bpanel = &packed[p * k * wide2..(p + 1) * k * wide2];
                    let acc = panel_rows::<MICRO_ROWS, 2>(a, k, i0 + di, bpanel, wide2);
                    for (r, accr) in acc.iter().enumerate() {
                        for (c, accv) in accr.iter().enumerate() {
                            let o = (di + r) * n + j + c * LANES;
                            ob[o..o + LANES].copy_from_slice(accv);
                        }
                    }
                    j += wide2;
                }
                while j + LANES <= n {
                    let acc = panel_rows::<MICRO_ROWS, 1>(a, k, i0 + di, &b[j..], n);
                    for (r, accr) in acc.iter().enumerate() {
                        let o = (di + r) * n + j;
                        ob[o..o + LANES].copy_from_slice(&accr[0]);
                    }
                    j += LANES;
                }
                if j < n {
                    for r in 0..MICRO_ROWS {
                        let d = di + r;
                        let arow = &a[(i0 + d) * k..(i0 + d + 1) * k];
                        panel_row_tail(arow, b, n, j, &mut ob[d * n + j..(d + 1) * n]);
                    }
                }
                di += MICRO_ROWS;
            }
            // Leftover rows (fewer than MICRO_ROWS): single-row panels.
            for d in di..rows {
                let arow = &a[(i0 + d) * k..(i0 + d + 1) * k];
                let mut j = 0;
                while j + wide <= n {
                    panel_row::<PANEL_VECS>(arow, b, n, j, &mut ob[d * n + j..d * n + j + wide]);
                    j += wide;
                }
                while j + LANES <= n {
                    panel_row::<1>(arow, b, n, j, &mut ob[d * n + j..d * n + j + LANES]);
                    j += LANES;
                }
                if j < n {
                    panel_row_tail(arow, b, n, j, &mut ob[d * n + j..(d + 1) * n]);
                }
            }
            if !matches!(epi, Epilogue::Raw) {
                for (di, orow) in ob.chunks_mut(n).enumerate() {
                    for (jj, o) in orow.iter_mut().enumerate() {
                        *o = epi.apply(*o, i0 + di, jj);
                    }
                }
            }
        });
}

/// Integer GEMM over LUT-quantised operands: products served from `table`,
/// accumulated in `i64`, dequantised by `dequant` (= scale_A · scale_B)
/// before the epilogue.
#[allow(clippy::too_many_arguments)]
pub fn gemm_lut(
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    b: &[i16],
    table: &LutTable,
    dequant: f32,
    out: &mut [f32],
    epi: &Epilogue,
) {
    assert_eq!(a.len(), m * k, "gemm_lut A size");
    assert_eq!(b.len(), k * n, "gemm_lut B size");
    assert_eq!(out.len(), m * n, "gemm_lut C size");
    if m == 0 || n == 0 {
        return;
    }
    instrument::add_muls((m * k * n) as u64);
    out.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, ob)| {
            let i0 = blk * ROW_BLOCK;
            let mut acc = vec![0i64; n];
            for (di, orow) in ob.chunks_mut(n).enumerate() {
                let i = i0 + di;
                acc.fill(0);
                let arow = &a[i * k..(i + 1) * k];
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0 {
                        // Integer sums are order-independent; skipping exact
                        // zeros cannot change the result.
                        continue;
                    }
                    let neg = av < 0;
                    let row = table.row(av.unsigned_abs() as usize);
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (s, &bv) in acc.iter_mut().zip(brow) {
                        let p = i64::from(row[bv.unsigned_abs() as usize]);
                        *s += if (bv < 0) != neg { -p } else { p };
                    }
                }
                for (jj, (o, &s)) in orow.iter_mut().zip(acc.iter()).enumerate() {
                    *o = epi.apply(s as f32 * dequant, i, jj);
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gemm_matches_hand_product() {
        // [2,3] × [3,2]
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0f32; 4];
        gemm_f32(2, 3, 2, &a, &b, &mut c, &Epilogue::Raw);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn wide_panel_and_tails_agree_with_scalar() {
        // n = 64 + 8 + 5 exercises the wide panel, the 8-wide loop and the
        // scalar tail in one call.
        let m = 3;
        let k = 17;
        let n = 77;
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, &mut c, &Epilogue::Raw);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k {
                    want = a[i * k + kk].mul_add(b[kk * n + j], want);
                }
                assert_eq!(c[i * n + j].to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn conv_epilogue_order() {
        let e = Epilogue::Conv {
            scale: 2.0,
            bias: Some(&[1.0]),
            fp16: false,
            relu: true,
        };
        assert_eq!(e.apply(3.0, 0, 0), 7.0);
        assert_eq!(e.apply(-3.0, 0, 0), 0.0, "relu after bias");
    }

    #[test]
    fn dense_epilogue_matches_unfused_fp16_path() {
        let bias = [0.1f32, 0.2];
        let e = Epilogue::Dense {
            bias: Some(&bias),
            fp16: true,
        };
        let acc = 1.2345678f32;
        let want = crate::f16::quantize(crate::f16::quantize(acc) + bias[1]);
        assert_eq!(e.apply(acc, 0, 1).to_bits(), want.to_bits());
    }

    #[test]
    fn lut_gemm_matches_scalar_reference() {
        let m = 2;
        let k = 9;
        let n = 13;
        let a: Vec<i16> = (0..m * k).map(|i| (i as i16 % 11) - 5).collect();
        let b: Vec<i16> = (0..k * n).map(|i| (i as i16 % 9) - 4).collect();
        let table = crate::lut::lut_for(4);
        let dq = 0.25f32;
        let mut c = vec![0.0f32; m * n];
        gemm_lut(m, k, n, &a, &b, table, dq, &mut c, &Epilogue::Raw);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i64;
                for kk in 0..k {
                    s += i64::from(table.mul(a[i * k + kk], b[kk * n + j]));
                }
                assert_eq!(c[i * n + j], s as f32 * dq, "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm_f32(0, 4, 0, &[], &[], &mut c, &Epilogue::Raw);
        let mut c1 = vec![0.0f32; 3];
        // K = 0: outputs are the epilogue of a zero accumulator.
        gemm_f32(
            1,
            0,
            3,
            &[],
            &[],
            &mut c1,
            &Epilogue::Conv {
                scale: 1.0,
                bias: Some(&[5.0]),
                fp16: false,
                relu: false,
            },
        );
        assert_eq!(c1, [5.0, 5.0, 5.0]);
    }
}
