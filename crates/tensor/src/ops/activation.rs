//! Elementwise activation / map operations.

use crate::error::TensorError;
use crate::knobs::Precision;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Elementwise unary operations supported as `map` ops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnaryOp {
    /// max(x, 0)
    Relu,
    /// clamp(x, lo, hi)
    ClippedRelu(f32, f32),
    /// hyperbolic tangent
    Tanh,
    /// absolute value
    Abs,
    /// x * s
    Scale(f32),
    /// x + c
    Offset(f32),
    /// square root of max(x, 0)
    SqrtPos,
}

impl UnaryOp {
    /// Applies the op to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::ClippedRelu(lo, hi) => x.clamp(lo, hi),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Scale(s) => x * s,
            UnaryOp::Offset(c) => x + c,
            UnaryOp::SqrtPos => x.max(0.0).sqrt(),
        }
    }
}

/// Applies a unary map over the tensor, honouring FP16 semantics.
pub fn map_unary(input: &Tensor, op: UnaryOp, precision: Precision) -> Result<Tensor, TensorError> {
    let mut data: Vec<f32> = match precision {
        Precision::Fp32 => input.data().par_iter().map(|&x| op.apply(x)).collect(),
        Precision::Fp16 => input
            .data()
            .par_iter()
            .map(|&x| crate::f16::quantize(op.apply(crate::f16::quantize(x))))
            .collect(),
    };
    // Parallel map preserves length; shape unchanged.
    let t = Tensor::from_vec(input.shape(), std::mem::take(&mut data))?;
    Ok(t)
}

/// ReLU activation.
pub fn relu(input: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    map_unary(input, UnaryOp::Relu, precision)
}

/// Clipped ReLU (e.g. ReLU6 in MobileNet).
pub fn clipped_relu(
    input: &Tensor,
    lo: f32,
    hi: f32,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    map_unary(input, UnaryOp::ClippedRelu(lo, hi), precision)
}

/// Tanh activation.
pub fn tanh_op(input: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    map_unary(input, UnaryOp::Tanh, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(Shape::vec(4), vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let r = relu(&t, Precision::Fp32).unwrap();
        assert_eq!(r.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn clipped_relu6() {
        let t = Tensor::from_vec(Shape::vec(3), vec![-2.0, 3.0, 9.0]).unwrap();
        let r = clipped_relu(&t, 0.0, 6.0, Precision::Fp32).unwrap();
        assert_eq!(r.data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn tanh_bounded() {
        let t = Tensor::from_vec(Shape::vec(3), vec![-100.0, 0.0, 100.0]).unwrap();
        let r = tanh_op(&t, Precision::Fp32).unwrap();
        assert_eq!(r.data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn fp16_map_quantises() {
        let x = 1.0 + 2.0_f32.powi(-13); // not representable in fp16
        let t = Tensor::from_vec(Shape::vec(1), vec![x]).unwrap();
        let r = relu(&t, Precision::Fp16).unwrap();
        assert_eq!(r.data()[0], 1.0);
    }
}
