//! Matrix multiplication (dense/fully-connected layers) on the tiled GEMM
//! core, with FP16 and LUT approximate-multiplier support.
//!
//! [`matmul`] keeps the original naive-kernel semantics bit-for-bit (the
//! differential suite enforces this against [`super::reference`]);
//! [`matmul_ex`] additionally fuses the per-column bias add and selects the
//! multiplier, so the IR executor's dense layers run in one kernel without
//! materialising the unbiased product.

use crate::error::TensorError;
use crate::knobs::{MulApprox, Precision};
use crate::lut;
use crate::ops::gemm::{self, Epilogue};
use crate::tensor::Tensor;
use crate::Shape;

/// `C = A × B` for `A: [M,K]`, `B: [K,N]` on the register-blocked kernel.
///
/// `Precision::Fp16` quantises both operands and the result through binary16
/// while accumulating in f32.
pub fn matmul(a: &Tensor, b: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    matmul_ex(a, b, None, precision, MulApprox::Exact)
}

/// Fused dense layer: `C = epilogue(A × B)` with optional per-column bias,
/// FP16 semantics and a selectable multiplier.
///
/// Bit-compatibility contract: with `MulApprox::Exact` this equals the
/// unfused `matmul` → [`bias_add_rows`] sequence exactly (same quantisation
/// points, same accumulation order). With `MulApprox::Lut`, operands are
/// symmetric-quantised per tensor and every product is served from the
/// bitwidth's Mitchell table, accumulating in `i64`.
pub fn matmul_ex(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    precision: Precision,
    mul: MulApprox,
) -> Result<Tensor, TensorError> {
    mul.validate()?;
    let (m, ka) = a.shape().as_mat()?;
    let (kb, n) = b.shape().as_mat()?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {ka} vs {kb}"),
        });
    }
    if let Some(bt) = bias {
        if bt.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "bias_add",
                detail: format!("bias len {} != cols {n}", bt.len()),
            });
        }
    }

    let (qa, qb);
    let (a, b) = match precision {
        Precision::Fp32 => (a, b),
        Precision::Fp16 => {
            qa = a.to_f16();
            qb = b.to_f16();
            (&qa, &qb)
        }
    };
    let epi = Epilogue::Dense {
        bias: bias.map(|t| t.data()),
        fp16: precision == Precision::Fp16,
    };

    let mut out = vec![0.0f32; m * n];
    match mul {
        MulApprox::Exact => {
            gemm::gemm_f32(m, ka, n, a.data(), b.data(), &mut out, &epi);
        }
        MulApprox::Lut { bits } => {
            let table = lut::lut_for(bits);
            let aq = lut::quantize_symmetric(a.data(), bits);
            let bq = lut::quantize_symmetric(b.data(), bits);
            gemm::gemm_lut(
                m,
                ka,
                n,
                &aq.q,
                &bq.q,
                table,
                aq.scale * bq.scale,
                &mut out,
                &epi,
            );
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

/// Adds a bias row-vector `[N]` to every row of `x: [M,N]`.
pub fn bias_add_rows(
    x: &Tensor,
    bias: &Tensor,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let (m, n) = x.shape().as_mat()?;
    if bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "bias_add",
            detail: format!("bias len {} != cols {n}", bias.len()),
        });
    }
    let bd = bias.data();
    let mut out = x.data().to_vec();
    for row in 0..m {
        for col in 0..n {
            out[row * n + col] += bd[col];
        }
    }
    let mut t = Tensor::from_vec(x.shape(), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b, Precision::Fp32).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::uniform(Shape::mat(4, 4), -1.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros(Shape::mat(4, 4));
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = matmul(&a, &eye, Precision::Fp32).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(4, 2));
        assert!(matmul(&a, &b, Precision::Fp32).is_err());
    }

    #[test]
    fn fp16_small_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::uniform(Shape::mat(8, 16), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(16, 8), -1.0, 1.0, &mut rng);
        let c32 = matmul(&a, &b, Precision::Fp32).unwrap();
        let c16 = matmul(&a, &b, Precision::Fp16).unwrap();
        let mse = c32.mse(&c16).unwrap();
        assert!(mse > 0.0 && mse < 1e-4, "mse {mse}");
    }

    #[test]
    fn bias_add() {
        let x = Tensor::from_vec(Shape::mat(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(Shape::vec(2), vec![10., 20.]).unwrap();
        let y = bias_add_rows(&x, &b, Precision::Fp32).unwrap();
        assert_eq!(y.data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn fused_equals_unfused_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::uniform(Shape::mat(5, 37), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(37, 91), -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(Shape::vec(91), -0.5, 0.5, &mut rng);
        for precision in Precision::ALL {
            let unfused =
                bias_add_rows(&matmul(&a, &b, precision).unwrap(), &bias, precision).unwrap();
            let fused = matmul_ex(&a, &b, Some(&bias), precision, MulApprox::Exact).unwrap();
            for (u, f) in unfused.data().iter().zip(fused.data()) {
                assert_eq!(u.to_bits(), f.to_bits(), "{precision:?}");
            }
        }
    }

    #[test]
    fn lut_multiplier_error_bounded_and_graded() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::uniform(Shape::mat(12, 48), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(48, 20), -1.0, 1.0, &mut rng);
        let exact = matmul(&a, &b, Precision::Fp32).unwrap();
        let mse_at = |bits: u8| {
            let approx = matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Lut { bits }).unwrap();
            exact.mse(&approx).unwrap()
        };
        let (m8, m6, m4) = (mse_at(8), mse_at(6), mse_at(4));
        assert!(m8 > 0.0, "LUT path must actually approximate");
        assert!(
            m8 < m6 && m6 < m4,
            "error must grow as bits shrink: {m8} {m6} {m4}"
        );
        assert!(m4 < 1.0, "even 4-bit stays in the ballpark: {m4}");
    }

    #[test]
    fn invalid_mul_rejected() {
        let a = Tensor::zeros(Shape::mat(2, 2));
        let b = Tensor::zeros(Shape::mat(2, 2));
        assert!(matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Lut { bits: 1 }).is_err());
    }
}
