//! Matrix multiplication (dense/fully-connected layers) with FP16 support.

use crate::error::TensorError;
use crate::knobs::Precision;
use crate::tensor::Tensor;
use crate::Shape;
use rayon::prelude::*;

/// `C = A × B` for `A: [M,K]`, `B: [K,N]`, parallelised over rows of `A`.
///
/// `Precision::Fp16` quantises both operands and the result through binary16
/// while accumulating in f32.
pub fn matmul(a: &Tensor, b: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    let (m, ka) = a.shape().as_mat()?;
    let (kb, n) = b.shape().as_mat()?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            detail: format!("inner dims {ka} vs {kb}"),
        });
    }

    let (qa, qb);
    let (a, b) = match precision {
        Precision::Fp32 => (a, b),
        Precision::Fp16 => {
            qa = a.to_f16();
            qb = b.to_f16();
            (&qa, &qb)
        }
    };

    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(row, orow)| {
        let arow = &ad[row * ka..(row + 1) * ka];
        // k-outer accumulation: walks B row-by-row for cache friendliness.
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    });

    let mut t = Tensor::from_vec(Shape::mat(m, n), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

/// Adds a bias row-vector `[N]` to every row of `x: [M,N]`.
pub fn bias_add_rows(
    x: &Tensor,
    bias: &Tensor,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let (m, n) = x.shape().as_mat()?;
    if bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "bias_add",
            detail: format!("bias len {} != cols {n}", bias.len()),
        });
    }
    let bd = bias.data();
    let mut out = x.data().to_vec();
    for row in 0..m {
        for col in 0..n {
            out[row * n + col] += bd[col];
        }
    }
    let mut t = Tensor::from_vec(x.shape(), out)?;
    if precision == Precision::Fp16 {
        t.quantize_f16();
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(Shape::mat(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b, Precision::Fp32).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::uniform(Shape::mat(4, 4), -1.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros(Shape::mat(4, 4));
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let c = matmul(&a, &eye, Precision::Fp32).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(4, 2));
        assert!(matmul(&a, &b, Precision::Fp32).is_err());
    }

    #[test]
    fn fp16_small_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::uniform(Shape::mat(8, 16), -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(Shape::mat(16, 8), -1.0, 1.0, &mut rng);
        let c32 = matmul(&a, &b, Precision::Fp32).unwrap();
        let c16 = matmul(&a, &b, Precision::Fp16).unwrap();
        let mse = c32.mse(&c16).unwrap();
        assert!(mse > 0.0 && mse < 1e-4, "mse {mse}");
    }

    #[test]
    fn bias_add() {
        let x = Tensor::from_vec(Shape::mat(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(Shape::vec(2), vec![10., 20.]).unwrap();
        let y = bias_add_rows(&x, &b, Precision::Fp32).unwrap();
        assert_eq!(y.data(), &[11., 22., 13., 24.]);
    }
}
