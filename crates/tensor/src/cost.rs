//! Analytical operation-count cost model (paper §3.4).
//!
//! "As a proxy for execution time, we use the count of compute and memory
//! operations, computed analytically for each tensor op with closed-form
//! expressions using input tensor sizes, weight tensor sizes, strides,
//! padding, etc."
//!
//! The cost of an approximated op is
//! `Cost(op, knob) = N_m(op)/R_m(knob) + N_c(op)/R_c(knob)` (Eqn 3), where
//! `R_m`/`R_c` are knob-specific reduction factors. E.g. for FP16 50% filter
//! sampling, `R_m = 4` (2× fewer bytes from FP16 × 2× fewer loads from
//! sampling) and `R_c = 2`.

use crate::knobs::{ConvApprox, MulApprox, Precision, ReduceApprox};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// Baseline operation counts for an (unapproximated, FP32) tensor op.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct OpCounts {
    /// Number of arithmetic operations (multiply–accumulates counted as 2).
    pub compute: f64,
    /// Number of 4-byte memory operations (loads + stores).
    pub memory: f64,
}

impl OpCounts {
    /// Zero cost.
    pub const ZERO: OpCounts = OpCounts {
        compute: 0.0,
        memory: 0.0,
    };

    /// Sums two counts.
    pub fn plus(self, other: OpCounts) -> OpCounts {
        OpCounts {
            compute: self.compute + other.compute,
            memory: self.memory + other.memory,
        }
    }
}

/// Reduction factors `(R_c, R_m)` applied by an approximation knob.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReductionFactors {
    /// Compute-operation reduction factor (≥ 1).
    pub compute: f64,
    /// Memory-operation reduction factor (≥ 1).
    pub memory: f64,
}

impl ReductionFactors {
    /// No reduction.
    pub const NONE: ReductionFactors = ReductionFactors {
        compute: 1.0,
        memory: 1.0,
    };
}

/// Closed-form counts for a (possibly grouped) 2-D convolution.
///
/// `weight` is `[K, C/groups, R, S]`; for a dense convolution the second
/// weight dimension equals the input channel count. Grouping is inferred
/// from the shapes, so depthwise convolutions are costed correctly.
pub fn conv2d_counts(
    input: Shape,
    weight: Shape,
    pad: (usize, usize),
    stride: (usize, usize),
) -> OpCounts {
    let (n, c, h, w) = match input.as_nchw() {
        Ok(v) => v,
        Err(_) => return OpCounts::ZERO,
    };
    let (k, cpg, r, s) = match weight.as_nchw() {
        Ok(v) => v,
        Err(_) => return OpCounts::ZERO,
    };
    if cpg == 0 || c % cpg != 0 || r > h + 2 * pad.0 || s > w + 2 * pad.1 {
        return OpCounts::ZERO;
    }
    let ho = crate::shape::conv_out_dim(h, r, pad.0, stride.0);
    let wo = crate::shape::conv_out_dim(w, s, pad.1, stride.1);
    let outputs = (n * k * ho * wo) as f64;
    let macs_per_output = (cpg * r * s) as f64;
    OpCounts {
        compute: 2.0 * outputs * macs_per_output,
        // Each output loads its window and the filter, and stores once.
        memory: outputs * (2.0 * macs_per_output + 1.0),
    }
}

/// Closed-form counts for `[M,K] × [K,N]` matrix multiplication.
pub fn matmul_counts(m: usize, k: usize, n: usize) -> OpCounts {
    let outputs = (m * n) as f64;
    OpCounts {
        compute: 2.0 * outputs * k as f64,
        memory: outputs * (2.0 * k as f64 + 1.0),
    }
}

/// Counts for an elementwise map over `len` elements (`flops_per_elem`
/// arithmetic ops each).
pub fn map_counts(len: usize, flops_per_elem: f64) -> OpCounts {
    OpCounts {
        compute: len as f64 * flops_per_elem,
        memory: 2.0 * len as f64,
    }
}

/// Counts for pooling over NCHW input with the given window/stride.
pub fn pool2d_counts(
    input: Shape,
    window: (usize, usize),
    pad: (usize, usize),
    stride: (usize, usize),
) -> OpCounts {
    let (n, c, h, w) = match input.as_nchw() {
        Ok(v) => v,
        Err(_) => return OpCounts::ZERO,
    };
    let ho = crate::shape::conv_out_dim(h, window.0, pad.0, stride.0);
    let wo = crate::shape::conv_out_dim(w, window.1, pad.1, stride.1);
    let outputs = (n * c * ho * wo) as f64;
    let per = (window.0 * window.1) as f64;
    OpCounts {
        compute: outputs * per,
        memory: outputs * (per + 1.0),
    }
}

/// Counts for a reduction of `len` elements to one, times `groups` outputs.
pub fn reduce_counts(groups: usize, len: usize) -> OpCounts {
    OpCounts {
        compute: (groups * len) as f64,
        memory: (groups * (len + 1)) as f64,
    }
}

/// Counts for batch normalisation over NCHW input.
pub fn batchnorm_counts(input: Shape) -> OpCounts {
    // One multiply + one add per element with the folded affine form.
    map_counts(input.volume(), 2.0)
}

/// Counts for row-wise softmax of an `[M,N]` tensor.
pub fn softmax_counts(m: usize, n: usize) -> OpCounts {
    // exp + subtract + divide + max/sum passes ≈ 5 flops per element.
    map_counts(m * n, 5.0)
}

/// Reduction factors for a convolution knob (Eqn 3 discussion).
pub fn conv_reduction_factors(approx: ConvApprox, precision: Precision) -> ReductionFactors {
    let alg = 1.0 / approx.kept_fraction(); // e.g. 2.0 for 50% sampling
    let prec_mem = match precision {
        Precision::Fp32 => 1.0,
        Precision::Fp16 => 2.0, // half the bytes per access
    };
    ReductionFactors {
        compute: alg,
        memory: alg * prec_mem,
    }
}

/// Reduction factors for a reduction knob.
pub fn reduce_reduction_factors(approx: ReduceApprox, precision: Precision) -> ReductionFactors {
    let alg = 1.0 / approx.kept_fraction();
    let prec_mem = match precision {
        Precision::Fp32 => 1.0,
        Precision::Fp16 => 2.0,
    };
    ReductionFactors {
        compute: alg,
        memory: alg * prec_mem,
    }
}

/// Hardware-independent reduction factors for a multiplier knob: narrower
/// operands cut memory traffic by `32/bits`; the compute-*rate* advantage
/// of the approximate multiplier cell is hardware-specific and priced by
/// `at-hw` (like FP16's double-rate units).
pub fn mul_reduction_factors(mul: MulApprox) -> ReductionFactors {
    match mul {
        MulApprox::Exact => ReductionFactors::NONE,
        MulApprox::Lut { bits } => ReductionFactors {
            compute: 1.0,
            memory: 32.0 / f64::from(bits),
        },
    }
}

/// Reduction factors for ops with only a precision knob.
pub fn precision_reduction_factors(precision: Precision) -> ReductionFactors {
    match precision {
        Precision::Fp32 => ReductionFactors::NONE,
        Precision::Fp16 => ReductionFactors {
            compute: 1.0,
            memory: 2.0,
        },
    }
}

/// Eqn 3: predicted cost of an op under reduction factors.
pub fn predicted_cost(counts: OpCounts, factors: ReductionFactors) -> f64 {
    counts.memory / factors.memory + counts.compute / factors.compute
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts_formula() {
        // 1x1 conv on 1x1x1x1: one MAC → 2 flops.
        let c = conv2d_counts(
            Shape::nchw(1, 1, 1, 1),
            Shape::nchw(1, 1, 1, 1),
            (0, 0),
            (1, 1),
        );
        assert_eq!(c.compute, 2.0);
        // Scales linearly with output channels.
        let c2 = conv2d_counts(
            Shape::nchw(1, 1, 1, 1),
            Shape::nchw(4, 1, 1, 1),
            (0, 0),
            (1, 1),
        );
        assert_eq!(c2.compute, 8.0);
    }

    #[test]
    fn paper_example_fp16_half_sampling() {
        // "for FP16 50% filter sampling, R_m = 4 … and has R_c = 2".
        let f = conv_reduction_factors(
            ConvApprox::FilterSampling { k: 2, offset: 0 },
            Precision::Fp16,
        );
        assert_eq!(f.compute, 2.0);
        assert_eq!(f.memory, 4.0);
    }

    #[test]
    fn predicted_cost_monotone_in_factors() {
        let counts = matmul_counts(64, 64, 64);
        let base = predicted_cost(counts, ReductionFactors::NONE);
        let better = predicted_cost(
            counts,
            ReductionFactors {
                compute: 2.0,
                memory: 4.0,
            },
        );
        assert!(better < base);
    }

    #[test]
    fn stride_reduces_conv_cost() {
        let s1 = conv2d_counts(
            Shape::nchw(1, 3, 32, 32),
            Shape::nchw(8, 3, 3, 3),
            (1, 1),
            (1, 1),
        );
        let s2 = conv2d_counts(
            Shape::nchw(1, 3, 32, 32),
            Shape::nchw(8, 3, 3, 3),
            (1, 1),
            (2, 2),
        );
        assert!(s2.compute < s1.compute / 3.0);
    }

    #[test]
    fn invalid_shapes_zero_cost() {
        assert_eq!(
            conv2d_counts(Shape::mat(2, 2), Shape::mat(2, 2), (0, 0), (1, 1)),
            OpCounts::ZERO
        );
    }
}
