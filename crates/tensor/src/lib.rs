#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # at-tensor — tensor compute substrate for the ApproxTuner reproduction
//!
//! A pure-Rust, data-parallel tensor library implementing the set of
//! predefined tensor operations that ApproxTuner (PPoPP'21) schedules and
//! approximates: convolutions, matrix multiplication, ReLU/tanh, pooling,
//! batch normalisation, softmax, generic `map` and `reduce`.
//!
//! Every operation exists in an *exact* form and, where the paper defines
//! one, in *approximate* forms:
//!
//! * **Filter sampling** for convolutions (Li et al. \[42\]): skip
//!   1-out-of-`k` filter elements at a configurable initial offset and
//!   rescale the remaining contributions (9 knob settings).
//! * **Perforated convolutions** (Figurnov et al. \[17\]): skip output rows or
//!   columns at a regular stride and interpolate the missing outputs from
//!   computed neighbours (18 knob settings).
//! * **Reduction sampling** (Zhu et al. \[67\]): compute reductions over a
//!   strided subset of the inputs and rescale (3 knob settings).
//! * **IEEE FP16**: software binary16 quantisation of operands and results,
//!   giving hardware-independent *semantics* for half precision (the
//!   performance benefit is modelled by `at-hw`).
//! * **LUT approximate multipliers** (the AdaPT knob family): GEMM-shaped
//!   ops over operands symmetric-quantised to 4/6/8-bit integers with
//!   products served from a precomputed Mitchell-multiplier table
//!   ([`lut`]), accumulated exactly in `i64`.
//!
//! Kernels are parallelised with rayon over batch × output-channel (or rows
//! for 2-D ops), following the data-parallel iterator idiom.
//!
//! The layout is NCHW throughout, matching the paper's cuDNN-based library.

pub mod cost;
pub mod error;
pub mod f16;
pub mod instrument;
pub mod knobs;
pub mod lut;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use f16::F16;
pub use knobs::{ConvApprox, MulApprox, PerforationDim, Precision, ReduceApprox};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
