//! Approximation *mechanisms* for tensor kernels.
//!
//! This module defines the parameter types that the kernels in [`crate::ops`]
//! understand. The mapping from ApproxTuner's integer *knob identifiers*
//! (paper §2.1: "an approximation knob is a discrete-valued parameter …
//! represented using integers") to these mechanisms lives in `at-core`,
//! keeping the compute substrate independent of the tuner.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};

/// Numeric precision for an operation.
///
/// `Fp16` has hardware-independent semantics (paper §2.1): operands and
/// results are quantised through IEEE binary16 while arithmetic accumulates
/// in f32, matching mixed-precision accumulate-in-FP32 hardware behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Precision {
    /// Full single precision — the paper's baseline.
    Fp32,
    /// IEEE binary16 storage semantics.
    Fp16,
}

impl Precision {
    /// All precisions, in knob order (FP32 first: "a zero value denotes no
    /// approximation").
    pub const ALL: [Precision; 2] = [Precision::Fp32, Precision::Fp16];
}

/// Which output dimension a perforated convolution skips.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PerforationDim {
    /// Skip output rows (height dimension).
    Row,
    /// Skip output columns (width dimension).
    Col,
}

/// Algorithmic approximation applied to a convolution.
///
/// The paper's knob counts (§2.3): filter sampling has 9 settings
/// (skip 1-out-of-k for k ∈ {2,3,4}, offsets 0..k), perforation has 18
/// (row/col × k ∈ {2,3,4} × offsets 0..k).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ConvApprox {
    /// No algorithmic approximation.
    Exact,
    /// Filter sampling: skip 1-out-of-`k` filter elements starting at
    /// `offset`, rescaling the kept contributions by `k/(k-1)`.
    FilterSampling {
        /// Skip period; one element out of every `k` is dropped.
        k: usize,
        /// Initial offset in `0..k`.
        offset: usize,
    },
    /// Output perforation: skip 1-out-of-`k` output rows or columns
    /// starting at `offset`, interpolating skipped outputs from computed
    /// neighbours.
    Perforation {
        /// Skipped dimension.
        dim: PerforationDim,
        /// Skip period; one row/column out of every `k` is dropped.
        k: usize,
        /// Initial offset in `0..k`.
        offset: usize,
    },
}

impl ConvApprox {
    /// Validates the parameters (k ∈ {2,3,4}, offset ∈ 0..k).
    pub fn validate(&self) -> Result<(), TensorError> {
        match *self {
            ConvApprox::Exact => Ok(()),
            ConvApprox::FilterSampling { k, offset }
            | ConvApprox::Perforation { k, offset, .. } => {
                if !(2..=4).contains(&k) {
                    return Err(TensorError::InvalidKnob {
                        op: "conv2d",
                        detail: format!("skip period k={k} outside 2..=4"),
                    });
                }
                if offset >= k {
                    return Err(TensorError::InvalidKnob {
                        op: "conv2d",
                        detail: format!("offset {offset} >= k {k}"),
                    });
                }
                Ok(())
            }
        }
    }

    /// Enumerates the 9 filter-sampling settings of the paper.
    pub fn all_filter_sampling() -> Vec<ConvApprox> {
        let mut v = Vec::with_capacity(9);
        for k in 2..=4 {
            for offset in 0..k {
                v.push(ConvApprox::FilterSampling { k, offset });
            }
        }
        v
    }

    /// Enumerates the 18 perforation settings of the paper.
    pub fn all_perforation() -> Vec<ConvApprox> {
        let mut v = Vec::with_capacity(18);
        for dim in [PerforationDim::Row, PerforationDim::Col] {
            for k in 2..=4 {
                for offset in 0..k {
                    v.push(ConvApprox::Perforation { dim, k, offset });
                }
            }
        }
        v
    }

    /// Fraction of work *kept* by this approximation (1.0 for exact).
    ///
    /// Used by the §3.4 performance model: the compute reduction factor is
    /// `1 / kept_fraction`.
    pub fn kept_fraction(&self) -> f64 {
        match *self {
            ConvApprox::Exact => 1.0,
            ConvApprox::FilterSampling { k, .. } | ConvApprox::Perforation { k, .. } => {
                (k as f64 - 1.0) / k as f64
            }
        }
    }
}

/// Multiplier-level approximation applied to GEMM-shaped ops (convolution
/// and dense layers).
///
/// `Lut { bits }` emulates a hardware approximate multiplier (Mitchell's
/// logarithmic multiplier) over operands symmetric-quantised to signed
/// `bits`-bit integers, served from a precomputed lookup table
/// ([`crate::lut`]) — the AdaPT knob family. Like FP16, the *semantics* are
/// hardware-independent (the LUT defines them exactly); the speed/energy
/// benefit is modelled by `at-hw`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MulApprox {
    /// Exact f32 multiplication.
    Exact,
    /// LUT-emulated approximate multiplier over `bits`-bit operands.
    Lut {
        /// Operand bitwidth (2..=8).
        bits: u8,
    },
}

impl MulApprox {
    /// The registered LUT bitwidths, most to least accurate.
    pub const ALL_LUT: [MulApprox; 3] = [
        MulApprox::Lut { bits: 8 },
        MulApprox::Lut { bits: 6 },
        MulApprox::Lut { bits: 4 },
    ];

    /// Validates the bitwidth.
    pub fn validate(&self) -> Result<(), TensorError> {
        match *self {
            MulApprox::Exact => Ok(()),
            MulApprox::Lut { bits } => {
                if (crate::lut::MIN_BITS..=crate::lut::MAX_BITS).contains(&bits) {
                    Ok(())
                } else {
                    Err(TensorError::InvalidKnob {
                        op: "mul",
                        detail: format!(
                            "LUT multiplier bitwidth {bits} outside {}..={}",
                            crate::lut::MIN_BITS,
                            crate::lut::MAX_BITS
                        ),
                    })
                }
            }
        }
    }

    /// The operand bitwidth (`None` for exact).
    pub fn bits(&self) -> Option<u8> {
        match *self {
            MulApprox::Exact => None,
            MulApprox::Lut { bits } => Some(bits),
        }
    }

    /// Whether this is the exact multiplier.
    pub fn is_exact(&self) -> bool {
        *self == MulApprox::Exact
    }
}

/// Algorithmic approximation applied to a reduction (paper: 3 sampling
/// ratios — 50%, 40% and 25% of the inputs are used).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReduceApprox {
    /// Use every input.
    Exact,
    /// Use `num`-out-of-every-`den` inputs, rescaling scale-sensitive
    /// reductions (sum/mean/product) accordingly.
    Sampling {
        /// Numerator of the kept fraction.
        num: usize,
        /// Denominator of the kept fraction.
        den: usize,
    },
}

impl ReduceApprox {
    /// 50% sampling (1 of 2).
    pub const HALF: ReduceApprox = ReduceApprox::Sampling { num: 1, den: 2 };
    /// 40% sampling (2 of 5).
    pub const FORTY: ReduceApprox = ReduceApprox::Sampling { num: 2, den: 5 };
    /// 25% sampling (1 of 4).
    pub const QUARTER: ReduceApprox = ReduceApprox::Sampling { num: 1, den: 4 };

    /// The paper's three sampling ratios, most to least accurate.
    pub const ALL_SAMPLING: [ReduceApprox; 3] = [
        ReduceApprox::HALF,
        ReduceApprox::FORTY,
        ReduceApprox::QUARTER,
    ];

    /// Validates the ratio.
    pub fn validate(&self) -> Result<(), TensorError> {
        match *self {
            ReduceApprox::Exact => Ok(()),
            ReduceApprox::Sampling { num, den } => {
                if num == 0 || den == 0 || num >= den {
                    Err(TensorError::InvalidKnob {
                        op: "reduce",
                        detail: format!("sampling ratio {num}/{den} not a proper fraction"),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Fraction of inputs used.
    pub fn kept_fraction(&self) -> f64 {
        match *self {
            ReduceApprox::Exact => 1.0,
            ReduceApprox::Sampling { num, den } => num as f64 / den as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerations_match_paper_counts() {
        assert_eq!(ConvApprox::all_filter_sampling().len(), 9);
        assert_eq!(ConvApprox::all_perforation().len(), 18);
        assert_eq!(ReduceApprox::ALL_SAMPLING.len(), 3);
    }

    #[test]
    fn validation() {
        assert!(ConvApprox::FilterSampling { k: 2, offset: 0 }
            .validate()
            .is_ok());
        assert!(ConvApprox::FilterSampling { k: 5, offset: 0 }
            .validate()
            .is_err());
        assert!(ConvApprox::FilterSampling { k: 3, offset: 3 }
            .validate()
            .is_err());
        assert!(ReduceApprox::Sampling { num: 2, den: 2 }
            .validate()
            .is_err());
        assert!(ReduceApprox::FORTY.validate().is_ok());
    }

    #[test]
    fn kept_fractions() {
        assert_eq!(ConvApprox::Exact.kept_fraction(), 1.0);
        assert_eq!(
            ConvApprox::FilterSampling { k: 2, offset: 0 }.kept_fraction(),
            0.5
        );
        assert!((ReduceApprox::FORTY.kept_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_settings_validate() {
        for a in ConvApprox::all_filter_sampling()
            .into_iter()
            .chain(ConvApprox::all_perforation())
        {
            a.validate().unwrap();
        }
        for m in MulApprox::ALL_LUT {
            m.validate().unwrap();
        }
    }

    #[test]
    fn mul_approx_bounds() {
        assert!(MulApprox::Exact.validate().is_ok());
        assert!(MulApprox::Lut { bits: 8 }.validate().is_ok());
        assert!(MulApprox::Lut { bits: 1 }.validate().is_err());
        assert!(MulApprox::Lut { bits: 9 }.validate().is_err());
        assert_eq!(MulApprox::Lut { bits: 6 }.bits(), Some(6));
        assert!(MulApprox::Exact.is_exact());
    }
}
