//! Kernel instrumentation: a process-wide multiply counter.
//!
//! The skip-work tests for perforation and filter sampling need proof that
//! approximate kernels *execute* fewer multiplies than exact ones, not
//! merely that they discard results after computing them. Every GEMM panel
//! and LUT inner loop reports its multiply count here in bulk (one atomic
//! add per kernel invocation, so the counter costs nothing measurable even
//! on hot paths).
//!
//! The counter is global and relaxed: concurrent kernels from rayon workers
//! all add to it, and the total for a fixed workload is deterministic
//! because the amount of work is. Tests that read it must serialise the
//! workloads they count (run them inside a single `#[test]`, or take the
//! [`counting_lock`]) so unrelated kernels do not pollute the window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static MULS: AtomicU64 = AtomicU64::new(0);
static COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Adds `n` multiplies to the global counter (relaxed; call once per
/// kernel/panel, not per element).
#[inline]
pub fn add_muls(n: u64) {
    MULS.fetch_add(n, Ordering::Relaxed);
}

/// Current multiply count since process start (or the last [`reset_muls`]).
pub fn muls() -> u64 {
    MULS.load(Ordering::Relaxed)
}

/// Resets the multiply counter to zero.
pub fn reset_muls() {
    MULS.store(0, Ordering::Relaxed);
}

/// Serialises counting windows across tests in one process. Hold the guard
/// around `reset_muls`/workload/`muls` sequences.
pub fn counting_lock() -> std::sync::MutexGuard<'static, ()> {
    COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under the counting lock and returns (result, multiplies
/// executed by `f`).
pub fn count_muls<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let _guard = counting_lock();
    let before = muls();
    let out = f();
    (out, muls().saturating_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let (_, n) = count_muls(|| {
            add_muls(3);
            add_muls(4);
        });
        assert_eq!(n, 7);
        let _guard = counting_lock();
        reset_muls();
        assert_eq!(muls(), 0);
    }
}
