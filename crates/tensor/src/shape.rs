//! Shape algebra for NCHW tensors.
//!
//! Shapes are small (`rank <= 4` in every workload of the paper), so they
//! are stored inline in a fixed array to keep `Shape` `Copy` and free of
//! heap allocation — tensor metadata is touched on every kernel dispatch.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum tensor rank supported by the library (NCHW).
pub const MAX_RANK: usize = 4;

/// A tensor shape: up to [`MAX_RANK`] dimensions stored inline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Builds a shape from a slice of dimensions.
    ///
    /// # Panics
    /// Panics if `dims.len() > MAX_RANK`. Use the `TryFrom` conversion for a
    /// fallible variant.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut d = [1usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// 4-D NCHW constructor.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::new(&[n, c, h, w])
    }

    /// 2-D matrix constructor.
    pub fn mat(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols])
    }

    /// 1-D vector constructor.
    pub fn vec(len: usize) -> Self {
        Shape::new(&[len])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Dimension at `axis`, or an error if out of range.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        if axis < self.rank() {
            Ok(self.dims[axis])
        } else {
            Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
        }
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [1usize; MAX_RANK];
        let r = self.rank();
        for i in (0..r.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.dims[i + 1];
        }
        s
    }

    /// Flat index of a 4-D NCHW coordinate. Only valid for rank-4 shapes.
    #[inline(always)]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.rank(), 4);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Flat index of a 2-D coordinate. Only valid for rank-2 shapes.
    #[inline(always)]
    pub fn idx2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.rank(), 2);
        r * self.dims[1] + c
    }

    /// Interprets the shape as NCHW, returning `(n, c, h, w)`.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize), TensorError> {
        if self.rank() == 4 {
            Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
        } else {
            Err(TensorError::ShapeMismatch {
                op: "as_nchw",
                detail: format!("expected rank 4, got {self}"),
            })
        }
    }

    /// Interprets the shape as a matrix, returning `(rows, cols)`.
    pub fn as_mat(&self) -> Result<(usize, usize), TensorError> {
        if self.rank() == 2 {
            Ok((self.dims[0], self.dims[1]))
        } else {
            Err(TensorError::ShapeMismatch {
                op: "as_mat",
                detail: format!("expected rank 2, got {self}"),
            })
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Output spatial size of a convolution/pooling window along one axis.
///
/// `input` elements, window of `kernel`, symmetric padding `pad`, `stride`.
pub fn conv_out_dim(input: usize, kernel: usize, pad: usize, stride: usize) -> usize {
    debug_assert!(stride > 0);
    (input + 2 * pad).saturating_sub(kernel) / stride + 1
}

/// Full output shape of a 2-D convolution in NCHW layout.
///
/// `input` is `[N, C, H, W]`, `weight` is `[K, C, R, S]`.
pub fn conv2d_out_shape(
    input: Shape,
    weight: Shape,
    pad: (usize, usize),
    stride: (usize, usize),
) -> Result<Shape, TensorError> {
    let (n, c, h, w) = input.as_nchw()?;
    let (k, wc, r, s) = weight.as_nchw()?;
    if c != wc {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!("input channels {c} != weight channels {wc}"),
        });
    }
    if r > h + 2 * pad.0 || s > w + 2 * pad.1 {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            detail: format!("kernel {r}x{s} larger than padded input {h}x{w} (pad {pad:?})"),
        });
    }
    Ok(Shape::nchw(
        n,
        k,
        conv_out_dim(h, r, pad.0, stride.0),
        conv_out_dim(w, s, pad.1, stride.1),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        let st = s.strides();
        assert_eq!(&st[..4], &[60, 20, 5, 1]);
        assert_eq!(s.idx4(1, 2, 3, 4), 60 + 40 + 15 + 4);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::mat(7, 9).to_string(), "[7x9]");
    }

    #[test]
    fn conv_shape() {
        // 3x3 conv, pad 1, stride 1 preserves spatial dims.
        let out = conv2d_out_shape(
            Shape::nchw(1, 3, 32, 32),
            Shape::nchw(16, 3, 3, 3),
            (1, 1),
            (1, 1),
        )
        .unwrap();
        assert_eq!(out, Shape::nchw(1, 16, 32, 32));
        // stride 2 halves.
        let out = conv2d_out_shape(
            Shape::nchw(1, 3, 32, 32),
            Shape::nchw(16, 3, 3, 3),
            (1, 1),
            (2, 2),
        )
        .unwrap();
        assert_eq!(out, Shape::nchw(1, 16, 16, 16));
    }

    #[test]
    fn conv_shape_channel_mismatch() {
        let err = conv2d_out_shape(
            Shape::nchw(1, 3, 8, 8),
            Shape::nchw(4, 5, 3, 3),
            (0, 0),
            (1, 1),
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn axis_out_of_range() {
        let s = Shape::mat(2, 2);
        assert!(s.dim(1).is_ok());
        assert!(matches!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        ));
    }
}
