//! Micro-probe for the ABFT verification overhead: times the 512³ f32
//! GEMM and its column-checksum verification back to back, interleaved,
//! and reports the per-iteration minimum of each (minimum, not mean — the
//! machine this grows on is a noisy single-core box and the floor is the
//! only stable statistic). Run with
//! `cargo run --release -p at-tensor --example prof_abft`.

use std::time::Instant;

fn main() {
    let n = 512usize;
    let a: Vec<f32> = (0..n * n)
        .map(|i| ((i * 2654435761usize) as f32 / u32::MAX as f32) - 0.5)
        .collect();
    let b: Vec<f32> = (0..n * n)
        .map(|i| ((i * 40503usize) as f32 / u32::MAX as f32) - 0.5)
        .collect();
    let mut c = vec![0.0f32; n * n];
    let tol = at_tensor::ops::AbftTol::exact(n, n, n);
    use at_tensor::ops::gemm::{gemm_f32, Epilogue};
    gemm_f32(n, n, n, &a, &b, &mut c, &Epilogue::Raw);
    at_tensor::ops::verify_gemm_f32(n, n, n, &a, &b, &c, &tol).unwrap();

    let (mut best_g, mut best_v) = (f64::MAX, f64::MAX);
    for _ in 0..12 {
        let t0 = Instant::now();
        gemm_f32(n, n, n, &a, &b, &mut c, &Epilogue::Raw);
        best_g = best_g.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        at_tensor::ops::verify_gemm_f32(n, n, n, &a, &b, &c, &tol).unwrap();
        best_v = best_v.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "gemm:   {:.3}ms\nverify: {:.3}ms  ({:.1}% of gemm)",
        best_g * 1e3,
        best_v * 1e3,
        100.0 * best_v / best_g
    );
}
