//! Property-based tests for the tensor substrate.

use at_tensor::ops::conv::Conv2dParams;
use at_tensor::ops::{conv2d, reduce, ReduceKind};
use at_tensor::{f16, ConvApprox, PerforationDim, Precision, ReduceApprox, Shape, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Stay well inside fp16's normal range so quantisation properties hold.
    (-1000.0f32..1000.0f32).prop_filter("nonzero-ish", |x| x.abs() > 1e-3)
}

proptest! {
    #[test]
    fn f16_quantisation_idempotent(x in finite_f32()) {
        let q = f16::quantize(x);
        prop_assert_eq!(f16::quantize(q), q);
    }

    #[test]
    fn f16_relative_error_bounded(x in finite_f32()) {
        let q = f16::quantize(x);
        let rel = ((q - x) / x).abs();
        prop_assert!(rel <= 2.0f32.powi(-11), "x={} q={} rel={}", x, q, rel);
    }

    #[test]
    fn f16_preserves_sign_and_order(a in finite_f32(), b in finite_f32()) {
        prop_assert_eq!(f16::quantize(a).signum(), a.signum());
        // Quantisation is monotone.
        if a <= b {
            prop_assert!(f16::quantize(a) <= f16::quantize(b));
        }
    }

    #[test]
    fn shape_volume_is_product(dims in proptest::collection::vec(1usize..8, 1..=4)) {
        let s = Shape::new(&dims);
        prop_assert_eq!(s.volume(), dims.iter().product::<usize>());
        prop_assert_eq!(s.rank(), dims.len());
    }

    #[test]
    fn conv_exact_is_linear_in_input(
        seed in 0u64..1000,
        scale in 0.1f32..4.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::uniform(Shape::nchw(1, 2, 6, 6), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(2, 2, 3, 3), -1.0, 1.0, &mut rng);
        let y1 = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        let mut xs = x.clone();
        xs.scale(scale);
        let y2 = conv2d(&xs, &w, None, Conv2dParams::default()).unwrap();
        let mut y1s = y1.clone();
        y1s.scale(scale);
        let mse = y1s.mse(&y2).unwrap();
        prop_assert!(mse < 1e-6, "conv not linear: mse {}", mse);
    }

    #[test]
    fn perforation_preserves_output_shape(
        k in 2usize..=4,
        offset_seed in 0usize..4,
        row in proptest::bool::ANY,
    ) {
        let offset = offset_seed % k;
        let dim = if row { PerforationDim::Row } else { PerforationDim::Col };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::uniform(Shape::nchw(1, 1, 9, 9), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(2, 1, 3, 3), -1.0, 1.0, &mut rng);
        let exact = conv2d(&x, &w, None, Conv2dParams { pad: (1, 1), ..Default::default() }).unwrap();
        let perf = conv2d(&x, &w, None, Conv2dParams {
            pad: (1, 1),
            approx: ConvApprox::Perforation { dim, k, offset },
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(exact.shape(), perf.shape());
        // All outputs finite.
        prop_assert!(perf.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn filter_sampling_preserves_shape_and_finiteness(
        k in 2usize..=4,
        offset_seed in 0usize..4,
    ) {
        let offset = offset_seed % k;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = Tensor::uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(Shape::nchw(4, 3, 3, 3), -1.0, 1.0, &mut rng);
        let exact = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        let samp = conv2d(&x, &w, None, Conv2dParams {
            approx: ConvApprox::FilterSampling { k, offset },
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(exact.shape(), samp.shape());
        prop_assert!(samp.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sampled_mean_within_bounds(
        data in proptest::collection::vec(-100.0f32..100.0, 10..200),
    ) {
        let t = Tensor::from_vec(Shape::vec(data.len()), data.clone()).unwrap();
        let lo = data.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for approx in ReduceApprox::ALL_SAMPLING {
            let m = reduce(&t, 0, ReduceKind::Mean, approx, Precision::Fp32).unwrap();
            prop_assert!(m.data()[0] >= lo - 1e-4 && m.data()[0] <= hi + 1e-4,
                "sampled mean {} outside [{}, {}]", m.data()[0], lo, hi);
        }
    }

    #[test]
    fn sampled_max_never_exceeds_exact(
        data in proptest::collection::vec(-100.0f32..100.0, 8..100),
    ) {
        let t = Tensor::from_vec(Shape::vec(data.len()), data).unwrap();
        let exact = reduce(&t, 0, ReduceKind::Max, ReduceApprox::Exact, Precision::Fp32).unwrap();
        for approx in ReduceApprox::ALL_SAMPLING {
            let m = reduce(&t, 0, ReduceKind::Max, approx, Precision::Fp32).unwrap();
            prop_assert!(m.data()[0] <= exact.data()[0]);
        }
    }

    #[test]
    fn mse_is_a_metric_core(
        a in proptest::collection::vec(-10.0f32..10.0, 16),
        b in proptest::collection::vec(-10.0f32..10.0, 16),
    ) {
        let ta = Tensor::from_vec(Shape::vec(16), a).unwrap();
        let tb = Tensor::from_vec(Shape::vec(16), b).unwrap();
        prop_assert!(ta.mse(&tb).unwrap() >= 0.0);
        prop_assert_eq!(ta.mse(&ta).unwrap(), 0.0);
        // Symmetry.
        prop_assert!((ta.mse(&tb).unwrap() - tb.mse(&ta).unwrap()).abs() < 1e-12);
    }
}
