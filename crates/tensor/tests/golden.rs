//! Golden regression tests: pinned output checksums per knob family.
//!
//! Every kernel here is bit-deterministic (fixed accumulation order for
//! floats, integer accumulation for LUT paths), so a single FNV-1a hash of
//! the output bit patterns pins the *entire* numerical behaviour of a knob
//! family. Any change to accumulation order, epilogue placement, rounding,
//! or table contents shows up as a checksum mismatch — including changes
//! that drift the kernel and the naive oracle together, which the
//! differential suite alone cannot see.
//!
//! If a checksum changes *intentionally* (e.g. a deliberate semantics fix),
//! re-pin it and say why in the commit.

use at_tensor::ops::conv::Conv2dParams;
use at_tensor::ops::{conv2d, conv2d_abft, matmul_abft, matmul_ex};
use at_tensor::{ConvApprox, MulApprox, PerforationDim, Precision, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(shape, -1.0, 1.0, &mut rng)
}

/// FNV-1a over the little-endian output bit patterns.
fn checksum(t: &Tensor) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in t.data() {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn conv_out(approx: ConvApprox, precision: Precision, mul: MulApprox) -> Tensor {
    let x = tensor(Shape::nchw(1, 3, 8, 9), 123);
    let w = tensor(Shape::nchw(4, 3, 3, 3), 124);
    let b = tensor(Shape::new(&[4]), 125);
    conv2d(
        &x,
        &w,
        Some(&b),
        Conv2dParams {
            pad: (1, 1),
            stride: (1, 1),
            groups: 1,
            approx,
            precision,
            mul,
        },
    )
    .unwrap()
}

fn matmul_out(precision: Precision, mul: MulApprox) -> Tensor {
    let a = tensor(Shape::mat(7, 13), 126);
    let b = tensor(Shape::mat(13, 9), 127);
    let bias = tensor(Shape::new(&[9]), 128);
    matmul_ex(&a, &b, Some(&bias), precision, mul).unwrap()
}

#[test]
fn golden_checksums_per_knob_family() {
    use ConvApprox::{Exact, FilterSampling, Perforation};
    use MulApprox::Lut;
    use PerforationDim::{Col, Row};
    use Precision::{Fp16, Fp32};

    let cases: Vec<(&str, Tensor, u64)> = vec![
        (
            "conv-exact-fp32",
            conv_out(Exact, Fp32, MulApprox::Exact),
            0xdbd011d3fc864330,
        ),
        (
            "conv-exact-fp16",
            conv_out(Exact, Fp16, MulApprox::Exact),
            0x001a1125f4beffd8,
        ),
        (
            "conv-samp-50-o0",
            conv_out(FilterSampling { k: 2, offset: 0 }, Fp32, MulApprox::Exact),
            0x4319c08f581fd146,
        ),
        (
            "conv-perf-row-50-o0",
            conv_out(
                Perforation {
                    dim: Row,
                    k: 2,
                    offset: 0,
                },
                Fp32,
                MulApprox::Exact,
            ),
            0x3eeaaa5ffe080dad,
        ),
        (
            "conv-perf-col-33-o1-fp16",
            conv_out(
                Perforation {
                    dim: Col,
                    k: 3,
                    offset: 1,
                },
                Fp16,
                MulApprox::Exact,
            ),
            0xbfb096b0fb182439,
        ),
        (
            "conv-lutmul-8b",
            conv_out(Exact, Fp32, Lut { bits: 8 }),
            0x49cf8dc7df385290,
        ),
        (
            "conv-lutmul-6b",
            conv_out(Exact, Fp32, Lut { bits: 6 }),
            0xd7ebe67a7371a710,
        ),
        (
            "conv-lutmul-4b",
            conv_out(Exact, Fp32, Lut { bits: 4 }),
            0xa82cd7c392698110,
        ),
        (
            "matmul-exact-fp32",
            matmul_out(Fp32, MulApprox::Exact),
            0x09e61479f654c555,
        ),
        (
            "matmul-exact-fp16",
            matmul_out(Fp16, MulApprox::Exact),
            0xf62fcda1838c34ea,
        ),
        (
            "matmul-lutmul-8b",
            matmul_out(Fp32, Lut { bits: 8 }),
            0x27e41ce146a000b9,
        ),
    ];

    let mut mismatches = Vec::new();
    for (name, out, pinned) in &cases {
        let got = checksum(out);
        if got != *pinned {
            mismatches.push(format!("(\"{name}\", 0x{got:016x})"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden checksum mismatches — if intentional, re-pin:\n{}",
        mismatches.join("\n")
    );
}

/// The ABFT-verified kernels must be *bit-identical* to the unverified
/// ones — verification reads operands and output but never rewrites the
/// result — so they pin to the very same golden checksums as above. A
/// mismatch here means the checksummed path changed the numerics, which
/// would silently invalidate every tradeoff curve shipped for the
/// unverified kernels.
#[test]
fn abft_kernels_pin_to_the_same_golden_checksums() {
    let x = tensor(Shape::nchw(1, 3, 8, 9), 123);
    let w = tensor(Shape::nchw(4, 3, 3, 3), 124);
    let cb = tensor(Shape::new(&[4]), 125);
    let conv = conv2d_abft(
        &x,
        &w,
        Some(&cb),
        Conv2dParams {
            pad: (1, 1),
            stride: (1, 1),
            groups: 1,
            approx: ConvApprox::Exact,
            precision: Precision::Fp32,
            mul: MulApprox::Exact,
        },
    )
    .unwrap();
    assert_eq!(
        checksum(&conv),
        0xdbd011d3fc864330,
        "conv2d_abft must match the pinned conv-exact-fp32 checksum"
    );

    let a = tensor(Shape::mat(7, 13), 126);
    let b = tensor(Shape::mat(13, 9), 127);
    let bias = tensor(Shape::new(&[9]), 128);
    let mm = matmul_abft(&a, &b, Some(&bias), Precision::Fp32, MulApprox::Exact).unwrap();
    assert_eq!(
        checksum(&mm),
        0x09e61479f654c555,
        "matmul_abft must match the pinned matmul-exact-fp32 checksum"
    );

    let mm_lut = matmul_abft(
        &a,
        &b,
        Some(&bias),
        Precision::Fp32,
        MulApprox::Lut { bits: 8 },
    )
    .unwrap();
    assert_eq!(
        checksum(&mm_lut),
        0x27e41ce146a000b9,
        "matmul_abft must match the pinned matmul-lutmul-8b checksum"
    );
}
