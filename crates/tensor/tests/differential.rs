//! Differential kernel test harness.
//!
//! The optimized tiled/SIMD kernels (`ops::matmul_ex`, `ops::conv2d` via
//! im2col+GEMM) are checked against the frozen naive oracle in
//! `ops::reference` under proptest-fuzzed shapes and knob settings:
//!
//! * exact FP32 paths must match the oracle **bit for bit** — the fast
//!   kernels accumulate every output element in the same strictly
//!   increasing-k order as the naive loops;
//! * approximate paths (FP16, filter sampling, perforation, LUT
//!   multipliers) must also match the oracle bitwise, *and* stay inside
//!   pinned error envelopes relative to the exact FP32 result — so a bug
//!   that drifts oracle and kernel together still trips the harness;
//! * results must be identical across rayon thread counts (1/2/4), since
//!   partitioning never splits one output element's accumulation chain.

use at_tensor::ops::conv::Conv2dParams;
use at_tensor::ops::{conv2d, matmul_ex, reference};
use at_tensor::{ConvApprox, MulApprox, PerforationDim, Precision, Shape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(shape, -1.0, 1.0, &mut rng)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Mean squared error normalised by the exact result's mean square, so the
/// envelope is scale-free.
fn rel_mse(approx: &Tensor, exact: &Tensor) -> f64 {
    let ms: f64 = exact
        .data()
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        / exact.data().len().max(1) as f64;
    approx.mse(exact).unwrap() / ms.max(1e-30)
}

/// A fuzzed conv setting: shape, padding/stride, grouping.
#[derive(Debug, Clone)]
struct ConvCase {
    n: usize,
    groups: usize,
    cpg: usize,
    kpg: usize,
    h: usize,
    w: usize,
    r: usize,
    s: usize,
    pad: (usize, usize),
    stride: (usize, usize),
    seed: u64,
}

impl ConvCase {
    fn tensors(&self) -> (Tensor, Tensor, Tensor) {
        let cin = self.groups * self.cpg;
        let k = self.groups * self.kpg;
        let x = tensor(Shape::nchw(self.n, cin, self.h, self.w), self.seed);
        let wt = tensor(Shape::nchw(k, self.cpg, self.r, self.s), self.seed ^ 0xABCD);
        let b = tensor(Shape::new(&[k]), self.seed ^ 0x1234);
        (x, wt, b)
    }

    fn params(&self, approx: ConvApprox, precision: Precision, mul: MulApprox) -> Conv2dParams {
        Conv2dParams {
            pad: self.pad,
            stride: self.stride,
            groups: self.groups,
            approx,
            precision,
            mul,
        }
    }
}

fn conv_case() -> impl Strategy<Value = ConvCase> {
    (
        (1usize..=2, 1usize..=3, 1usize..=3, 1usize..=3), // n, groups, cpg, kpg
        // h; w crosses the 8-wide SIMD panel boundary; r/s kernel extents.
        (1usize..=9, 1usize..=11, 1usize..=3, 1usize..=3),
        (
            (0usize..=2, 0usize..=2),
            (1usize..=2, 1usize..=3),
            0u64..1000,
        ),
    )
        .prop_map(
            |((n, groups, cpg, kpg), (h, w, r, s), (pad, stride, seed))| ConvCase {
                n,
                groups,
                cpg,
                kpg,
                h,
                w,
                r,
                s,
                pad,
                stride,
                seed,
            },
        )
        // The kernel must fit the padded input.
        .prop_filter("kernel fits", |c| {
            c.h + 2 * c.pad.0 >= c.r && c.w + 2 * c.pad.1 >= c.s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact FP32 matmul: bit-for-bit against the naive oracle, across
    /// shapes that straddle every panel boundary (scalar tail, 8-wide,
    /// 64-wide, and the 8-row rayon blocks).
    #[test]
    fn matmul_fp32_bitwise(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        let a = tensor(Shape::mat(m, k), seed);
        let b = tensor(Shape::mat(k, n), seed ^ 0x55);
        let fast = matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Exact).unwrap();
        let naive = reference::matmul_reference(&a, &b, Precision::Fp32).unwrap();
        prop_assert_eq!(bits(&fast), bits(&naive));
    }

    /// FP16 matmul: bitwise against the oracle, and inside the pinned
    /// quality envelope vs exact FP32 (operand+output quantisation at
    /// 2^-11 relative error each).
    #[test]
    fn matmul_fp16_bitwise_and_enveloped(
        m in 1usize..16,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = tensor(Shape::mat(m, k), seed);
        let b = tensor(Shape::mat(k, n), seed ^ 0x55);
        let fast = matmul_ex(&a, &b, None, Precision::Fp16, MulApprox::Exact).unwrap();
        let naive = reference::matmul_reference(&a, &b, Precision::Fp16).unwrap();
        prop_assert_eq!(bits(&fast), bits(&naive));
        let exact = reference::matmul_reference(&a, &b, Precision::Fp32).unwrap();
        let e = rel_mse(&fast, &exact);
        prop_assert!(e < 1e-4, "fp16 rel MSE {} out of envelope", e);
    }

    /// LUT-multiplier matmul: bitwise against the oracle (integer
    /// accumulation is order-free, so this holds at any thread count) and
    /// inside a pinned envelope vs exact.
    #[test]
    fn matmul_lut_bitwise_and_enveloped(
        m in 1usize..12,
        k in 2usize..24,
        n in 1usize..24,
        bits_w in proptest::sample::select(vec![8u8, 6, 4]),
        seed in 0u64..1000,
    ) {
        let a = tensor(Shape::mat(m, k), seed);
        let b = tensor(Shape::mat(k, n), seed ^ 0x55);
        let mul = MulApprox::Lut { bits: bits_w };
        let fast = matmul_ex(&a, &b, None, Precision::Fp32, mul).unwrap();
        let naive = reference::matmul_ex_reference(&a, &b, None, Precision::Fp32, mul).unwrap();
        prop_assert_eq!(bits(&fast), bits(&naive));
        let exact = reference::matmul_reference(&a, &b, Precision::Fp32).unwrap();
        let e = rel_mse(&fast, &exact);
        // 4-bit quantisation plus Mitchell bias is coarse but must never be
        // garbage; 8-bit stays much tighter.
        let cap = if bits_w == 8 { 0.3 } else { 2.0 };
        prop_assert!(e.is_finite() && e < cap, "lut{} rel MSE {}", bits_w, e);
    }

    /// Exact FP32 conv (arbitrary stride/padding/groups, including
    /// depthwise when groups == cin): bit-for-bit against the oracle.
    #[test]
    fn conv_fp32_bitwise(case in conv_case()) {
        let (x, w, b) = case.tensors();
        let p = case.params(ConvApprox::Exact, Precision::Fp32, MulApprox::Exact);
        let fast = conv2d(&x, &w, Some(&b), p).unwrap();
        let naive = reference::conv2d_reference(&x, &w, Some(&b), p).unwrap();
        prop_assert_eq!(bits(&fast), bits(&naive));
    }

    /// Approximate conv paths: every fuzzed case is checked bitwise against
    /// the oracle and against pinned envelopes vs the exact result.
    #[test]
    fn conv_approx_bitwise_and_enveloped(
        case in conv_case(),
        which in 0usize..4,
    ) {
        let (x, w, b) = case.tensors();
        let exact_p = case.params(ConvApprox::Exact, Precision::Fp32, MulApprox::Exact);
        let exact = conv2d(&x, &w, Some(&b), exact_p).unwrap();
        let (approx, precision, mul, cap) = match which {
            0 => (ConvApprox::Exact, Precision::Fp16, MulApprox::Exact, 1e-4),
            1 => (
                ConvApprox::FilterSampling { k: 2, offset: 0 },
                Precision::Fp32,
                MulApprox::Exact,
                4.0,
            ),
            2 => (
                ConvApprox::Perforation { dim: PerforationDim::Col, k: 2, offset: 0 },
                Precision::Fp32,
                MulApprox::Exact,
                4.0,
            ),
            _ => (ConvApprox::Exact, Precision::Fp32, MulApprox::Lut { bits: 8 }, 0.5),
        };
        let p = case.params(approx, precision, mul);
        if let Ok(fast) = conv2d(&x, &w, Some(&b), p) {
            let naive = reference::conv2d_reference(&x, &w, Some(&b), p).unwrap();
            prop_assert_eq!(bits(&fast), bits(&naive));
            let e = rel_mse(&fast, &exact);
            prop_assert!(e.is_finite() && e < cap, "{:?} rel MSE {}", p.approx, e);
        } else {
            // Knob invalid for this shape (e.g. sampling a 1x1 kernel);
            // the oracle must reject it identically.
            prop_assert!(reference::conv2d_reference(&x, &w, Some(&b), p).is_err());
        }
    }
}

/// Degenerate shapes the tiling must survive: 1×1 kernels, K=1 reduction,
/// widths below one SIMD lane-group, single-pixel planes.
#[test]
fn degenerate_shapes_bitwise() {
    let cases = [
        (1, 1, 1, 1, 1, 1, 1), // everything 1
        (1, 1, 3, 3, 1, 1, 1), // 1x1 kernel
        (2, 3, 5, 6, 2, 3, 3), // W < 8 (sub-lane width)
        (1, 2, 1, 9, 1, 1, 1), // single-row input
    ];
    for &(n, c, h, w, k, r, s) in &cases {
        let x = tensor(Shape::nchw(n, c, h, w), 42);
        let wt = tensor(Shape::nchw(k, c, r, s), 43);
        let p = Conv2dParams::default();
        let fast = conv2d(&x, &wt, None, p).unwrap();
        let naive = reference::conv2d_reference(&x, &wt, None, p).unwrap();
        assert_eq!(
            bits(&fast),
            bits(&naive),
            "case {n}x{c}x{h}x{w} k{k} {r}x{s}"
        );
    }
    // K=1 matmul (single reduction step) and 1-wide output.
    for (m, k, n) in [(5, 1, 7), (1, 9, 1), (8, 8, 1)] {
        let a = tensor(Shape::mat(m, k), 7);
        let b = tensor(Shape::mat(k, n), 8);
        let fast = matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Exact).unwrap();
        let naive = reference::matmul_reference(&a, &b, Precision::Fp32).unwrap();
        assert_eq!(bits(&fast), bits(&naive), "matmul {m}x{k}x{n}");
    }
}

/// The kernels must produce identical bits no matter how many rayon worker
/// partitions execute them: partitioning is by whole output rows/planes, so
/// no accumulation chain is ever split.
#[test]
fn deterministic_across_thread_counts() {
    let a = tensor(Shape::mat(37, 19), 11);
    let b = tensor(Shape::mat(19, 71), 12);
    let x = tensor(Shape::nchw(2, 3, 13, 17), 13);
    let w = tensor(Shape::nchw(4, 3, 3, 3), 14);
    let params = [
        Conv2dParams::default(),
        Conv2dParams {
            approx: ConvApprox::Perforation {
                dim: PerforationDim::Row,
                k: 2,
                offset: 0,
            },
            ..Default::default()
        },
        Conv2dParams {
            precision: Precision::Fp16,
            ..Default::default()
        },
        Conv2dParams {
            mul: MulApprox::Lut { bits: 6 },
            ..Default::default()
        },
    ];
    let run = || {
        let mm = matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Exact).unwrap();
        let convs: Vec<Vec<u32>> = params
            .iter()
            .map(|&p| bits(&conv2d(&x, &w, None, p).unwrap()))
            .collect();
        (bits(&mm), convs)
    };
    let reference_run = run();
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(run);
        assert_eq!(got, reference_run, "results differ at {threads} threads");
    }
}
