//! Skip-work proof: approximation must *avoid* work, not discard results.
//!
//! Perforation and filter sampling are lowered by pruning the im2col GEMM's
//! columns/rows before the multiply loops run, so the skipped products are
//! never computed. This test proves it two ways with the process-wide
//! multiply counter and wall-clock timing:
//!
//! 1. the counted multiplies of the approximate kernels are strictly below
//!    the exact kernel's (and close to the analytical fraction);
//! 2. k=2 column perforation is measurably faster than the exact kernel on
//!    the same shape (median over repetitions).
//!
//! Everything runs inside one `#[test]` so the global counter windows and
//! the timing comparison cannot interleave with other tests.

use at_tensor::ops::conv::Conv2dParams;
use at_tensor::ops::conv2d;
use at_tensor::{instrument, ConvApprox, PerforationDim, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn median_time_s(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[test]
fn approximations_execute_fewer_multiplies_and_run_faster() {
    let mut rng = StdRng::seed_from_u64(99);
    let x = Tensor::uniform(Shape::nchw(1, 16, 64, 64), -1.0, 1.0, &mut rng);
    let w = Tensor::uniform(Shape::nchw(32, 16, 3, 3), -1.0, 1.0, &mut rng);
    let params = |approx| Conv2dParams {
        pad: (1, 1),
        approx,
        ..Default::default()
    };

    // --- 1. multiply counting -------------------------------------------
    let (_, exact_muls) = instrument::count_muls(|| {
        conv2d(&x, &w, None, params(ConvApprox::Exact)).unwrap();
    });
    assert!(exact_muls > 0, "exact kernel reported no multiplies");

    let perf_col = ConvApprox::Perforation {
        dim: PerforationDim::Col,
        k: 2,
        offset: 0,
    };
    let (_, perf_muls) = instrument::count_muls(|| {
        conv2d(&x, &w, None, params(perf_col)).unwrap();
    });
    assert!(
        perf_muls < exact_muls,
        "perforation must skip multiplies: {perf_muls} vs {exact_muls}"
    );
    // k=2 keeps ~half the output columns; allow slack for odd widths.
    let frac = perf_muls as f64 / exact_muls as f64;
    assert!(
        (0.4..0.6).contains(&frac),
        "perforated multiply fraction {frac} far from 1/2"
    );

    let samp = ConvApprox::FilterSampling { k: 2, offset: 0 };
    let (_, samp_muls) = instrument::count_muls(|| {
        conv2d(&x, &w, None, params(samp)).unwrap();
    });
    assert!(
        samp_muls < exact_muls,
        "filter sampling must skip multiplies: {samp_muls} vs {exact_muls}"
    );
    let frac = samp_muls as f64 / exact_muls as f64;
    assert!(
        (0.4..0.6).contains(&frac),
        "sampled multiply fraction {frac} far from 1/2"
    );

    // Deeper perforation skips strictly more.
    let perf3 = ConvApprox::Perforation {
        dim: PerforationDim::Row,
        k: 3,
        offset: 0,
    };
    let (_, perf3_muls) = instrument::count_muls(|| {
        conv2d(&x, &w, None, params(perf3)).unwrap();
    });
    assert!(perf3_muls < exact_muls);

    // --- 2. wall-clock ---------------------------------------------------
    // Warm up once (rayon pool spawn, LUT-free path, page faults).
    conv2d(&x, &w, None, params(ConvApprox::Exact)).unwrap();
    let t_exact = median_time_s(5, || {
        conv2d(&x, &w, None, params(ConvApprox::Exact)).unwrap();
    });
    let t_perf = median_time_s(5, || {
        conv2d(&x, &w, None, params(perf_col)).unwrap();
    });
    let speedup = t_exact / t_perf;
    assert!(
        speedup > 1.05,
        "k=2 perforation should be measurably faster: exact {t_exact:.4}s, \
         perforated {t_perf:.4}s, speedup {speedup:.2}x"
    );
}
