//! Chaos campaign load test — the body of the `fleet_chaos` binary and the
//! writer of `BENCH_chaos.json`.
//!
//! Reuses the `serve_fleet` roster (six zoo tenants, one lying curve) and
//! the same mid-run rail brownout, then runs the QoS-aware
//! power-of-two-choices fleet twice over identical arrivals: a *baseline*
//! phase with no chaos, and a *campaign* phase where a seeded
//! [`ChaosPlan`] crashes replicas (warm-restarted from checkpoints), turns
//! others silently gray (router-side EWMA ejection must catch them), and
//! partitions the router from others with bounded message loss.
//!
//! The headline numbers are availability under chaos (on-time percentage
//! and its drop vs baseline), mean crash-to-first-completion recovery
//! time, and `requests_unaccounted` — which must be **zero**: every
//! arrival is served, faulted, stalled, or shed with a typed reason, even
//! while replicas die mid-request. A built-in self-check re-runs the
//! campaign under 1-thread and 8-thread rayon pools and asserts
//! bit-identical reports.
//!
//! Environment: `AT_BENCH_REQUESTS` (total arrival target, default
//! 1,200,000), `AT_BENCH_REPLICAS` (default 8), `AT_BENCH_SEED` (default
//! 7) — the legacy `AT_FLEET_*` names work as aliases (see [`crate::env`]).

use crate::report::{pct, write_bench_json, Table, RESULTS_SCHEMA_VERSION};
use crate::serve_fleet::{executors, roster};
use at_core::chaos::ChaosPlan;
use at_core::fleet::{run_fleet, FleetParams, FleetReport, RouterPolicy};
use at_core::serve::{RequestExecutor, ServeParams};
use at_hw::{DisturbedDevice, Scenario};

/// One phase (baseline or campaign) of the chaos bench.
#[derive(serde::Serialize)]
pub struct PhaseStats {
    phase: String,
    arrivals: usize,
    admitted: usize,
    on_time_pct: f64,
    shed_pct: f64,
    /// Requests shed as `ReplicaLost` (crash kills, crash-flush overflow,
    /// partition wire loss) — zero in the baseline phase.
    shed_replica_lost: usize,
    crashes: usize,
    gray_ejections: usize,
    partitions: usize,
    breaker_trips: usize,
    /// |arrivals − (admitted + shed)|; must be zero in every phase.
    requests_unaccounted: usize,
    /// Mean crash-to-first-completion time, seconds.
    mean_recovery_s: f64,
    mean_latency_ms: f64,
    p99_latency_ms: f64,
    /// Wall-clock seconds the simulation took (not simulated time).
    wall_s: f64,
    /// Simulated arrivals processed per wall-clock second.
    sim_rps: f64,
}

/// The whole `BENCH_chaos.json` artifact.
#[derive(serde::Serialize)]
pub struct Artifact {
    schema_version: u32,
    bench: String,
    replicas: usize,
    tenant_models: Vec<String>,
    requests_target: usize,
    seed: u64,
    scenario: String,
    horizon_s: f64,
    /// Chaos events drawn by the campaign: crashes, grays, partitions.
    planned_crashes: usize,
    planned_grays: usize,
    planned_partitions: usize,
    /// On-time percentage under the full campaign — the headline.
    availability_pct: f64,
    /// Baseline-phase on-time percentage minus the campaign's.
    availability_drop_pct: f64,
    /// Mean crash-to-first-completion time under the campaign, seconds.
    mean_recovery_s: f64,
    /// Campaign-phase accounting gap; the bin refuses to ship non-zero.
    requests_unaccounted: usize,
    /// 1-thread vs 8-thread rayon campaign reports compared byte-for-byte.
    bit_identical_across_threads: bool,
    phases: Vec<PhaseStats>,
}

fn phase_stats(phase: &str, report: &FleetReport, wall_s: f64) -> PhaseStats {
    PhaseStats {
        phase: phase.to_string(),
        arrivals: report.arrivals,
        admitted: report.admitted,
        on_time_pct: 100.0 * report.on_time_rate(),
        shed_pct: 100.0 * report.shed_rate(),
        shed_replica_lost: report.tenants.iter().map(|t| t.shed_replica_lost).sum(),
        crashes: report.crashes,
        gray_ejections: report.gray_ejections,
        partitions: report.partitions,
        breaker_trips: report.breaker_trips,
        requests_unaccounted: report.requests_unaccounted,
        mean_recovery_s: report.mean_recovery_s,
        mean_latency_ms: 1e3 * report.mean_latency_s,
        p99_latency_ms: 1e3 * report.p99_latency_s,
        wall_s,
        sim_rps: if wall_s > 0.0 {
            report.arrivals as f64 / wall_s
        } else {
            0.0
        },
    }
}

/// Builds the artifact: baseline and campaign phases over one roster and
/// disturbance timeline. Exposed (sized-down) to the schema corpus test.
pub fn build_artifact(requests_target: usize, replicas: usize, seed: u64) -> Artifact {
    let rate_scale = replicas as f64 / 8.0;
    let total_rate = 216.0 * rate_scale;
    let horizon_s = (requests_target as f64 / total_rate).max(1.0);
    let tenants = roster(horizon_s, rate_scale, seed);
    let execs = executors();
    let exec_refs: Vec<&dyn RequestExecutor> =
        execs.iter().map(|e| e as &dyn RequestExecutor).collect();
    let per_replica = requests_target / replicas.max(1);
    let device = DisturbedDevice::tx2(
        Scenario::brownout_storm(
            usize::MAX / 2,
            per_replica * 2 / 5,
            per_replica / 10,
            0.6,
            seed ^ 0xB10,
        )
        .with_invocations(usize::MAX / 2),
    );
    let campaign = ChaosPlan::campaign(
        seed ^ 0xC4A05,
        horizon_s,
        replicas,
        (replicas / 2).max(1),
        (replicas / 4).max(1),
        (replicas / 4).max(1),
    );
    let (planned_crashes, planned_grays, planned_partitions) = campaign.counts();
    let params_for = |chaos: &ChaosPlan| FleetParams {
        replicas,
        policy: RouterPolicy::PowerOfTwoChoices,
        serve: ServeParams {
            deadline_s: 0.25,
            queue_cap: 16,
            drain_fraction: 0.2,
            seed,
            ..ServeParams::default()
        },
        horizon_s,
        steal: true,
        route_seed: seed ^ 0xF1EE,
        chaos: chaos.clone(),
        ..FleetParams::default()
    };

    let mut table = Table::new(&[
        "phase", "arrivals", "on-time", "shed", "lost", "crashes", "ejects", "parts", "recov",
        "sim-rps",
    ]);
    let mut phases = Vec::new();
    for (name, chaos) in [("baseline", ChaosPlan::none()), ("campaign", campaign)] {
        let t0 = std::time::Instant::now();
        let report = run_fleet(&tenants, &exec_refs, &device, &params_for(&chaos));
        let wall_s = t0.elapsed().as_secs_f64();
        let stats = phase_stats(name, &report, wall_s);
        table.row(vec![
            stats.phase.clone(),
            stats.arrivals.to_string(),
            pct(stats.on_time_pct),
            pct(stats.shed_pct),
            stats.shed_replica_lost.to_string(),
            stats.crashes.to_string(),
            stats.gray_ejections.to_string(),
            stats.partitions.to_string(),
            format!("{:.2}s", stats.mean_recovery_s),
            format!("{:.0}", stats.sim_rps),
        ]);
        phases.push(stats);
    }
    table.print();

    // Determinism self-check: the chaotic phase — crashes, restarts,
    // ejections and all — must be byte-identical across thread counts.
    let chaos_again = ChaosPlan::campaign(
        seed ^ 0xC4A05,
        horizon_s,
        replicas,
        (replicas / 2).max(1),
        (replicas / 4).max(1),
        (replicas / 4).max(1),
    );
    let bit_identical = crate::report::bit_identical_across_threads(|| {
        run_fleet(&tenants, &exec_refs, &device, &params_for(&chaos_again)).to_json()
    });
    println!(
        "determinism: 1-thread vs 8-thread campaign reports {}",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let baseline_on_time = phases[0].on_time_pct;
    let campaign_phase = &phases[1];
    Artifact {
        schema_version: RESULTS_SCHEMA_VERSION,
        bench: "fleet_chaos".to_string(),
        replicas,
        tenant_models: tenants.iter().map(|t| t.name.clone()).collect(),
        requests_target,
        seed,
        scenario: device.scenario().name().to_string(),
        horizon_s,
        planned_crashes,
        planned_grays,
        planned_partitions,
        availability_pct: campaign_phase.on_time_pct,
        availability_drop_pct: baseline_on_time - campaign_phase.on_time_pct,
        mean_recovery_s: campaign_phase.mean_recovery_s,
        requests_unaccounted: campaign_phase.requests_unaccounted,
        bit_identical_across_threads: bit_identical,
        phases,
    }
}

/// Serialises an artifact for validation in tests.
pub fn artifact_value(artifact: &Artifact) -> serde::Value {
    serde_json::to_value(artifact)
}

/// Entry point of the `fleet_chaos` binary.
pub fn run() {
    let requests =
        crate::env::usize_var("AT_BENCH_REQUESTS", &["AT_FLEET_REQUESTS"], 1_200_000).max(1);
    let replicas = crate::env::usize_var("AT_BENCH_REPLICAS", &["AT_FLEET_REPLICAS"], 8).max(1);
    let seed = crate::env::u64_var("AT_BENCH_SEED", &["AT_FLEET_SEED"], 7);
    println!(
        "fleet_chaos: {replicas} replicas × 6 tenants, target {requests} requests, seed {seed}"
    );
    let artifact = build_artifact(requests, replicas, seed);
    for phase in &artifact.phases {
        assert_eq!(
            phase.requests_unaccounted, 0,
            "{} phase lost requests silently — accounting regression",
            phase.phase
        );
    }
    assert!(
        artifact.bit_identical_across_threads,
        "chaotic fleet report depends on thread count — determinism regression"
    );
    println!(
        "availability under chaos: {} (drop {} vs baseline), mean recovery {:.2}s",
        pct(artifact.availability_pct),
        pct(artifact.availability_drop_pct),
        artifact.mean_recovery_s
    );
    if !write_bench_json("chaos", &artifact) {
        std::process::exit(1);
    }
}
