//! Result formatting: fixed-width console tables plus JSON artifacts under
//! `results/` and `BENCH_*.json` perf reports at the repo root.
//!
//! Every artifact that leaves this module is validated *before* encoding:
//! the top level must be an object carrying an integer `schema_version`
//! (writers emitting bare arrays or unversioned objects are wrapped in a
//! `{"schema_version": N, "data": ...}` envelope), and every float in the
//! tree must be finite — JSON renders NaN/inf as `null`, which silently
//! corrupts downstream parsing, so the check runs on the [`Value`] tree
//! where non-finite floats are still observable. Invalid artifacts are
//! reported and *not* written.

use serde::Value;
use std::fmt::Write as _;

/// Schema version stamped into every `results/*.json` artifact, so
/// downstream tooling can detect layout changes instead of guessing from
/// field shapes. Bump when an artifact's structure changes incompatibly.
pub const RESULTS_SCHEMA_VERSION: u32 = 1;

/// Checks a decoded artifact against the report schema: the top level is
/// an object whose `schema_version` is an integer ≥ 1, and every numeric
/// field in the tree is finite. Runs on the pre-encoding [`Value`] tree,
/// where NaN/inf have not yet been flattened to `null`.
pub fn validate_artifact(value: &Value) -> Result<(), String> {
    let Some(pairs) = value.as_object() else {
        return Err("top level must be a JSON object".to_string());
    };
    let version = pairs.iter().find(|(k, _)| k == "schema_version");
    match version {
        None => return Err("missing schema_version".to_string()),
        Some((_, v)) => match v {
            Value::I64(i) if *i >= 1 => {}
            Value::U64(_) => {}
            other => {
                return Err(format!(
                    "schema_version must be a positive integer, got {other:?}"
                ))
            }
        },
    }
    check_finite(value, "$")
}

fn check_finite(value: &Value, path: &str) -> Result<(), String> {
    match value {
        Value::F64(f) if !f.is_finite() => Err(format!("non-finite number at {path}: {f}")),
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                check_finite(item, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        Value::Object(pairs) => {
            for (k, v) in pairs {
                check_finite(v, &format!("{path}.{k}"))?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Wraps a payload in the versioned envelope unless it already is a
/// schema-versioned object: bare arrays and unversioned objects become
/// `{"schema_version": RESULTS_SCHEMA_VERSION, "data": ...}`.
pub fn envelope(value: Value) -> Value {
    let versioned = value
        .as_object()
        .is_some_and(|pairs| pairs.iter().any(|(k, _)| k == "schema_version"));
    if versioned {
        value
    } else {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::U64(u64::from(RESULTS_SCHEMA_VERSION)),
            ),
            ("data".to_string(), value),
        ])
    }
}

/// A simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a pretty-printed JSON artifact under `results/`.
pub fn write_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    write_artifact(&dir.join(format!("{name}.json")), value, true);
}

/// Writes a compact (single-line) JSON artifact under `results/` — for
/// artifacts carrying per-invocation traces, where pretty-printing
/// multiplies the size several-fold.
pub fn write_json_compact(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    write_artifact(&dir.join(format!("{name}.json")), value, false);
}

/// Writes a perf report as `BENCH_<name>.json` at the repository root
/// (the bench bins' working directory) — the measurable-perf-trajectory
/// artifacts CI uploads alongside `results/`. Returns whether the file
/// was written.
pub fn write_bench_json(name: &str, value: &impl serde::Serialize) -> bool {
    write_artifact(
        std::path::Path::new(&format!("BENCH_{name}.json")),
        value,
        true,
    )
}

fn write_artifact(path: &std::path::Path, value: &impl serde::Serialize, pretty: bool) -> bool {
    let tree = envelope(serde_json::to_value(value));
    if let Err(e) = validate_artifact(&tree) {
        eprintln!("[results] refusing to write {}: {e}", path.display());
        return false;
    }
    let encoded = if pretty {
        serde_json::to_string_pretty(&tree)
    } else {
        serde_json::to_string(&tree)
    };
    match encoded {
        Ok(s) => {
            if std::fs::write(path, s).is_ok() {
                eprintln!("[results] wrote {}", path.display());
                true
            } else {
                eprintln!("[results] failed to write {}", path.display());
                false
            }
        }
        Err(e) => {
            eprintln!("[results] failed to serialise {}: {e}", path.display());
            false
        }
    }
}

/// Runs `render` under a 1-thread rayon pool and again under an 8-thread
/// pool and reports whether the two outputs are byte-identical. Every fleet
/// bench uses this as its determinism self-check: the simulated report must
/// not depend on how many worker threads rayon happens to schedule.
pub fn bit_identical_across_threads(render: impl Fn() -> String + Sync) -> bool {
    let under = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map(|pool| pool.install(&render))
            .unwrap_or_default()
    };
    under(1) == under(8)
}

/// Formats a factor like `2.14x`.
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `89.41%`.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.50x".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(2.138), "2.14x");
        assert_eq!(pct(89.411), "89.41%");
    }

    #[test]
    fn envelope_wraps_bare_payloads_and_keeps_versioned_objects() {
        let bare = serde_json::to_value(&vec![1.0f64, 2.0]);
        let wrapped = envelope(bare);
        let pairs = wrapped.as_object().unwrap();
        assert_eq!(pairs[0].0, "schema_version");
        assert_eq!(pairs[1].0, "data");
        assert!(validate_artifact(&wrapped).is_ok());

        let versioned = Value::Object(vec![
            ("schema_version".to_string(), Value::I64(1)),
            ("x".to_string(), Value::F64(0.5)),
        ]);
        let same = envelope(versioned.clone());
        assert_eq!(
            serde_json::to_string(&same).unwrap(),
            serde_json::to_string(&versioned).unwrap(),
            "already-versioned objects pass through untouched"
        );
    }

    #[test]
    fn validate_rejects_missing_version_and_non_finite_numbers() {
        let unversioned = Value::Object(vec![("x".to_string(), Value::F64(1.0))]);
        assert!(validate_artifact(&unversioned)
            .unwrap_err()
            .contains("schema_version"));

        let bad_version = Value::Object(vec![(
            "schema_version".to_string(),
            Value::String("1".to_string()),
        )]);
        assert!(validate_artifact(&bad_version).is_err());

        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Value::Object(vec![
                ("schema_version".to_string(), Value::I64(1)),
                (
                    "rows".to_string(),
                    Value::Array(vec![Value::Object(vec![(
                        "speedup".to_string(),
                        Value::F64(poison),
                    )])]),
                ),
            ]);
            let err = validate_artifact(&v).unwrap_err();
            assert!(
                err.contains("$.rows[0].speedup"),
                "error must name the offending path: {err}"
            );
        }
    }

    #[test]
    fn writers_refuse_non_finite_artifacts() {
        #[derive(serde::Serialize)]
        struct Bad {
            schema_version: u32,
            value: f64,
        }
        // The writers validate this exact tree before encoding; a failing
        // validation means the file is refused, not silently nulled.
        let tree = envelope(serde_json::to_value(&Bad {
            schema_version: RESULTS_SCHEMA_VERSION,
            value: f64::NAN,
        }));
        assert!(validate_artifact(&tree).is_err());
    }
}
